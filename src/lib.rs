//! **tbwf-repro** — umbrella crate of the reproduction of
//! *"Timeliness-Based Wait-Freedom: A Gracefully Degrading Progress
//! Condition"* (Aguilera & Toueg, PODC 2008).
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); it simply re-exports
//! the member crates. Library users should depend on [`tbwf`] directly.
//!
//! Workspace layout:
//!
//! * [`sim`] — deterministic partial-synchrony simulator (Section 3's
//!   model: steps, schedules, crashes, measured timeliness);
//! * [`registers`] — atomic / safe / **abortable** registers, simulated
//!   and native backends;
//! * [`monitor`] — activity monitors `A(p, q)` (Figure 2);
//! * [`omega`] — the dynamic leader elector Ω∆ from atomic registers
//!   (Figure 3) and from abortable registers (Figures 4–6);
//! * [`universal`] — the query-abortable universal construction, the
//!   TBWF transform (Figure 7), and the baselines;
//! * [`tbwf`] — object-type library and the high-level system builder.

#![warn(missing_docs)]

pub use tbwf;
pub use tbwf_monitor as monitor;
pub use tbwf_omega as omega;
pub use tbwf_registers as registers;
pub use tbwf_sim as sim;
pub use tbwf_universal as universal;
