//! Integration tests: activity-monitor specification (Definition 9) on
//! full simulated runs — the assertion form of experiment E1.

use std::sync::Arc;
use tbwf::prelude::*;
use tbwf_monitor::fig2::{activity_monitor, OBS_FAULT, OBS_STATUS};
use tbwf_monitor::props::{check_pair, CheckParams, PairRun};
use tbwf_sim::schedule::GapGrowth;

struct PairSetup {
    monitoring_on: bool,
    active_on: bool,
    q_timely: bool,
    q_crash_at: Option<u64>,
    steps: u64,
}

fn run_pair(s: PairSetup) -> PairRun {
    let factory = RegisterFactory::default();
    let pair = activity_monitor(&factory, ProcId(0), ProcId(1));
    pair.monitoring_side.monitoring.set(s.monitoring_on);
    pair.monitored_side.active_for.set(s.active_on);

    let mut b = SimBuilder::new();
    let p0 = b.add_process("p0");
    let ms = pair.monitoring_side;
    let (m_on, a_on) = (s.monitoring_on, s.active_on);
    b.add_task(p0, "monitoring", move |env| {
        env.observe("monitoring", 1, m_on as i64);
        ms.run(&env)
    });
    let p1 = b.add_process("p1");
    let md = pair.monitored_side;
    b.add_task(p1, "monitored", move |env| {
        env.observe("active_for", 0, a_on as i64);
        md.run(&env)
    });

    let schedule: Box<dyn tbwf_sim::Schedule> = if s.q_timely {
        Box::new(RoundRobin::new())
    } else {
        Box::new(PartiallySynchronous::with_growth(
            vec![ProcId(0)],
            4,
            GapGrowth::Linear(4),
        ))
    };
    let mut cfg = RunConfig {
        max_steps: s.steps,
        crashes: Vec::new(),
        schedule,
        nemesis: None,
    };
    if let Some(t) = s.q_crash_at {
        cfg = cfg.crash(t, ProcId(1));
    }
    let report = b.build().run(cfg);
    report.assert_no_panics();
    let trace = &report.trace;
    let _ = Arc::strong_count(&factory.log());
    PairRun {
        total_time: trace.len() as u64,
        monitoring: trace.obs_series(ProcId(0), "monitoring", 1),
        active_for: trace.obs_series(ProcId(1), "active_for", 0),
        status: trace.obs_series(ProcId(0), OBS_STATUS, 1),
        fault: trace.obs_series(ProcId(0), OBS_FAULT, 1),
        q_crash: trace.crash_time(ProcId(1)),
        q_p_timely: s.q_timely && s.q_crash_at.is_none(),
        p_correct: true,
    }
}

#[test]
fn timely_active_q_satisfies_all_properties() {
    let run = run_pair(PairSetup {
        monitoring_on: true,
        active_on: true,
        q_timely: true,
        q_crash_at: None,
        steps: 50_000,
    });
    let rep = check_pair(&run, CheckParams::default());
    assert!(rep.all_ok(), "violations: {:?}", rep.violations());
    // Property 4 must be *applicable* here, not just vacuous.
    assert_eq!(rep.p4, tbwf_monitor::PropVerdict::Holds);
    assert_eq!(rep.p5, tbwf_monitor::PropVerdict::Holds);
}

#[test]
fn non_timely_q_grows_fault_counter_without_bound() {
    let run = run_pair(PairSetup {
        monitoring_on: true,
        active_on: true,
        q_timely: false,
        q_crash_at: None,
        steps: 60_000,
    });
    let rep = check_pair(&run, CheckParams::default());
    assert_eq!(
        rep.p6,
        tbwf_monitor::PropVerdict::Holds,
        "P6 must hold and apply"
    );
    assert!(rep.all_ok(), "violations: {:?}", rep.violations());
}

#[test]
fn crashed_q_is_eventually_inactive_with_bounded_faults() {
    let run = run_pair(PairSetup {
        monitoring_on: true,
        active_on: true,
        q_timely: true,
        q_crash_at: Some(10_000),
        steps: 60_000,
    });
    let rep = check_pair(&run, CheckParams::default());
    assert_eq!(rep.p3, tbwf_monitor::PropVerdict::Holds);
    assert_eq!(rep.p5, tbwf_monitor::PropVerdict::Holds);
    assert!(rep.all_ok(), "violations: {:?}", rep.violations());
}

#[test]
fn monitoring_off_keeps_status_unknown_forever() {
    let run = run_pair(PairSetup {
        monitoring_on: false,
        active_on: true,
        q_timely: true,
        q_crash_at: None,
        steps: 30_000,
    });
    let rep = check_pair(&run, CheckParams::default());
    assert_eq!(rep.p1, tbwf_monitor::PropVerdict::Holds);
    assert!(
        run.fault.len() <= 1,
        "faultCntr must stay 0 while not monitoring"
    );
}
