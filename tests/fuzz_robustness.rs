//! Seeded fuzz tests: random schedules, random crashes — the full stack
//! must stay panic-free, linearizable (checked with the complete
//! Wing–Gong checker), and progressive for measured-timely processes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tbwf::prelude::*;

fn fuzz_once(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(2..=4);
    let kind = if rng.random_bool(0.5) {
        OmegaKind::Atomic
    } else {
        OmegaKind::Abortable
    };
    let steps: u64 = rng.random_range(100_000..250_000);
    let ops = rng.random_range(1..=3);

    let mut b = TbwfSystemBuilder::new(Counter)
        .processes(n)
        .omega(kind)
        .seed(seed)
        .register_policy(
            AbortPolicy::Seeded {
                p_abort: rng.random_range(0.2..1.0),
            },
            EffectPolicy::Seeded {
                p_effect: rng.random_range(0.0..1.0),
            },
        );
    for p in 0..n {
        b = b.workload(p, Workload::Repeat(CounterOp::Inc, ops));
    }
    let mut cfg = RunConfig::new(steps, SeededRandom::new(seed ^ 0xF00D));
    // Crash up to one process, at a random time, sometimes.
    if rng.random_bool(0.4) {
        let victim = ProcId(rng.random_range(0..n));
        cfg = cfg.crash(rng.random_range(0..steps / 2), victim);
    }
    let crashed: Vec<ProcId> = cfg.crashes.iter().map(|(_, p)| *p).collect();

    let run = b.run(cfg);
    run.report.assert_no_panics();

    // Complete linearizability check over the whole history.
    assert_run_linearizable(&Counter, &run);

    // Progress: every correct process completed its (small) workload in
    // a (large) uniformly-random run — uniform scheduling keeps everyone
    // timely with overwhelming probability.
    for p in 0..n {
        if !crashed.contains(&ProcId(p)) {
            assert_eq!(
                run.completed[p], ops,
                "seed {seed}: correct p{p} did not finish {ops} ops: {:?} (crashed: {crashed:?})",
                run.completed
            );
        }
    }
}

#[test]
fn fuzz_counter_runs_seed_batch_a() {
    for seed in 0..6 {
        fuzz_once(seed);
    }
}

#[test]
fn fuzz_counter_runs_seed_batch_b() {
    for seed in 6..12 {
        fuzz_once(seed);
    }
}

#[test]
fn fuzz_stack_history_is_linearizable() {
    for seed in [100u64, 101, 102] {
        let n = 3;
        let mut b = TbwfSystemBuilder::new(Stack).processes(n).seed(seed);
        for p in 0..n {
            b = b.workload(
                p,
                Workload::Script(vec![
                    StackOp::Push(p as i64 * 10),
                    StackOp::Pop,
                    StackOp::Push(p as i64 * 10 + 1),
                ]),
            );
        }
        let run = b.run(RunConfig::new(250_000, SeededRandom::new(seed)));
        run.report.assert_no_panics();
        assert_run_linearizable(&Stack, &run);
    }
}

#[test]
fn fuzz_queue_history_is_linearizable() {
    for seed in [200u64, 201] {
        let n = 3;
        let mut b = TbwfSystemBuilder::new(Queue).processes(n).seed(seed);
        for p in 0..n {
            b = b.workload(
                p,
                Workload::Script(vec![
                    QueueOp::Enq(p as i64),
                    QueueOp::Deq,
                    QueueOp::Enq(p as i64 + 100),
                ]),
            );
        }
        let run = b.run(RunConfig::new(250_000, SeededRandom::new(seed)));
        run.report.assert_no_panics();
        assert_run_linearizable(&Queue, &run);
    }
}
