//! Integration tests: the TBWF progress condition (Definition 3) across
//! synchrony regimes — the workspace-level statement of Theorems 14–15.

use tbwf::prelude::*;

fn inc_system(n: usize, kind: OmegaKind, seed: u64) -> TbwfSystemBuilder<Counter> {
    TbwfSystemBuilder::new(Counter)
        .processes(n)
        .omega(kind)
        .seed(seed)
        .workload_all(Workload::Unlimited(CounterOp::Inc))
}

/// Fully synchronous regime: TBWF behaves like wait-freedom — every
/// process completes operations.
#[test]
fn all_timely_implies_everyone_progresses() {
    for kind in [OmegaKind::Atomic, OmegaKind::Abortable] {
        let run = inc_system(3, kind, 1).run(RunConfig::new(250_000, RoundRobin::new()));
        run.report.assert_no_panics();
        assert!(
            run.completed.iter().all(|&c| c > 0),
            "{kind:?}: all timely must progress: {:?}",
            run.completed
        );
    }
}

/// Partial synchrony: exactly the timely processes are guaranteed
/// progress; the non-timely ones cannot block them.
#[test]
fn only_timely_processes_are_guaranteed_progress() {
    for kind in [OmegaKind::Atomic, OmegaKind::Abortable] {
        let timely: Vec<ProcId> = vec![ProcId(0), ProcId(1)];
        let schedule = PartiallySynchronous::new(timely, 4, true);
        let run = inc_system(4, kind, 2).run(RunConfig::new(300_000, schedule));
        run.report.assert_no_panics();
        assert!(
            run.completed[0] > 0,
            "{kind:?}: timely p0 starved: {:?}",
            run.completed
        );
        assert!(
            run.completed[1] > 0,
            "{kind:?}: timely p1 starved: {:?}",
            run.completed
        );
    }
}

/// Obstruction-freedom regime (Section 1.1): a process that eventually
/// runs solo is timely by definition and must complete its operations.
#[test]
fn solo_runner_completes_operations() {
    let run = TbwfSystemBuilder::new(Counter)
        .processes(3)
        .seed(3)
        .workload(2, Workload::Repeat(CounterOp::Inc, 5))
        .run(RunConfig::new(200_000, SoloAfter::new(10_000, ProcId(2))));
    run.report.assert_no_panics();
    assert_eq!(run.completed[2], 5, "solo process must finish all its ops");
}

/// Crash tolerance: the crash of the current leader does not block the
/// surviving timely processes.
#[test]
fn leader_crash_does_not_block_survivors() {
    let run = inc_system(3, OmegaKind::Atomic, 4)
        .run(RunConfig::new(400_000, RoundRobin::new()).crash(50_000, ProcId(0)));
    run.report.assert_no_panics();
    let after_crash: Vec<usize> = (1..3)
        .map(|p| run.results[p].iter().filter(|r| r.time > 50_000).count())
        .collect();
    assert!(
        after_crash.iter().all(|&c| c > 0),
        "survivors made no progress after the crash: {after_crash:?}"
    );
}

/// The flickering adversary of Section 4: a process oscillating between
/// timely and silent cannot prevent timely processes from progressing.
#[test]
fn flickering_process_cannot_block_timely_ones() {
    let run = inc_system(3, OmegaKind::Atomic, 5)
        .run(RunConfig::new(400_000, Flicker::new(ProcId(2), 64, 3_000)));
    run.report.assert_no_panics();
    assert!(
        run.completed[0] > 0 && run.completed[1] > 0,
        "{:?}",
        run.completed
    );
}

/// Finite workloads complete and the run can end early.
#[test]
fn finite_workloads_complete() {
    let run = TbwfSystemBuilder::new(Counter)
        .processes(2)
        .seed(6)
        .workload_all(Workload::Repeat(CounterOp::Inc, 3))
        .run(RunConfig::new(300_000, RoundRobin::new()));
    run.report.assert_no_panics();
    assert_eq!(run.completed, vec![3, 3]);
    // Responses across both processes are exactly 1..=6.
    let mut resp: Vec<i64> = run.results.iter().flatten().map(|r| r.resp).collect();
    resp.sort_unstable();
    assert_eq!(resp, (1..=6).collect::<Vec<i64>>());
}
