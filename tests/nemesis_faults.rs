//! Integration tests for the nemesis fault-injection layer: crashes
//! landing *inside* a register operation must not corrupt shared state
//! or wedge the survivors, and a fault plan is part of the deterministic
//! run description — identical (seed, schedule, plan) triples replay the
//! exact same run on both execution backends.

use tbwf::prelude::*;
use tbwf_omega::harness::install_omega;
use tbwf_omega::{add_external_candidate_driver, OBS_LEADER};
use tbwf_registers::{DIAL_ABORT_STORM, DIAL_BASE};
use tbwf_sim::analysis::value_at;
use tbwf_sim::{
    FaultAction, FaultPlan, FaultTarget, Nemesis, NemesisSchedule, Obs, ScheduleCtl, TaskBody,
    TaskSpawner, Trigger,
};

/// Crash a process *between* `invoke_` and `complete_` of a register
/// operation (the in-flight gauge trigger fires exactly there) and check
/// that the run stays consistent: survivors keep completing operations
/// long after the crash, the counter history has no duplicated rank, and
/// the crashed process goes silent at its crash time.
#[test]
fn crash_mid_operation_never_wedges_survivors() {
    let n = 3;
    let steps = 120_000u64;
    let run = TbwfSystemBuilder::new(Counter)
        .processes(n)
        .omega(OmegaKind::Atomic)
        .seed(11)
        .workload_all(Workload::Unlimited(CounterOp::Inc))
        .run_wired(
            RunConfig::new(steps, SeededRandom::new(5)),
            |factory, cfg| {
                let plan = FaultPlan::new().with(
                    Trigger::OnGauge {
                        at: 40_000,
                        gauge: "inflight[1]".into(),
                        min: 1,
                    },
                    FaultAction::Crash(FaultTarget::Proc(1)),
                );
                let mut nem = Nemesis::new(plan);
                nem.register_gauge("inflight[1]", factory.inflight_gauge(ProcId(1)));
                cfg.nemesis = Some(nem);
            },
        );
    run.report.assert_no_panics();
    let trace = &run.report.trace;

    // The crash fired, mid-operation, at or after the arming time.
    let tc = trace
        .crash_time(ProcId(1))
        .expect("the OnGauge crash never fired");
    assert!(tc >= 40_000, "crash fired before its arming time: {tc}");
    assert_eq!(trace.injections.len(), 1, "exactly one injection fired");

    // The crashed process is silent from its crash on.
    let last_obs_p1 = trace
        .obs
        .iter()
        .filter(|o: &&Obs| o.proc == ProcId(1))
        .map(|o| o.time)
        .max()
        .unwrap_or(0);
    assert!(
        last_obs_p1 <= tc,
        "crashed p1 still observed at t = {last_obs_p1}, after its crash at {tc}"
    );

    // Survivors keep completing operations well past the crash — the
    // dangling half-open operation must not poison shared registers.
    for p in [0, 2] {
        let series = trace.obs_series(ProcId(p), OBS_COMPLETED, 0);
        let at_crash = value_at(&series, tc).unwrap_or(0);
        let at_end = series.last().map(|&(_, v)| v).unwrap_or(0);
        assert!(
            at_end > at_crash + 10,
            "p{p} wedged after the crash: {at_crash} -> {at_end} completions"
        );
    }

    // Counter-history consistency: each increment's response is its rank
    // in the linearization order — no duplicates ever, and at most one
    // effective-but-unreported operation per process (the crash hole).
    let mut resp: Vec<i64> = run.results.iter().flatten().map(|r| r.resp).collect();
    let total = resp.len() as i64;
    resp.sort_unstable();
    assert!(
        resp.windows(2).all(|w| w[0] < w[1]),
        "duplicate increment rank in the history"
    );
    let max_resp = resp.last().copied().unwrap_or(0);
    assert!(
        max_resp - total <= n as i64,
        "{} unreported effective increments (> n = {n})",
        max_resp - total
    );
}

/// A spawner that deliberately hosts every task on the blocking (thread
/// + gate) backend by relying on the default `spawn_stepper` adapter.
struct BlockingOnly<'a>(&'a mut SimBuilder);

impl TaskSpawner for BlockingOnly<'_> {
    fn spawn_task(&mut self, pid: ProcId, name: &str, body: TaskBody) {
        self.0.spawn_task(pid, name, body);
    }
}

/// Everything a backend-equivalence comparison needs from one run:
/// steps, observations, crashes, and the injection log.
struct RunFingerprint {
    steps: Vec<ProcId>,
    obs: Vec<Obs>,
    crashes: Vec<(u64, ProcId)>,
    injections: Vec<String>,
}

fn omega_under_faults(blocking: bool) -> RunFingerprint {
    let n = 3;
    let factory = RegisterFactory::new(RegisterFactoryConfig {
        seed: 77,
        ..RegisterFactoryConfig::default()
    });
    let mut b = SimBuilder::new();
    for p in 0..n {
        b.add_process(&format!("p{p}"));
    }
    fn wire(
        spawner: &mut dyn TaskSpawner,
        factory: &RegisterFactory,
        n: usize,
    ) -> Vec<(String, Local<bool>)> {
        let handles = install_omega(spawner, factory, n, OmegaKind::Abortable);
        handles
            .iter()
            .enumerate()
            .map(|(p, h)| {
                let sw = add_external_candidate_driver(spawner, ProcId(p), h, true);
                (format!("cand[{p}]"), sw)
            })
            .collect()
    }
    let switches = if blocking {
        let mut shim = BlockingOnly(&mut b);
        wire(&mut shim, &factory, n)
    } else {
        wire(&mut b, &factory, n)
    };

    // One fault of every flavor: crash, candidacy churn, schedule
    // perturbation, register-adversary burst.
    let plan = FaultPlan::new()
        .with(
            Trigger::At(3_000),
            FaultAction::Demote(FaultTarget::Proc(1)),
        )
        .with(
            Trigger::At(5_000),
            FaultAction::SetSwitch {
                switch: "cand[0]".into(),
                on: false,
            },
        )
        .with(
            Trigger::At(7_000),
            FaultAction::SetDial {
                dial: "policy".into(),
                value: DIAL_ABORT_STORM,
            },
        )
        .with(
            Trigger::At(9_000),
            FaultAction::Promote(FaultTarget::Proc(1)),
        )
        .with(
            Trigger::At(10_000),
            FaultAction::SetDial {
                dial: "policy".into(),
                value: DIAL_BASE,
            },
        )
        .with(
            Trigger::At(11_000),
            FaultAction::SetSwitch {
                switch: "cand[0]".into(),
                on: true,
            },
        )
        .with(
            // Fires on the first leader announcement after the candidacy
            // churn starts (leader observations are recorded on change,
            // so the trigger must sit inside a re-election window).
            Trigger::OnObs {
                at: 5_500,
                key: OBS_LEADER.to_string(),
            },
            FaultAction::Crash(FaultTarget::ObsValue),
        );
    let ctl = ScheduleCtl::new();
    let mut nem = Nemesis::new(plan);
    nem.control_schedule(ctl.clone());
    nem.register_dial("policy", factory.policy_dial().handle());
    for (name, sw) in &switches {
        nem.register_switch(name, sw.clone());
    }
    let report = b
        .build()
        .run(RunConfig::new(20_000, NemesisSchedule::new(ctl)).with_nemesis(nem));
    report.assert_no_panics();
    RunFingerprint {
        steps: report.trace.steps.clone(),
        obs: report.trace.obs.clone(),
        crashes: report.trace.crashes.clone(),
        injections: report
            .trace
            .injections
            .iter()
            .map(|i| format!("{}@{}", i.desc, i.time))
            .collect(),
    }
}

/// The same program under the same seed, schedule, and fault plan takes
/// the exact same steps, records the exact same observations, and fires
/// the exact same injections — whether the tasks run on the poll-driven
/// step engine or on gate-backed OS threads.
#[test]
fn identical_plan_replays_identically_across_backends() {
    let poll = omega_under_faults(false);
    let thread = omega_under_faults(true);
    assert_eq!(
        poll.steps, thread.steps,
        "step sequences differ across backends"
    );
    assert_eq!(poll.obs, thread.obs, "observations differ across backends");
    assert_eq!(
        poll.crashes, thread.crashes,
        "crash times differ across backends"
    );
    assert_eq!(
        poll.injections, thread.injections,
        "injection logs differ across backends"
    );
    // The plan actually did something in both runs.
    assert_eq!(
        poll.injections.len(),
        7,
        "all seven fault events should fire"
    );
    assert_eq!(poll.crashes.len(), 1, "the leader-aimed crash should land");
}
