//! Integration tests: linearizability of TBWF objects, checked through
//! type-specific invariants on concurrent histories.

use std::collections::HashSet;
use tbwf::prelude::*;

/// Counter: every `Inc` response is the unique post-increment value.
#[test]
fn counter_inc_responses_are_distinct_across_seeds() {
    for seed in [11u64, 22, 33] {
        let run = TbwfSystemBuilder::new(Counter)
            .processes(3)
            .seed(seed)
            .workload_all(Workload::Unlimited(CounterOp::Inc))
            .run(RunConfig::new(200_000, SeededRandom::new(seed)));
        run.report.assert_no_panics();
        let resp: Vec<i64> = run.results.iter().flatten().map(|r| r.resp).collect();
        let uniq: HashSet<i64> = resp.iter().copied().collect();
        assert_eq!(
            uniq.len(),
            resp.len(),
            "seed {seed}: duplicate Inc responses"
        );
        assert!(resp.iter().all(|&v| v >= 1), "responses start at 1");
    }
}

/// Fetch-and-add: responses are the pre-add values; with delta 1 they are
/// distinct and the set of responses is an integer range prefix union.
#[test]
fn fetch_add_old_values_are_distinct() {
    let run = TbwfSystemBuilder::new(FetchAdd)
        .processes(3)
        .seed(7)
        .workload_all(Workload::Unlimited(FetchAddOp(1)))
        .run(RunConfig::new(200_000, RoundRobin::new()));
    run.report.assert_no_panics();
    let resp: Vec<i64> = run.results.iter().flatten().map(|r| r.resp).collect();
    let uniq: HashSet<i64> = resp.iter().copied().collect();
    assert_eq!(uniq.len(), resp.len(), "duplicate fetch-add old values");
}

/// Stack: every popped value was pushed, and no value is popped twice.
#[test]
fn stack_pops_are_pushed_values_without_duplicates() {
    // Each process pushes distinct tagged values, then pops.
    let mut builder = TbwfSystemBuilder::new(Stack).processes(3).seed(13);
    for p in 0..3 {
        let mut script = Vec::new();
        for i in 0..4 {
            script.push(StackOp::Push((p * 100 + i) as i64));
        }
        for _ in 0..4 {
            script.push(StackOp::Pop);
        }
        builder = builder.workload(p, Workload::Script(script));
    }
    let run = builder.run(RunConfig::new(600_000, RoundRobin::new()));
    run.report.assert_no_panics();

    let mut pushed = HashSet::new();
    let mut popped = Vec::new();
    for r in run.results.iter().flatten() {
        match (&r.op, &r.resp) {
            (StackOp::Push(v), StackResp::Pushed) => {
                pushed.insert(*v);
            }
            (StackOp::Pop, StackResp::Popped(Some(v))) => popped.push(*v),
            (StackOp::Pop, StackResp::Popped(None)) => {}
            other => panic!("inconsistent op/resp pair: {other:?}"),
        }
    }
    let mut seen = HashSet::new();
    for v in &popped {
        assert!(pushed.contains(v), "popped value {v} was never pushed");
        assert!(seen.insert(*v), "value {v} popped twice");
    }
}

/// FIFO queue: per-producer order is preserved among dequeued values.
#[test]
fn queue_preserves_per_producer_fifo_order() {
    let mut builder = TbwfSystemBuilder::new(Queue).processes(3).seed(17);
    for p in 0..2 {
        let script: Vec<QueueOp> = (0..5).map(|i| QueueOp::Enq((p * 100 + i) as i64)).collect();
        builder = builder.workload(p, Workload::Script(script));
    }
    builder = builder.workload(2, Workload::Repeat(QueueOp::Deq, 12));
    let run = builder.run(RunConfig::new(800_000, RoundRobin::new()));
    run.report.assert_no_panics();

    let dequeued: Vec<i64> = run.results[2]
        .iter()
        .filter_map(|r| match r.resp {
            QueueResp::Dequeued(Some(v)) => Some(v),
            _ => None,
        })
        .collect();
    for producer in 0..2i64 {
        let series: Vec<i64> = dequeued
            .iter()
            .copied()
            .filter(|v| v / 100 == producer)
            .collect();
        let mut sorted = series.clone();
        sorted.sort_unstable();
        assert_eq!(
            series, sorted,
            "producer {producer} order violated: {series:?}"
        );
    }
    // No duplicates overall.
    let uniq: HashSet<i64> = dequeued.iter().copied().collect();
    assert_eq!(
        uniq.len(),
        dequeued.len(),
        "value dequeued twice: {dequeued:?}"
    );
}

/// Register file: a read returns the last written value in completion
/// order when operations do not overlap (each process owns one cell).
#[test]
fn regfile_per_cell_reads_see_own_writes() {
    let mut builder = TbwfSystemBuilder::new(RegFile::new(3))
        .processes(3)
        .seed(19);
    for p in 0..3 {
        builder = builder.workload(
            p,
            Workload::Script(vec![
                RegFileOp::Write(p, (p + 1) as i64 * 11),
                RegFileOp::Read(p),
            ]),
        );
    }
    let run = builder.run(RunConfig::new(400_000, RoundRobin::new()));
    run.report.assert_no_panics();
    for p in 0..3 {
        assert_eq!(
            run.completed[p], 2,
            "p{p} did not finish: {:?}",
            run.completed
        );
        let read = &run.results[p][1];
        assert_eq!(
            read.resp,
            RegFileResp::Value((p + 1) as i64 * 11),
            "p{p} read a value it did not write"
        );
    }
}

/// CAS object built over TBWF: at most one of n concurrent CAS(0 → tag)
/// operations succeeds.
#[test]
fn cas_object_at_most_one_winner() {
    let mut builder = TbwfSystemBuilder::new(CasObject).processes(3).seed(23);
    for p in 0..3 {
        builder = builder.workload(
            p,
            Workload::Script(vec![CasOp::Cas {
                expected: 0,
                new: (p + 1) as i64,
            }]),
        );
    }
    let run = builder.run(RunConfig::new(300_000, RoundRobin::new()));
    run.report.assert_no_panics();
    let winners = run
        .results
        .iter()
        .flatten()
        .filter(|r| r.resp == CasResp::Swapped(true))
        .count();
    assert_eq!(winners, 1, "exactly one CAS(0, _) must win");
}
