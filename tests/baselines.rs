//! Integration tests: the comparison baselines behave as the paper's
//! discussion (Sections 1.2 and 2) predicts.

use tbwf::prelude::*;
use tbwf_sim::schedule::GapGrowth;

/// Herlihy's CAS construction is wait-free for *everyone* that keeps
/// taking steps — timely or not.
#[test]
fn herlihy_cas_completes_for_all_under_round_robin() {
    let cfg = WorkloadConfig {
        n: 4,
        engine: Engine::HerlihyCas,
        ops_per_proc: 8,
        ..Default::default()
    };
    let out = run_counter_workload(&cfg, RunConfig::new(100_000, RoundRobin::new()));
    out.report.assert_no_panics();
    assert_eq!(out.completed, vec![8, 8, 8, 8]);
    out.assert_distinct_responses();
}

/// FLMS-style boosting works when all processes are timely…
#[test]
fn flms_boost_completes_when_all_timely() {
    let cfg = WorkloadConfig {
        n: 3,
        engine: Engine::FlmsBoost,
        ops_per_proc: 5,
        ..Default::default()
    };
    let out = run_counter_workload(&cfg, RunConfig::new(400_000, RoundRobin::new()));
    out.report.assert_no_panics();
    assert_eq!(out.completed, vec![5, 5, 5]);
}

/// …but is not gracefully degrading: with one non-timely process, the
/// timely ones essentially stop (Section 2's claim about [7]/[8]),
/// while TBWF keeps all timely processes going under the same schedule.
#[test]
fn flms_boost_degrades_where_tbwf_does_not() {
    let schedule = || {
        PartiallySynchronous::with_growth(
            vec![ProcId(0), ProcId(1), ProcId(2)],
            4,
            GapGrowth::Doubling,
        )
    };
    let steps = 400_000;

    let flms = run_counter_workload(
        &WorkloadConfig {
            n: 4,
            engine: Engine::FlmsBoost,
            ..Default::default()
        },
        RunConfig::new(steps, schedule()),
    );
    flms.report.assert_no_panics();
    let tbwf = run_counter_workload(
        &WorkloadConfig {
            n: 4,
            engine: Engine::Tbwf(OmegaKind::Atomic),
            ..Default::default()
        },
        RunConfig::new(steps, schedule()),
    );
    tbwf.report.assert_no_panics();

    let tbwf_min = *tbwf.completed[..3].iter().min().unwrap();
    let flms_min = *flms.completed[..3].iter().min().unwrap();
    assert!(
        tbwf_min > 0,
        "TBWF must protect the timely: {:?}",
        tbwf.completed
    );
    assert!(
        flms_min * 10 < tbwf_min.max(10),
        "FLMS should collapse relative to TBWF: flms={:?} tbwf={:?}",
        flms.completed,
        tbwf.completed
    );
}

/// Plain obstruction-freedom collapses under steady contention (that is
/// precisely why the paper adds Ω∆ on top).
#[test]
fn plain_of_starves_under_contention_but_works_solo() {
    let contended = run_counter_workload(
        &WorkloadConfig {
            n: 3,
            engine: Engine::PlainOf,
            ..Default::default()
        },
        RunConfig::new(150_000, RoundRobin::new()),
    );
    contended.report.assert_no_panics();
    let total: u64 = contended.completed.iter().sum();
    assert!(
        total <= 3,
        "plain OF should make (almost) no progress under contention: {:?}",
        contended.completed
    );

    let solo = run_counter_workload(
        &WorkloadConfig {
            n: 1,
            engine: Engine::PlainOf,
            ops_per_proc: 20,
            ..Default::default()
        },
        RunConfig::new(20_000, RoundRobin::new()),
    );
    solo.report.assert_no_panics();
    assert_eq!(solo.completed, vec![20]);
}
