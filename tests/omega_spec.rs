//! Integration tests: both Ω∆ implementations against the Definition 5 /
//! Theorem 7 specification on a shared scenario grid.

use tbwf::prelude::*;
use tbwf_sim::schedule::GapGrowth;

fn check(
    kind: OmegaKind,
    n: usize,
    scripts: Vec<CandidateScript>,
    schedule: Box<dyn Schedule>,
    timely: Vec<ProcId>,
    steps: u64,
    canonical: bool,
) {
    let cfg = OmegaSystemConfig {
        n,
        kind,
        scripts,
        ..Default::default()
    };
    let out = run_omega_system(
        &cfg,
        RunConfig {
            max_steps: steps,
            crashes: Vec::new(),
            schedule,
            nemesis: None,
        },
    );
    out.report.assert_no_panics();
    let data = OmegaRunData::from_trace(&out.report.trace, n, &timely);
    let v = check_spec(&data, SpecParams::default(), canonical);
    assert!(v.ok, "{kind:?} n={n}: spec failures: {:?}", v.failures);
}

#[test]
fn both_impls_satisfy_def5_with_all_permanent_candidates() {
    for kind in [OmegaKind::Atomic, OmegaKind::Abortable] {
        check(
            kind,
            3,
            vec![CandidateScript::Always; 3],
            Box::new(RoundRobin::new()),
            (0..3).map(ProcId).collect(),
            150_000,
            false,
        );
    }
}

#[test]
fn both_impls_ignore_never_candidates() {
    for kind in [OmegaKind::Atomic, OmegaKind::Abortable] {
        check(
            kind,
            3,
            vec![
                CandidateScript::Always,
                CandidateScript::Always,
                CandidateScript::Never,
            ],
            Box::new(RoundRobin::new()),
            (0..3).map(ProcId).collect(),
            150_000,
            false,
        );
    }
}

#[test]
fn both_impls_tolerate_a_non_timely_candidate() {
    for kind in [OmegaKind::Atomic, OmegaKind::Abortable] {
        check(
            kind,
            3,
            vec![CandidateScript::Always; 3],
            Box::new(PartiallySynchronous::with_growth(
                vec![ProcId(0), ProcId(1)],
                4,
                GapGrowth::Linear(4),
            )),
            vec![ProcId(0), ProcId(1)],
            400_000,
            false,
        );
    }
}

#[test]
fn canonical_use_elects_a_permanent_candidate() {
    // An R-candidate that uses Ω∆ canonically (waits for leader ≠ self
    // before re-entering) must not end up as the stable leader, because
    // the canonical gate keeps it out whenever it holds leadership.
    check(
        OmegaKind::Atomic,
        3,
        vec![
            CandidateScript::Always,
            CandidateScript::Always,
            CandidateScript::CanonicalBlink {
                on: 10_000,
                off: 10_000,
            },
        ],
        Box::new(RoundRobin::new()),
        (0..3).map(ProcId).collect(),
        240_000,
        true,
    );
}

#[test]
fn atomic_impl_emits_question_mark_while_not_candidate() {
    let cfg = OmegaSystemConfig {
        n: 2,
        kind: OmegaKind::Atomic,
        scripts: vec![CandidateScript::Always, CandidateScript::Until(30_000)],
        ..Default::default()
    };
    let out = run_omega_system(&cfg, RunConfig::new(120_000, RoundRobin::new()));
    out.report.assert_no_panics();
    // After p1 leaves the competition, its leader output returns to ?.
    assert_eq!(out.handles[1].leader.get(), None);
    // …and p0 still leads for itself.
    assert_eq!(out.handles[0].leader.get(), Some(ProcId(0)));
}

#[test]
fn abortable_impl_works_under_every_abort_policy() {
    for policy in [
        AbortPolicy::AlwaysOnOverlap,
        AbortPolicy::Seeded { p_abort: 0.3 },
        AbortPolicy::Never,
    ] {
        let cfg = OmegaSystemConfig {
            n: 2,
            kind: OmegaKind::Abortable,
            scripts: vec![CandidateScript::Always; 2],
            factory: RegisterFactoryConfig {
                seed: 99,
                abort_policy: policy,
                effect_policy: EffectPolicy::Seeded { p_effect: 0.5 },
            },
        };
        let out = run_omega_system(&cfg, RunConfig::new(150_000, RoundRobin::new()));
        out.report.assert_no_panics();
        assert_eq!(
            out.handles[0].leader.get(),
            Some(ProcId(0)),
            "policy {policy:?}"
        );
        assert_eq!(
            out.handles[1].leader.get(),
            Some(ProcId(0)),
            "policy {policy:?}"
        );
    }
}
