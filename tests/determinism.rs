//! Integration tests: full-stack determinism — a run is a pure function
//! of (program, schedule, seed). This is what makes every experiment in
//! EXPERIMENTS.md exactly reproducible.

use tbwf::prelude::*;

fn run_once(seed: u64, sched_seed: u64) -> (Vec<u64>, Vec<ProcId>, usize) {
    // A probabilistic abort policy so the register seed has bite (the
    // default always-abort policy never consults its RNG for aborts).
    let run = TbwfSystemBuilder::new(Counter)
        .processes(3)
        .omega(OmegaKind::Abortable)
        .seed(seed)
        .register_policy(
            AbortPolicy::Seeded { p_abort: 0.5 },
            EffectPolicy::Seeded { p_effect: 0.5 },
        )
        .workload_all(Workload::Unlimited(CounterOp::Inc))
        .run(RunConfig::new(80_000, SeededRandom::new(sched_seed)));
    run.report.assert_no_panics();
    (
        run.completed.clone(),
        run.report.trace.steps.clone(),
        run.report.trace.obs.len(),
    )
}

#[test]
fn identical_seeds_reproduce_the_exact_run() {
    let a = run_once(42, 7);
    let b = run_once(42, 7);
    assert_eq!(a.0, b.0, "completion counts differ");
    assert_eq!(a.1, b.1, "step sequences differ");
    assert_eq!(a.2, b.2, "observation counts differ");
}

#[test]
fn different_register_seeds_change_the_run() {
    let a = run_once(42, 7);
    let b = run_once(43, 7);
    // The step sequence is schedule-driven and identical; the outcome
    // (completions/observations) depends on the register adversary.
    assert_eq!(a.1, b.1, "schedule must be unaffected by the register seed");
    assert!(
        a.0 != b.0 || a.2 != b.2,
        "register seed had no observable effect (suspicious)"
    );
}

#[test]
fn different_schedule_seeds_change_the_interleaving() {
    let a = run_once(42, 7);
    let b = run_once(42, 8);
    assert_ne!(
        a.1, b.1,
        "schedule seeds must produce different interleavings"
    );
}

#[test]
fn omega_runs_are_deterministic_too() {
    let go = || {
        let cfg = OmegaSystemConfig {
            n: 3,
            kind: OmegaKind::Atomic,
            scripts: vec![CandidateScript::Always; 3],
            ..Default::default()
        };
        let out = run_omega_system(&cfg, RunConfig::new(60_000, SeededRandom::new(3)));
        out.report.assert_no_panics();
        (
            out.report.trace.steps.clone(),
            out.handles
                .iter()
                .map(|h| h.leader.get())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(go(), go());
}
