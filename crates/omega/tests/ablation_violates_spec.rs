//! The spec checker has teeth: running the *ablated* algorithm (Figure 3
//! without self-punishment) in the paper's own counterexample scenario
//! must produce a Definition 5 violation, while the faithful algorithm
//! passes in the identical scenario.
//!
//! This guards against a vacuous checker (one that passes everything)
//! using a real buggy implementation rather than a synthetic trace.

use tbwf_omega::harness::{install_omega_with, OmegaOptions};
use tbwf_omega::{
    add_candidate_driver, check_spec, CandidateScript, OmegaKind, OmegaRunData, SpecParams,
};
use tbwf_registers::RegisterFactory;
use tbwf_sim::schedule::RoundRobin;
use tbwf_sim::{ProcId, RunConfig, SimBuilder};

fn run_blinker_scenario(self_punish: bool) -> OmegaRunData {
    let factory = RegisterFactory::default();
    let mut b = SimBuilder::new();
    for p in 0..2 {
        b.add_process(&format!("p{p}"));
    }
    let handles = install_omega_with(
        &mut b,
        &factory,
        2,
        OmegaKind::Atomic,
        OmegaOptions { self_punish },
    );
    // p0: lowest id, blinks forever (R-candidate); p1: permanent.
    add_candidate_driver(
        &mut b,
        ProcId(0),
        &handles[0],
        CandidateScript::Blink {
            on: 8_000,
            off: 8_000,
        },
    );
    add_candidate_driver(&mut b, ProcId(1), &handles[1], CandidateScript::Always);
    let report = b.build().run(RunConfig::new(400_000, RoundRobin::new()));
    report.assert_no_panics();
    let timely = vec![ProcId(0), ProcId(1)];
    OmegaRunData::from_trace(&report.trace, 2, &timely)
}

#[test]
fn faithful_algorithm_passes_the_blinker_scenario() {
    let data = run_blinker_scenario(true);
    let v = check_spec(&data, SpecParams::default(), false);
    assert!(
        v.ok,
        "the paper's algorithm must satisfy Def. 5: {:?}",
        v.failures
    );
}

#[test]
fn ablated_algorithm_fails_the_blinker_scenario() {
    let data = run_blinker_scenario(false);
    let v = check_spec(&data, SpecParams::default(), false);
    assert!(
        !v.ok,
        "without self-punishment the oscillation must violate Def. 5 \
         (checker would be vacuous otherwise); classes: {:?}",
        v.classes
    );
}
