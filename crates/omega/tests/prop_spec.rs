//! Property tests: the candidacy classifier and spec checker.

use proptest::prelude::*;
use tbwf_omega::{check_spec, classify_candidate, CandidateClass, OmegaRunData, SpecParams};

proptest! {
    /// A series that ends in a long true-streak classifies Permanent.
    #[test]
    fn long_true_suffix_is_permanent(flips in prop::collection::vec((0u64..400, 0i64..2), 0..10)) {
        let mut series: Vec<(u64, i64)> = flips;
        series.sort_by_key(|(t, _)| *t);
        series.dedup_by_key(|(t, _)| *t);
        series.push((500, 1)); // long final true streak over [500, 1000)
        let c = classify_candidate(&series, 1000, SpecParams::default());
        prop_assert_eq!(c, CandidateClass::Permanent);
    }

    /// A regular blink classifies Repeated regardless of phase.
    #[test]
    fn regular_blink_is_repeated(period in 20u64..120, phase in 0u64..50) {
        let mut series = Vec::new();
        let mut t = phase;
        let mut v = 1i64;
        while t < 1000 {
            series.push((t, v));
            v = 1 - v;
            t += period;
        }
        prop_assume!(series.len() >= 8);
        let c = classify_candidate(&series, 1000, SpecParams::default());
        prop_assert_eq!(c, CandidateClass::Repeated);
    }

    /// The checker accepts any run in which all P-candidates converge to
    /// the same timely P-candidate and N-candidates end with `?`.
    #[test]
    fn checker_accepts_consistent_runs(n in 2usize..6, leader in 0usize..6, conv in 1u64..300) {
        let leader = leader % n;
        let data = OmegaRunData {
            n,
            total_time: 1000,
            candidate: (0..n).map(|_| vec![(0, 1)]).collect(),
            leader: (0..n)
                .map(|_| vec![(0, -1), (conv, leader as i64)])
                .collect(),
            crashed: vec![false; n],
            timely: vec![true; n],
        };
        let v = check_spec(&data, SpecParams::default(), false);
        prop_assert!(v.ok, "failures: {:?}", v.failures);
    }

    /// The checker rejects any run in which two permanent timely
    /// candidates settle on different leaders.
    #[test]
    fn checker_rejects_split_brain(n in 2usize..6, a in 0usize..6, b in 0usize..6) {
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let mut leaders: Vec<Vec<(u64, i64)>> = (0..n).map(|_| vec![(0, a as i64)]).collect();
        leaders[1] = vec![(0, b as i64)];
        let data = OmegaRunData {
            n,
            total_time: 1000,
            candidate: (0..n).map(|_| vec![(0, 1)]).collect(),
            leader: leaders,
            crashed: vec![false; n],
            timely: vec![true; n],
        };
        let v = check_spec(&data, SpecParams::default(), false);
        prop_assert!(!v.ok, "split-brain accepted");
    }
}
