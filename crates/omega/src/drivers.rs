//! Candidate-input drivers: scripted tasks that flip `candidate_p` over
//! time, realizing the N/P/R candidacy classes of Definition 4 and the
//! canonical use of Definition 6.

use crate::{OmegaHandles, OBS_CANDIDATE};
use tbwf_sim::{Control, Env, Local, ProcId, StepCtx, Stepper, TaskSpawner};

/// A scripted candidacy pattern for one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateScript {
    /// Never competes (`Ncandidates` if it starts false).
    Never,
    /// Competes from the start, forever (`Pcandidates`).
    Always,
    /// Starts competing at time `t` and never stops (`Pcandidates`).
    From(u64),
    /// Competes until time `t`, then stops forever (`Ncandidates`).
    Until(u64),
    /// Alternates: candidate for `on` steps, not candidate for `off`
    /// steps, forever (`Rcandidates`).
    Blink {
        /// Steps spent as a candidate per cycle.
        on: u64,
        /// Steps spent not competing per cycle.
        off: u64,
    },
    /// Like `Blink`, but *canonical* (Definition 6): after leaving the
    /// competition, waits until `leader_p ≠ p` before re-entering.
    CanonicalBlink {
        /// Steps spent as a candidate per cycle.
        on: u64,
        /// Minimum steps spent out of the competition per cycle.
        off: u64,
    },
}

impl CandidateScript {
    fn desired(self, t: u64) -> Option<bool> {
        match self {
            CandidateScript::Never => Some(false),
            CandidateScript::Always => Some(true),
            CandidateScript::From(t0) => Some(t >= t0),
            CandidateScript::Until(t0) => Some(t < t0),
            CandidateScript::Blink { on, off } => Some(t % (on + off) < on),
            CandidateScript::CanonicalBlink { .. } => None, // stateful
        }
    }
}

/// Records `candidate ← v` into the trace on change.
fn set_candidate(env: &dyn Env, candidate: &Local<bool>, v: bool) {
    if candidate.get() != v {
        candidate.set(v);
        env.observe(OBS_CANDIDATE, 0, v as i64);
    }
}

/// Poll-driven driver for the stateless scripts: every step sets
/// `candidate` to the value the script wants at the current time.
struct ScriptedDriver {
    script: CandidateScript,
    candidate: Local<bool>,
    started: bool,
}

impl Stepper for ScriptedDriver {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control {
        let env = ctx.env();
        if !self.started {
            self.started = true;
            env.observe(OBS_CANDIDATE, 0, self.candidate.get() as i64);
        }
        if let Some(v) = self.script.desired(env.now()) {
            set_candidate(env, &self.candidate, v);
        }
        Control::Yield
    }
}

/// Which part of the canonical cycle the driver is in.
enum BlinkPhase {
    /// Candidate; `rem` on-steps left.
    On,
    /// Not a candidate; `rem` off-steps left.
    Off,
    /// Definition 6 gate: waiting until `leader ≠ p`.
    Gate,
}

/// Poll-driven driver for [`CandidateScript::CanonicalBlink`]
/// (Definition 6): on-phase, off-phase, then wait out own leadership.
struct CanonicalBlinkDriver {
    pid: ProcId,
    on: u64,
    off: u64,
    candidate: Local<bool>,
    leader: Local<Option<ProcId>>,
    started: bool,
    phase: BlinkPhase,
    rem: u64,
}

impl Stepper for CanonicalBlinkDriver {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control {
        let env = ctx.env();
        if !self.started {
            self.started = true;
            env.observe(OBS_CANDIDATE, 0, self.candidate.get() as i64);
            set_candidate(env, &self.candidate, true);
            self.phase = BlinkPhase::On;
            self.rem = self.on;
        }
        // Consume exactly one step, running any zero-length phase
        // transitions first (a phase of length 0 falls through without
        // spending a step, exactly like the blocking `for _ in 0..0`).
        loop {
            match self.phase {
                BlinkPhase::On => {
                    if self.rem > 0 {
                        self.rem -= 1;
                        return Control::Yield;
                    }
                    set_candidate(env, &self.candidate, false);
                    self.phase = BlinkPhase::Off;
                    self.rem = self.off;
                }
                BlinkPhase::Off => {
                    if self.rem > 0 {
                        self.rem -= 1;
                        return Control::Yield;
                    }
                    self.phase = BlinkPhase::Gate;
                }
                BlinkPhase::Gate => {
                    if self.leader.get() == Some(self.pid) {
                        return Control::Yield;
                    }
                    set_candidate(env, &self.candidate, true);
                    self.phase = BlinkPhase::On;
                    self.rem = self.on;
                }
            }
        }
    }
}

/// Poll-driven driver whose desired candidacy is an externally shared
/// flag rather than a time script: every step it copies the flag into
/// `candidate_p`. A nemesis flips the flag via a registered switch to
/// realize *fault-driven* candidacy churn.
struct ExternalDriver {
    desired: Local<bool>,
    candidate: Local<bool>,
    started: bool,
}

impl Stepper for ExternalDriver {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control {
        let env = ctx.env();
        if !self.started {
            self.started = true;
            env.observe(OBS_CANDIDATE, 0, self.candidate.get() as i64);
        }
        set_candidate(env, &self.candidate, self.desired.get());
        Control::Yield
    }
}

/// Adds a driver task for process `pid` whose candidacy follows a shared
/// *desired* flag (initially `initial`) instead of a time script.
///
/// Returns the flag; register it as a nemesis switch so `SetSwitch`
/// fault actions churn the process's candidacy mid-run. Changes take
/// effect on the driver's next step, like every scripted transition.
pub fn add_external_candidate_driver(
    spawner: &mut dyn TaskSpawner,
    pid: ProcId,
    handles: &OmegaHandles,
    initial: bool,
) -> Local<bool> {
    let desired = Local::new(initial);
    let stepper = ExternalDriver {
        desired: desired.clone(),
        candidate: handles.candidate.clone(),
        started: false,
    };
    spawner.spawn_stepper(pid, "candidacy", Box::new(stepper));
    desired
}

/// Adds a driver task for process `pid` that follows `script`, observing
/// every change of `candidate_p` into the trace.
///
/// The driver is a [`Stepper`]; on the simulator it runs on the poll
/// backend, on other spawners through the blocking adapter.
pub fn add_candidate_driver(
    spawner: &mut dyn TaskSpawner,
    pid: ProcId,
    handles: &OmegaHandles,
    script: CandidateScript,
) {
    let candidate = handles.candidate.clone();
    let leader = handles.leader.clone();
    let stepper: Box<dyn Stepper> = match script {
        CandidateScript::CanonicalBlink { on, off } => Box::new(CanonicalBlinkDriver {
            pid,
            on,
            off,
            candidate,
            leader,
            started: false,
            phase: BlinkPhase::Gate,
            rem: 0,
        }),
        script => Box::new(ScriptedDriver {
            script,
            candidate,
            started: false,
        }),
    };
    spawner.spawn_stepper(pid, "candidacy", stepper);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbwf_sim::schedule::RoundRobin;
    use tbwf_sim::{RunConfig, SimBuilder};

    fn run_script(script: CandidateScript, steps: u64) -> Vec<(u64, i64)> {
        let mut b = SimBuilder::new();
        let p = b.add_process("p0");
        let h = OmegaHandles::new();
        add_candidate_driver(&mut b, p, &h, script);
        let report = b.build().run(RunConfig::new(steps, RoundRobin::new()));
        report.assert_no_panics();
        report.trace.obs_series(ProcId(0), OBS_CANDIDATE, 0)
    }

    #[test]
    fn always_script_sets_true_once() {
        let s = run_script(CandidateScript::Always, 100);
        assert_eq!(s.first().map(|(_, v)| *v), Some(0));
        assert_eq!(s.last().map(|(_, v)| *v), Some(1));
        assert!(s.len() <= 2);
    }

    #[test]
    fn from_script_waits() {
        let s = run_script(CandidateScript::From(50), 200);
        let flip = s.iter().find(|(_, v)| *v == 1).map(|(t, _)| *t).unwrap();
        assert!(flip >= 50);
    }

    #[test]
    fn blink_script_oscillates() {
        let s = run_script(CandidateScript::Blink { on: 20, off: 20 }, 400);
        let ones = s.iter().filter(|(_, v)| *v == 1).count();
        let zeros = s.iter().filter(|(_, v)| *v == 0).count();
        assert!(ones >= 3, "expected several on-phases, got {ones}");
        assert!(zeros >= 3, "expected several off-phases, got {zeros}");
    }

    #[test]
    fn canonical_blink_respects_leader_gate() {
        let mut b = SimBuilder::new();
        let p = b.add_process("p0");
        let h = OmegaHandles::new();
        // The process believes it is the leader forever: after its first
        // off-phase it must never become a candidate again.
        h.leader.set(Some(ProcId(0)));
        add_candidate_driver(
            &mut b,
            p,
            &h,
            CandidateScript::CanonicalBlink { on: 10, off: 5 },
        );
        let report = b.build().run(RunConfig::new(500, RoundRobin::new()));
        report.assert_no_panics();
        let s = report.trace.obs_series(ProcId(0), OBS_CANDIDATE, 0);
        // initial 0, one rise, one fall — then gated forever.
        let changes: Vec<i64> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(changes, vec![0, 1, 0]);
    }
}
