//! Executable specification of Ω∆ (Definitions 4–5, Theorem 7).

use crate::{OBS_CANDIDATE, OBS_LEADER};
use tbwf_sim::analysis::{holds_infinitely_often, stable_fraction};
use tbwf_sim::{ProcId, Trace};

/// The time of the last `leader` output change at any correct process —
/// the election's convergence time on a converged run (used by E2, E3
/// and E11).
pub fn convergence_time(trace: &Trace, n: usize) -> u64 {
    (0..n)
        .map(ProcId)
        .filter(|p| trace.is_correct(*p))
        .filter_map(|p| trace.obs_series(p, OBS_LEADER, 0).last().map(|(t, _)| *t))
        .max()
        .unwrap_or(0)
}

/// The candidacy class of a correct process in a run (Definition 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CandidateClass {
    /// `Ncandidates`: eventually always `candidate = false`.
    Never,
    /// `Pcandidates`: eventually always `candidate = true`.
    Permanent,
    /// `Rcandidates`: `candidate` is both true and false infinitely often.
    Repeated,
    /// The finite trace does not decide the class (should not happen with
    /// the driver scripts used in this workspace).
    Unclassified,
}

/// Thresholds for the finite-trace spec check.
#[derive(Clone, Copy, Debug)]
pub struct SpecParams {
    /// Final-streak fraction for classifying N/P candidates.
    pub class_frac: f64,
    /// Windows for the "infinitely often" classification of R candidates.
    pub io_windows: usize,
    /// Required final-streak fraction of the leader outputs.
    pub consequent_frac: f64,
}

impl Default for SpecParams {
    fn default() -> Self {
        SpecParams {
            class_frac: 0.3,
            io_windows: 3,
            consequent_frac: 0.05,
        }
    }
}

/// Classifies one correct process from its `candidate` series.
pub fn classify_candidate(
    series: &[(u64, i64)],
    total_time: u64,
    params: SpecParams,
) -> CandidateClass {
    if stable_fraction(series, total_time, |v| v == 0) >= params.class_frac {
        return CandidateClass::Never;
    }
    if stable_fraction(series, total_time, |v| v == 1) >= params.class_frac {
        return CandidateClass::Permanent;
    }
    let io_true = holds_infinitely_often(series, total_time, params.io_windows, |v| v == 1);
    let io_false = holds_infinitely_often(series, total_time, params.io_windows, |v| v == 0);
    if io_true && io_false {
        return CandidateClass::Repeated;
    }
    CandidateClass::Unclassified
}

/// Everything the spec checker needs about one run of Ω∆.
#[derive(Clone, Debug)]
pub struct OmegaRunData {
    /// Number of processes.
    pub n: usize,
    /// Run length in steps.
    pub total_time: u64,
    /// `candidate_p` series per process.
    pub candidate: Vec<Vec<(u64, i64)>>,
    /// `leader_p` series per process (`? = −1`).
    pub leader: Vec<Vec<(u64, i64)>>,
    /// Which processes crashed.
    pub crashed: Vec<bool>,
    /// Which processes are timely (by schedule design or measurement).
    pub timely: Vec<bool>,
}

impl OmegaRunData {
    /// Extracts the run data from a trace (observation conventions of this
    /// crate) plus the timely set.
    pub fn from_trace(trace: &Trace, n: usize, timely: &[ProcId]) -> Self {
        let total_time = trace.len() as u64;
        OmegaRunData {
            n,
            total_time,
            candidate: (0..n)
                .map(|p| trace.obs_series(ProcId(p), OBS_CANDIDATE, 0))
                .collect(),
            leader: (0..n)
                .map(|p| trace.obs_series(ProcId(p), OBS_LEADER, 0))
                .collect(),
            crashed: (0..n).map(|p| !trace.is_correct(ProcId(p))).collect(),
            timely: (0..n).map(|p| timely.contains(&ProcId(p))).collect(),
        }
    }

    /// The candidacy class of each process (crashed ⇒ `None`).
    pub fn classes(&self, params: SpecParams) -> Vec<Option<CandidateClass>> {
        (0..self.n)
            .map(|p| {
                if self.crashed[p] {
                    None
                } else {
                    Some(classify_candidate(
                        &self.candidate[p],
                        self.total_time,
                        params,
                    ))
                }
            })
            .collect()
    }
}

/// Instant-wise leader agreement after stabilization: from time `from`
/// on, any two correct timely processes that both output a *concrete*
/// leader (not `?`) must name the same process. Returns one message per
/// disagreeing pair (first disagreement only).
///
/// `from` must be a genuine stabilization point — after the last fault
/// has played out plus a re-convergence margin — since a leader change
/// (crash, churn) legitimately reaches the processes at different times.
/// The E12 gauntlet guarantees this for `settle`; the model checker
/// derives `from` from its decision window.
pub fn agreement_violations(data: &OmegaRunData, from: u64) -> Vec<String> {
    let procs: Vec<usize> = (0..data.n)
        .filter(|&p| !data.crashed[p] && data.timely[p])
        .collect();
    let value_at = |p: usize, t: u64| -> i64 {
        data.leader[p]
            .iter()
            .take_while(|&&(u, _)| u <= t)
            .last()
            .map(|&(_, v)| v)
            .unwrap_or(-1)
    };
    // Only leader-output changes can create or resolve a disagreement,
    // so checking at each observation time ≥ `from` (plus `from` itself)
    // is exhaustive over the suffix.
    let mut times: Vec<u64> = procs
        .iter()
        .flat_map(|&p| data.leader[p].iter().map(|&(t, _)| t))
        .filter(|&t| t >= from)
        .collect();
    times.push(from);
    times.sort_unstable();
    times.dedup();
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for &t in &times {
        for (i, &p) in procs.iter().enumerate() {
            for &q in &procs[i + 1..] {
                let (a, b) = (value_at(p, t), value_at(q, t));
                if a >= 0 && b >= 0 && a != b && seen.insert((p, q)) {
                    out.push(format!(
                        "leader disagreement at t = {t}: leader_p{p} = p{a} but leader_p{q} = p{b}"
                    ));
                }
            }
        }
    }
    out
}

/// Result of checking Definition 5 (or Theorem 7) on one run.
#[derive(Clone, Debug)]
pub struct OmegaVerdict {
    /// Whether every applicable clause held.
    pub ok: bool,
    /// The elected leader, when condition 1 applied.
    pub elected: Option<ProcId>,
    /// Human-readable failures.
    pub failures: Vec<String>,
    /// The candidacy classes that were inferred.
    pub classes: Vec<Option<CandidateClass>>,
}

/// Checks Definition 5 on a run. With `canonical = true` it checks the
/// stronger Theorem 7 instead (the elected leader must be a *permanent*
/// timely candidate).
pub fn check_spec(data: &OmegaRunData, params: SpecParams, canonical: bool) -> OmegaVerdict {
    let classes = data.classes(params);
    let mut failures = Vec::new();

    let in_class = |p: usize, c: CandidateClass| classes[p] == Some(c);
    let p_and_timely: Vec<usize> = (0..data.n)
        .filter(|&p| in_class(p, CandidateClass::Permanent) && data.timely[p])
        .collect();

    let mut elected = None;
    if !p_and_timely.is_empty() {
        // Condition 1: some timely candidate ℓ is eventually elected.
        // Infer ℓ from the final leader value of the lowest-id process in
        // Pcandidates ∩ Timely (clause (b) forces them all to agree).
        let witness = p_and_timely[0];
        let lval = data.leader[witness].last().map(|(_, v)| *v).unwrap_or(-1);
        if lval < 0 {
            failures.push(format!(
                "p{witness} ∈ Pcandidates ∩ Timely ends with leader = ? (no election)"
            ));
        } else {
            let l = lval as usize;
            elected = Some(ProcId(l));
            // ℓ must be a timely (P ∪ R)-candidate; under canonical use, a
            // timely P-candidate (Theorem 7).
            let class_ok = if canonical {
                in_class(l, CandidateClass::Permanent)
            } else {
                in_class(l, CandidateClass::Permanent) || in_class(l, CandidateClass::Repeated)
            };
            if !class_ok {
                failures.push(format!(
                    "elected p{l} has class {:?}, not allowed (canonical = {canonical})",
                    classes[l]
                ));
            }
            if !data.timely[l] {
                failures.push(format!("elected p{l} is not timely"));
            }
            // (a) eventually always leader_ℓ = ℓ.
            if stable_fraction(&data.leader[l], data.total_time, |v| v == l as i64)
                < params.consequent_frac
            {
                failures.push(format!("leader_p{l} does not stabilize to p{l}"));
            }
            // (b) every P-candidate converges to ℓ.
            for p in 0..data.n {
                if in_class(p, CandidateClass::Permanent)
                    && stable_fraction(&data.leader[p], data.total_time, |v| v == l as i64)
                        < params.consequent_frac
                {
                    failures.push(format!(
                        "leader_p{p} (P-candidate) does not stabilize to p{l}"
                    ));
                }
            }
            // (c) every R-candidate converges into {?, ℓ}.
            for p in 0..data.n {
                if in_class(p, CandidateClass::Repeated)
                    && stable_fraction(&data.leader[p], data.total_time, |v| {
                        v == -1 || v == l as i64
                    }) < params.consequent_frac
                {
                    failures.push(format!(
                        "leader_p{p} (R-candidate) leaves {{?, p{l}}} near the end"
                    ));
                }
            }
        }
    }

    // Condition 2: every N-candidate ends with leader = ?.
    for p in 0..data.n {
        if in_class(p, CandidateClass::Never) {
            let series = &data.leader[p];
            let ok = if series.is_empty() {
                true // never observed a change from the initial `?`
            } else {
                stable_fraction(series, data.total_time, |v| v == -1) >= params.consequent_frac
            };
            if !ok {
                failures.push(format!("leader_p{p} (N-candidate) does not return to ?"));
            }
        }
    }

    OmegaVerdict {
        ok: failures.is_empty(),
        elected,
        failures,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady(v: i64) -> Vec<(u64, i64)> {
        vec![(0, v)]
    }

    #[test]
    fn classification_basics() {
        let p = SpecParams::default();
        assert_eq!(
            classify_candidate(&steady(1), 1000, p),
            CandidateClass::Permanent
        );
        assert_eq!(
            classify_candidate(&steady(0), 1000, p),
            CandidateClass::Never
        );
        let blink: Vec<(u64, i64)> = (0..20).map(|i| (i * 50, (i % 2) as i64)).collect();
        assert_eq!(
            classify_candidate(&blink, 1000, p),
            CandidateClass::Repeated
        );
    }

    fn two_proc_data(leader0: Vec<(u64, i64)>, leader1: Vec<(u64, i64)>) -> OmegaRunData {
        OmegaRunData {
            n: 2,
            total_time: 1000,
            candidate: vec![steady(1), steady(1)],
            leader: vec![leader0, leader1],
            crashed: vec![false, false],
            timely: vec![true, true],
        }
    }

    #[test]
    fn agreement_on_lowest_counter_leader_passes() {
        let d = two_proc_data(vec![(0, -1), (100, 0)], vec![(0, -1), (120, 0)]);
        let v = check_spec(&d, SpecParams::default(), false);
        assert!(v.ok, "failures: {:?}", v.failures);
        assert_eq!(v.elected, Some(ProcId(0)));
    }

    #[test]
    fn disagreement_fails() {
        let d = two_proc_data(vec![(0, 0)], vec![(0, 1)]);
        let v = check_spec(&d, SpecParams::default(), false);
        assert!(!v.ok);
        assert!(v.failures.iter().any(|f| f.contains("does not stabilize")));
    }

    #[test]
    fn no_election_for_timely_p_candidate_fails() {
        let d = two_proc_data(vec![(0, -1)], vec![(0, -1)]);
        let v = check_spec(&d, SpecParams::default(), false);
        assert!(!v.ok);
    }

    #[test]
    fn n_candidates_must_end_unknown() {
        let mut d = two_proc_data(vec![(0, 0)], vec![(0, 0)]);
        d.candidate[1] = steady(0); // p1 never candidates…
        d.leader[1] = vec![(0, 0)]; // …but still outputs a leader forever
        let v = check_spec(&d, SpecParams::default(), false);
        assert!(!v.ok);
        assert!(v.failures.iter().any(|f| f.contains("N-candidate")));
    }

    #[test]
    fn canonical_rejects_repeated_leader() {
        let mut d = two_proc_data(vec![(0, 1)], vec![(0, 1)]);
        // p1 (the elected one) is an R-candidate.
        d.candidate[1] = (0..20).map(|i| (i * 50, (i % 2) as i64)).collect();
        let lax = check_spec(&d, SpecParams::default(), false);
        assert!(lax.ok, "Def 5 allows an R leader: {:?}", lax.failures);
        let strict = check_spec(&d, SpecParams::default(), true);
        assert!(!strict.ok, "Thm 7 forbids an R leader");
    }

    #[test]
    fn agreement_violations_finds_post_settle_splits() {
        // Agreement holds from t = 500 on…
        let d = two_proc_data(vec![(0, 0)], vec![(0, 1), (400, 0)]);
        assert!(agreement_violations(&d, 500).is_empty());
        // …but not from t = 300 (p1 still names p1 at 300).
        let v = agreement_violations(&d, 300);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("t = 300"), "got {v:?}");
        // `?` outputs never disagree with anyone.
        let q = two_proc_data(vec![(0, 0)], vec![(0, -1)]);
        assert!(agreement_violations(&q, 0).is_empty());
        // Crashed and non-timely processes are exempt.
        let mut c = two_proc_data(vec![(0, 0)], vec![(0, 1)]);
        c.crashed[1] = true;
        assert!(agreement_violations(&c, 0).is_empty());
    }

    #[test]
    fn empty_system_without_timely_p_only_checks_condition2() {
        let mut d = two_proc_data(vec![(0, -1)], vec![(0, -1)]);
        d.candidate = vec![steady(0), steady(0)];
        let v = check_spec(&d, SpecParams::default(), false);
        assert!(v.ok, "failures: {:?}", v.failures);
        assert_eq!(v.elected, None);
    }
}
