//! The dynamic leader elector **Ω∆** — Sections 4–6 of the paper.
//!
//! Ω∆ lets processes *dynamically* compete for leadership through a local
//! input `candidate_p ∈ {true, false}` and a local output
//! `leader_p ∈ Π ∪ {?}`. Its specification (Definition 5) is stated in
//! terms of the *timeliness* of the candidates: if at least one timely
//! process is eventually a permanent candidate, then a timely candidate is
//! eventually elected at every permanent candidate — even if other
//! candidates flicker, crash, or are arbitrarily slow.
//!
//! Two implementations are provided:
//!
//! * [`atomic_impl`] — Figure 3: atomic registers plus a mesh of activity
//!   monitors (`tbwf-monitor`);
//! * [`abortable_impl`] — Figures 4–6: single-writer single-reader
//!   **abortable** registers only, using the final-value message channel
//!   (Fig. 4) and the two-register heartbeat (Fig. 5).
//!
//! [`spec`] turns Definition 5 / Theorem 7 into executable checks;
//! [`drivers`] provides candidate-input driver tasks (including the
//! *canonical use* of Definition 6); [`harness`] assembles complete
//! n-process systems for tests and experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod abortable_impl;
pub mod atomic_impl;
pub mod drivers;
pub mod harness;
pub mod omega_fd;
pub mod spec;

pub use drivers::{add_candidate_driver, add_external_candidate_driver, CandidateScript};
pub use harness::{run_omega_system, OmegaKind, OmegaSystemConfig};
pub use omega_fd::{install_omega_fd, OmegaFdHandle};
pub use spec::{
    check_spec, classify_candidate, CandidateClass, OmegaRunData, OmegaVerdict, SpecParams,
};

use tbwf_sim::{Env, Local, ProcId};

/// Observation key for the `leader` output (`? = −1`, else the process id).
pub const OBS_LEADER: &str = "leader";
/// Observation key for the `candidate` input (0/1).
pub const OBS_CANDIDATE: &str = "candidate";

/// The local interface between one process and Ω∆ (Section 4).
#[derive(Clone)]
pub struct OmegaHandles {
    /// Input `candidate_p`: set true to compete for leadership.
    pub candidate: Local<bool>,
    /// Output `leader_p`: `None` encodes `?`.
    pub leader: Local<Option<ProcId>>,
}

impl OmegaHandles {
    /// Fresh handles: not a candidate, leader `?`.
    pub fn new() -> Self {
        OmegaHandles {
            candidate: Local::new(false),
            leader: Local::new(None),
        }
    }
}

impl Default for OmegaHandles {
    fn default() -> Self {
        Self::new()
    }
}

/// Encodes a leader value for the trace (`? = −1`).
pub fn leader_code(v: Option<ProcId>) -> i64 {
    v.map(|p| p.0 as i64).unwrap_or(-1)
}

/// Sets `leader_p` and records the change in the trace (only on change).
pub(crate) fn set_leader(env: &dyn Env, handle: &Local<Option<ProcId>>, v: Option<ProcId>) {
    if handle.get() != v {
        handle.set(v);
        env.observe(OBS_LEADER, 0, leader_code(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_code_encodes_unknown() {
        assert_eq!(leader_code(None), -1);
        assert_eq!(leader_code(Some(ProcId(4))), 4);
    }

    #[test]
    fn handles_default_state() {
        let h = OmegaHandles::new();
        assert!(!h.candidate.get());
        assert_eq!(h.leader.get(), None);
    }
}
