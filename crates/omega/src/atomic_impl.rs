//! Figure 3: implementation of Ω∆ using activity monitors and atomic
//! registers (Theorems 11–12).
//!
//! Each process `p` ranks candidates by a shared `CounterRegister[q]`
//! (roughly: how many times `q` has been considered "bad" for leadership)
//! and elects the *active* process with the smallest `(counter, id)` pair.
//! Two punishment rules keep the ranking honest:
//!
//! * **self-punishment** — every time `p` (re-)becomes a candidate it
//!   increments its own counter (lines 7–8), so a process that joins and
//!   leaves forever cannot keep the smallest counter;
//! * **fault punishment** — when `A(p, q)` suspects `q` anew
//!   (`faultCntr[q]` grew), `p` increments `CounterRegister[q]`
//!   (lines 18–21), so non-timely processes drift out of contention.
//!
//! Line numbers in comments refer to Figure 3.

use crate::{set_leader, OmegaHandles};
use tbwf_monitor::{ProcessMonitorHandles, Status};
use tbwf_registers::{OpToken, SharedAtomic};
use tbwf_sim::{Control, Env, ProcId, SimResult, StepCtx, Stepper};

/// The per-process state and code of the Figure 3 algorithm.
pub struct AtomicOmegaProcess {
    /// This process.
    pub p: ProcId,
    /// Number of processes.
    pub n: usize,
    /// The Ω∆ input/output handles.
    pub handles: OmegaHandles,
    /// This process's view of the activity-monitor mesh.
    pub monitors: ProcessMonitorHandles,
    /// `CounterRegister[q]` for every `q` (shared, multi-writer atomic).
    pub counter_regs: Vec<SharedAtomic<i64>>,
    /// **Ablation knob** (paper behavior: `true`). When `false`, lines
    /// 7–8 (the self-punishment on re-candidacy) are skipped. The paper:
    /// "Without this self-punishment, it is easy to find a scenario
    /// where r has the smallest CounterRegister and leadership oscillates
    /// forever between r and another process." See experiment E10.
    pub self_punish: bool,
}

impl AtomicOmegaProcess {
    /// The main task body (Figure 3). Runs forever; returns only on halt.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
    pub fn run(&self, env: &dyn Env) -> SimResult<()> {
        let n = self.n;
        let p = self.p;
        let others = || (0..n).map(ProcId).filter(move |&q| q != p);
        // { Initial state }
        let mut fault_cntr = vec![0u64; n];
        let mut max_fault_cntr = vec![0u64; n];
        let mut counter = vec![0i64; n];
        let mut status = vec![Status::Unknown; n];
        // Diagnostics (trace-only): last observed activeSet bitmap and
        // counter views, recorded on change.
        let mut last_active_mask = -1i64;
        let mut last_counter_obs = vec![i64::MIN; n];

        // 1: repeat forever
        loop {
            // 2: LEADER ← ?
            set_leader(env, &self.handles.leader, None);
            // 3–4: stop monitoring and stop being active for everyone.
            for q in others() {
                self.monitors.monitoring.set(q, false);
                self.monitors.active_for.set(q, false);
            }
            // 5: while CANDIDATE = false do skip
            while !self.handles.candidate.get() {
                env.tick()?;
            }
            // 6: for each q do MONITORING[q] ← on
            for q in others() {
                self.monitors.monitoring.set(q, true);
            }
            // 7–8: self-punishment (ablatable).
            if self.self_punish {
                let own = self.counter_regs[p.0].read(env)?;
                self.counter_regs[p.0].write(env, own + 1)?;
            }
            // 9: while CANDIDATE = true do
            while self.handles.candidate.get() {
                env.tick()?;
                // 10–11: consult A(p, q) until a non-? status for each q.
                // (Terminates: monitoring[q] is on, so the A(p, q) task
                // sets a non-? status after its next register read.)
                for q in others() {
                    loop {
                        status[q.0] = self.monitors.status.get(q);
                        fault_cntr[q.0] = self.monitors.fault.get(q);
                        if status[q.0] != Status::Unknown {
                            break;
                        }
                        env.tick()?;
                    }
                }
                // footnote 6: the self pair is trivially active.
                status[p.0] = Status::Active;
                fault_cntr[p.0] = 0;
                // 12: activeSet ← {q : status[q] = active} ∪ {p}
                let active_set: Vec<ProcId> = (0..n)
                    .map(ProcId)
                    .filter(|&q| q == p || status[q.0] == Status::Active)
                    .collect();
                let mask = active_set.iter().fold(0i64, |m, q| m | (1 << q.0));
                if mask != last_active_mask {
                    last_active_mask = mask;
                    env.observe("activeset", 0, mask);
                }
                // 13: for each q do counter[q] ← READ(CounterRegister[q])
                for q in 0..n {
                    counter[q] = self.counter_regs[q].read(env)?;
                    if counter[q] != last_counter_obs[q] {
                        last_counter_obs[q] = counter[q];
                        env.observe("counter", q as u32, counter[q]);
                    }
                }
                // 14: LEADER ← ℓ minimizing (counter[ℓ], ℓ) over activeSet
                let leader = *active_set
                    .iter()
                    .min_by_key(|&&q| (counter[q.0], q))
                    .expect("activeSet contains p");
                set_leader(env, &self.handles.leader, Some(leader));
                // 15–17: be active for others iff we believe we lead.
                let lead = leader == p;
                for q in others() {
                    self.monitors.active_for.set(q, lead);
                }
                // 18–21: punish processes whose fault counter grew.
                for q in others() {
                    if fault_cntr[q.0] > max_fault_cntr[q.0] {
                        self.counter_regs[q.0].write(env, counter[q.0] + 1)?;
                        max_fault_cntr[q.0] = fault_cntr[q.0];
                    }
                }
            }
        }
    }
}

impl AtomicOmegaProcess {
    /// Converts into the poll-driven [`Stepper`] form of the same
    /// algorithm (the step engine's native backend).
    ///
    /// One [`step`](Stepper::step) executes exactly the code between two
    /// consecutive `tick` points of [`run`](AtomicOmegaProcess::run) —
    /// register operations straddle a step boundary (invoke at the end of
    /// one segment, complete at the start of the next) — so both forms
    /// produce identical traces under the same schedule.
    pub fn into_stepper(self) -> AtomicOmegaStepper {
        let n = self.n;
        AtomicOmegaStepper {
            fault_cntr: vec![0; n],
            max_fault_cntr: vec![0; n],
            counter: vec![0; n],
            status: vec![Status::Unknown; n],
            active_set: Vec::new(),
            last_active_mask: -1,
            last_counter_obs: vec![i64::MIN; n],
            state: AtomicState::Start,
            proc: self,
        }
    }
}

/// Where the Figure 3 control flow is parked between steps. Each variant
/// names the segment the *next* step executes; `Pending` variants carry
/// the token of a register operation invoked at the end of the previous
/// segment.
#[derive(Clone, Copy)]
enum AtomicState {
    /// Lines 1–5: top of the outer loop.
    Start,
    /// Line 5: waiting to become a candidate.
    WaitCand,
    /// Lines 7–8: the self-punishment read is in flight.
    SelfReadPending(OpToken),
    /// Lines 7–8: the self-punishment write is in flight.
    SelfWritePending(OpToken),
    /// Line 9 head tick consumed: run lines 10 onward.
    MainBody,
    /// Lines 10–11: waiting for a non-`?` status of `q`.
    StatusWait { q: usize },
    /// Line 13: the read of `CounterRegister[q]` is in flight.
    CounterRead { q: usize, tok: OpToken },
    /// Lines 18–21: the punishment write for `q` is in flight.
    PunishWrite { q: usize, tok: OpToken },
}

/// Poll-driven form of [`AtomicOmegaProcess`]: the Figure 3 main loop as
/// a [`Stepper`] state machine. Built with
/// [`AtomicOmegaProcess::into_stepper`].
pub struct AtomicOmegaStepper {
    proc: AtomicOmegaProcess,
    fault_cntr: Vec<u64>,
    max_fault_cntr: Vec<u64>,
    counter: Vec<i64>,
    status: Vec<Status>,
    active_set: Vec<ProcId>,
    last_active_mask: i64,
    last_counter_obs: Vec<i64>,
    state: AtomicState,
}

impl AtomicOmegaStepper {
    fn others(&self) -> impl Iterator<Item = ProcId> + '_ {
        let p = self.proc.p;
        (0..self.proc.n).map(ProcId).filter(move |&q| q != p)
    }

    /// Lines 2–4, then fall through to the line-5 check.
    fn outer_top(&mut self, env: &dyn Env) {
        set_leader(env, &self.proc.handles.leader, None);
        for q in self.others().collect::<Vec<_>>() {
            self.proc.monitors.monitoring.set(q, false);
            self.proc.monitors.active_for.set(q, false);
        }
        self.arm_or_wait(env);
    }

    /// Line 5; on candidacy, lines 6–8 and entry into the line-9 loop.
    fn arm_or_wait(&mut self, env: &dyn Env) {
        if !self.proc.handles.candidate.get() {
            self.state = AtomicState::WaitCand;
            return;
        }
        for q in self.others().collect::<Vec<_>>() {
            self.proc.monitors.monitoring.set(q, true);
        }
        if self.proc.self_punish {
            let p = self.proc.p.0;
            let tok = self.proc.counter_regs[p].invoke_read(env);
            self.state = AtomicState::SelfReadPending(tok);
        } else {
            self.loop_or_leave(env);
        }
    }

    /// The line-9 while-head check.
    fn loop_or_leave(&mut self, env: &dyn Env) {
        if self.proc.handles.candidate.get() {
            self.state = AtomicState::MainBody;
        } else {
            self.outer_top(env);
        }
    }

    /// Lines 10–11 resumed at process `from`; on completion the footnote-6
    /// self pair, line 12, and the first line-13 read.
    fn scan_status_from(&mut self, env: &dyn Env, from: usize) {
        let p = self.proc.p.0;
        let n = self.proc.n;
        let mut q = from;
        while q < n {
            if q == p {
                q += 1;
                continue;
            }
            self.status[q] = self.proc.monitors.status.get(ProcId(q));
            self.fault_cntr[q] = self.proc.monitors.fault.get(ProcId(q));
            if self.status[q] == Status::Unknown {
                self.state = AtomicState::StatusWait { q };
                return;
            }
            q += 1;
        }
        // footnote 6: the self pair is trivially active.
        self.status[p] = Status::Active;
        self.fault_cntr[p] = 0;
        // 12: activeSet ← {q : status[q] = active} ∪ {p}
        self.active_set = (0..n)
            .map(ProcId)
            .filter(|&q| q.0 == p || self.status[q.0] == Status::Active)
            .collect();
        let mask = self.active_set.iter().fold(0i64, |m, q| m | (1 << q.0));
        if mask != self.last_active_mask {
            self.last_active_mask = mask;
            env.observe("activeset", 0, mask);
        }
        // 13: first counter read.
        let tok = self.proc.counter_regs[0].invoke_read(env);
        self.state = AtomicState::CounterRead { q: 0, tok };
    }

    /// Lines 14–17, then the line 18–21 punishment scan.
    fn elect_and_punish(&mut self, env: &dyn Env) {
        let p = self.proc.p;
        // 14: LEADER ← ℓ minimizing (counter[ℓ], ℓ) over activeSet
        let leader = *self
            .active_set
            .iter()
            .min_by_key(|&&q| (self.counter[q.0], q))
            .expect("activeSet contains p");
        set_leader(env, &self.proc.handles.leader, Some(leader));
        // 15–17: be active for others iff we believe we lead.
        let lead = leader == p;
        for q in self.others().collect::<Vec<_>>() {
            self.proc.monitors.active_for.set(q, lead);
        }
        self.punish_from(env, 0);
    }

    /// Lines 18–21 resumed at process `from`; on completion the line-9
    /// re-check.
    fn punish_from(&mut self, env: &dyn Env, from: usize) {
        let p = self.proc.p.0;
        for q in from..self.proc.n {
            if q == p {
                continue;
            }
            if self.fault_cntr[q] > self.max_fault_cntr[q] {
                let tok = self.proc.counter_regs[q].invoke_write(env, self.counter[q] + 1);
                self.state = AtomicState::PunishWrite { q, tok };
                return;
            }
        }
        self.loop_or_leave(env);
    }
}

impl Stepper for AtomicOmegaStepper {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control {
        let env = ctx.env();
        match self.state {
            AtomicState::Start => self.outer_top(env),
            AtomicState::WaitCand => self.arm_or_wait(env),
            AtomicState::SelfReadPending(tok) => {
                let p = self.proc.p.0;
                let own = self.proc.counter_regs[p].complete_read(env, tok);
                let tok = self.proc.counter_regs[p].invoke_write(env, own + 1);
                self.state = AtomicState::SelfWritePending(tok);
            }
            AtomicState::SelfWritePending(tok) => {
                let p = self.proc.p.0;
                self.proc.counter_regs[p].complete_write(env, tok);
                self.loop_or_leave(env);
            }
            AtomicState::MainBody => self.scan_status_from(env, 0),
            AtomicState::StatusWait { q } => self.scan_status_from(env, q),
            AtomicState::CounterRead { q, tok } => {
                self.counter[q] = self.proc.counter_regs[q].complete_read(env, tok);
                if self.counter[q] != self.last_counter_obs[q] {
                    self.last_counter_obs[q] = self.counter[q];
                    env.observe("counter", q as u32, self.counter[q]);
                }
                if q + 1 < self.proc.n {
                    let tok = self.proc.counter_regs[q + 1].invoke_read(env);
                    self.state = AtomicState::CounterRead { q: q + 1, tok };
                } else {
                    self.elect_and_punish(env);
                }
            }
            AtomicState::PunishWrite { q, tok } => {
                self.proc.counter_regs[q].complete_write(env, tok);
                self.max_fault_cntr[q] = self.fault_cntr[q];
                self.punish_from(env, q + 1);
            }
        }
        Control::Yield
    }
}

#[cfg(test)]
mod tests {
    use crate::harness::{run_omega_system, OmegaKind, OmegaSystemConfig};
    use crate::spec::{check_spec, OmegaRunData, SpecParams};
    use crate::CandidateScript;
    use tbwf_sim::schedule::RoundRobin;
    use tbwf_sim::{ProcId, RunConfig};

    #[test]
    fn all_timely_permanent_candidates_elect_p0() {
        let cfg = OmegaSystemConfig {
            n: 3,
            kind: OmegaKind::Atomic,
            scripts: vec![CandidateScript::Always; 3],
            ..Default::default()
        };
        let out = run_omega_system(&cfg, RunConfig::new(60_000, RoundRobin::new()));
        out.report.assert_no_panics();
        let timely: Vec<ProcId> = (0..3).map(ProcId).collect();
        let data = OmegaRunData::from_trace(&out.report.trace, 3, &timely);
        let v = check_spec(&data, SpecParams::default(), false);
        assert!(v.ok, "spec failures: {:?}", v.failures);
        // With equal counters the smallest id wins.
        assert_eq!(v.elected, Some(ProcId(0)));
    }

    #[test]
    fn non_candidates_keep_unknown_leader() {
        let cfg = OmegaSystemConfig {
            n: 3,
            kind: OmegaKind::Atomic,
            scripts: vec![
                CandidateScript::Always,
                CandidateScript::Always,
                CandidateScript::Never,
            ],
            ..Default::default()
        };
        let out = run_omega_system(&cfg, RunConfig::new(60_000, RoundRobin::new()));
        out.report.assert_no_panics();
        assert_eq!(out.handles[2].leader.get(), None);
        let timely: Vec<ProcId> = (0..3).map(ProcId).collect();
        let data = OmegaRunData::from_trace(&out.report.trace, 3, &timely);
        let v = check_spec(&data, SpecParams::default(), false);
        assert!(v.ok, "spec failures: {:?}", v.failures);
    }

    #[test]
    fn crashed_leader_is_replaced() {
        let cfg = OmegaSystemConfig {
            n: 3,
            kind: OmegaKind::Atomic,
            scripts: vec![CandidateScript::Always; 3],
            ..Default::default()
        };
        let out = run_omega_system(
            &cfg,
            RunConfig::new(120_000, RoundRobin::new()).crash(20_000, ProcId(0)),
        );
        out.report.assert_no_panics();
        // p0 crashes; the survivors must converge on a new leader.
        assert_eq!(out.handles[1].leader.get(), Some(ProcId(1)));
        assert_eq!(out.handles[2].leader.get(), Some(ProcId(1)));
    }
}
