//! The classic failure detector **Ω** obtained from Ω∆ (Section 1.2,
//! final remark).
//!
//! "The implementation of Ω∆ using abortable registers implies that one
//! can implement Ω — a failure detector which is sufficient to solve
//! consensus — in a system with abortable registers and only one timely
//! process."
//!
//! Ω's interface is a single output per process, `leader_p ∈ Π`, such
//! that eventually every correct process permanently outputs the same
//! correct process. The reduction is the obvious one: every process is a
//! *permanent candidate* of Ω∆ (`candidate_p = true` forever); when Ω∆
//! outputs `?`, Ω repeats its previous estimate (Ω must always name
//! somebody). If at least one correct process is timely, Ω∆'s property 1
//! yields the required eventual agreement on a timely (hence correct)
//! leader.

use crate::drivers::add_candidate_driver;
use crate::harness::install_omega;
use crate::{CandidateScript, OmegaHandles, OmegaKind};
use tbwf_registers::RegisterFactory;
use tbwf_sim::{Env, Local, ProcId, SimBuilder};

/// Observation key for the Ω output (always a process id).
pub const OBS_OMEGA: &str = "omega_leader";

/// The per-process Ω output.
#[derive(Clone)]
pub struct OmegaFdHandle {
    /// Current leader estimate (Ω always outputs *some* process).
    pub leader: Local<ProcId>,
}

/// Installs the failure detector Ω for all `n` processes on top of the
/// chosen Ω∆ implementation. Every process permanently competes; a small
/// adapter task per process converts the Ω∆ output into Ω's
/// never-`?` output (holding the last estimate through `?` phases).
///
/// Returns the Ω output handles. The processes `0..n` must already exist
/// in `builder`.
pub fn install_omega_fd(
    builder: &mut SimBuilder,
    factory: &RegisterFactory,
    n: usize,
    kind: OmegaKind,
) -> Vec<OmegaFdHandle> {
    let delta_handles: Vec<OmegaHandles> = install_omega(builder, factory, n, kind);
    let mut fd_handles = Vec::with_capacity(n);
    for (p, dh) in delta_handles.iter().enumerate() {
        // Permanent candidacy: Π = the candidate set, forever.
        add_candidate_driver(builder, ProcId(p), dh, CandidateScript::Always);
        let out = OmegaFdHandle {
            leader: Local::new(ProcId(p)),
        };
        let leader_in = dh.leader.clone();
        let leader_out = out.leader.clone();
        builder.add_task(ProcId(p), "omega-fd", move |env| {
            let mut last = leader_out.get();
            env.observe(OBS_OMEGA, 0, last.0 as i64);
            loop {
                if let Some(l) = leader_in.get() {
                    if l != last {
                        last = l;
                        leader_out.set(l);
                        env.observe(OBS_OMEGA, 0, l.0 as i64);
                    }
                }
                env.tick()?;
            }
        });
        fd_handles.push(out);
    }
    fd_handles
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbwf_sim::schedule::{PartiallySynchronous, RoundRobin};
    use tbwf_sim::RunConfig;

    fn run_fd(
        n: usize,
        kind: OmegaKind,
        config: impl FnOnce() -> RunConfig,
    ) -> (Vec<OmegaFdHandle>, tbwf_sim::RunReport) {
        let factory = RegisterFactory::default();
        let mut b = SimBuilder::new();
        for p in 0..n {
            b.add_process(&format!("p{p}"));
        }
        let handles = install_omega_fd(&mut b, &factory, n, kind);
        let report = b.build().run(config());
        report.assert_no_panics();
        (handles, report)
    }

    #[test]
    fn omega_converges_with_all_timely() {
        for kind in [OmegaKind::Atomic, OmegaKind::Abortable] {
            let (handles, _) = run_fd(3, kind, || RunConfig::new(120_000, RoundRobin::new()));
            let l = handles[0].leader.get();
            for h in &handles {
                assert_eq!(h.leader.get(), l, "{kind:?}: Ω outputs disagree");
            }
        }
    }

    #[test]
    fn omega_works_with_a_single_timely_process() {
        // The remark of Section 1.2: Ω from abortable registers with only
        // one timely process. p0 is the only timely process; Ω must
        // converge on it at p0 itself (the others are too slow to matter
        // within the prefix, but must not corrupt p0's view).
        let (handles, _) = run_fd(3, OmegaKind::Abortable, || {
            RunConfig::new(300_000, PartiallySynchronous::new(vec![ProcId(0)], 4, true))
        });
        assert_eq!(handles[0].leader.get(), ProcId(0));
    }

    #[test]
    fn omega_replaces_a_crashed_leader() {
        let (handles, report) = run_fd(3, OmegaKind::Atomic, || {
            RunConfig::new(200_000, RoundRobin::new()).crash(30_000, ProcId(0))
        });
        let survivors = [1, 2];
        let l = handles[1].leader.get();
        assert_ne!(l, ProcId(0), "crashed process still named by Ω");
        for p in survivors {
            assert_eq!(handles[p].leader.get(), l, "survivors disagree");
        }
        assert!(report.trace.crash_time(ProcId(0)).is_some());
    }

    #[test]
    fn omega_output_is_never_unknown() {
        // Unlike Ω∆, Ω has no `?`: the adapter holds the last estimate.
        let (_, report) = run_fd(2, OmegaKind::Atomic, || {
            RunConfig::new(40_000, RoundRobin::new())
        });
        for p in 0..2 {
            for (_, v) in report.trace.obs_series(ProcId(p), OBS_OMEGA, 0) {
                assert!(v >= 0, "Ω emitted a non-process value {v}");
            }
        }
    }
}
