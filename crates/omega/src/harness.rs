//! Assembling complete Ω∆ systems: registers, monitor mesh (when needed),
//! algorithm tasks, and candidate drivers.

// `for p in 0..n` indexing parallel handle vectors mirrors the paper's
// per-process wiring; an iterator chain would obscure it.
#![allow(clippy::needless_range_loop)]

use crate::abortable_impl::{AbortableOmegaProcess, HeartbeatChannels, Msg, MsgChannels};
use crate::atomic_impl::AtomicOmegaProcess;
use crate::drivers::{add_candidate_driver, CandidateScript};
use crate::OmegaHandles;
use std::sync::Arc;
use tbwf_monitor::MonitorMesh;
use tbwf_registers::{OpLog, RegisterFactory, RegisterFactoryConfig, SharedAbortable};
use tbwf_sim::{ProcId, RunConfig, RunReport, SimBuilder, TaskSpawner};

/// Which Ω∆ implementation to install.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OmegaKind {
    /// Figure 3 — atomic registers + activity monitors.
    Atomic,
    /// Figures 4–6 — SWSR abortable registers only.
    Abortable,
}

/// Configuration of a self-contained Ω∆ system run.
#[derive(Clone, Debug)]
pub struct OmegaSystemConfig {
    /// Number of processes.
    pub n: usize,
    /// Implementation to use.
    pub kind: OmegaKind,
    /// One candidacy script per process.
    pub scripts: Vec<CandidateScript>,
    /// Register backend configuration (seed, abort/effect policies).
    pub factory: RegisterFactoryConfig,
}

impl Default for OmegaSystemConfig {
    fn default() -> Self {
        OmegaSystemConfig {
            n: 2,
            kind: OmegaKind::Atomic,
            scripts: vec![CandidateScript::Always; 2],
            factory: RegisterFactoryConfig::default(),
        }
    }
}

/// Behavioral options for [`install_omega_with`]; the default is the
/// paper's exact algorithm, the other settings are ablation knobs.
#[derive(Clone, Copy, Debug)]
pub struct OmegaOptions {
    /// Figure 3 lines 7–8 (self-punishment on re-candidacy).
    pub self_punish: bool,
}

impl Default for OmegaOptions {
    fn default() -> Self {
        OmegaOptions { self_punish: true }
    }
}

/// Installs the Ω∆ implementation (registers + algorithm tasks, but *no*
/// candidate drivers) into `builder`. The `n` processes must already
/// exist. Returns the per-process handles.
///
/// Used directly by the TBWF transform (`tbwf-universal`), whose object
/// driver controls candidacy itself (Figure 7).
pub fn install_omega(
    spawner: &mut dyn TaskSpawner,
    factory: &RegisterFactory,
    n: usize,
    kind: OmegaKind,
) -> Vec<OmegaHandles> {
    install_omega_with(spawner, factory, n, kind, OmegaOptions::default())
}

/// [`install_omega`] with explicit [`OmegaOptions`] (ablations).
pub fn install_omega_with(
    spawner: &mut dyn TaskSpawner,
    factory: &RegisterFactory,
    n: usize,
    kind: OmegaKind,
    options: OmegaOptions,
) -> Vec<OmegaHandles> {
    let handles: Vec<OmegaHandles> = (0..n).map(|_| OmegaHandles::new()).collect();
    match kind {
        OmegaKind::Atomic => {
            let counter_regs: Vec<_> = (0..n)
                .map(|q| factory.atomic(&format!("CounterRegister[{q}]"), 0i64))
                .collect();
            let mesh = MonitorMesh::install(spawner, factory, n);
            for p in 0..n {
                let proc = AtomicOmegaProcess {
                    p: ProcId(p),
                    n,
                    handles: handles[p].clone(),
                    monitors: mesh.handles[p].clone(),
                    counter_regs: counter_regs.clone(),
                    self_punish: options.self_punish,
                };
                spawner.spawn_stepper(ProcId(p), "omega", Box::new(proc.into_stepper()));
            }
        }
        OmegaKind::Abortable => {
            // Full matrices of SWSR abortable registers.
            let mut msg: Vec<Vec<Option<SharedAbortable<Msg>>>> = vec![vec![None; n]; n];
            let mut hb1: Vec<Vec<Option<SharedAbortable<i64>>>> = vec![vec![None; n]; n];
            let mut hb2: Vec<Vec<Option<SharedAbortable<i64>>>> = vec![vec![None; n]; n];
            for p in 0..n {
                for q in 0..n {
                    if p == q {
                        continue;
                    }
                    let (wp, rq) = (ProcId(p), ProcId(q));
                    msg[p][q] = Some(factory.abortable_swsr(
                        &format!("MsgRegister[{p},{q}]"),
                        (0i64, 0i64),
                        wp,
                        rq,
                    ));
                    hb1[p][q] = Some(factory.abortable_swsr(
                        &format!("HbRegister1[{p},{q}]"),
                        0i64,
                        wp,
                        rq,
                    ));
                    hb2[p][q] = Some(factory.abortable_swsr(
                        &format!("HbRegister2[{p},{q}]"),
                        0i64,
                        wp,
                        rq,
                    ));
                }
            }
            for p in 0..n {
                let out: Vec<_> = (0..n).map(|q| msg[p][q].clone()).collect();
                let inn: Vec<_> = (0..n).map(|q| msg[q][p].clone()).collect();
                let hb1_out: Vec<_> = (0..n).map(|q| hb1[p][q].clone()).collect();
                let hb2_out: Vec<_> = (0..n).map(|q| hb2[p][q].clone()).collect();
                let hb1_in: Vec<_> = (0..n).map(|q| hb1[q][p].clone()).collect();
                let hb2_in: Vec<_> = (0..n).map(|q| hb2[q][p].clone()).collect();
                let proc = AbortableOmegaProcess {
                    p: ProcId(p),
                    n,
                    handles: handles[p].clone(),
                    msgs: MsgChannels::new(ProcId(p), n, out, inn),
                    hb: HeartbeatChannels::new(ProcId(p), n, hb1_out, hb2_out, hb1_in, hb2_in),
                };
                spawner.spawn_stepper(ProcId(p), "omega", Box::new(proc.into_stepper()));
            }
        }
    }
    handles
}

/// The result of [`run_omega_system`].
pub struct OmegaSystemOutput {
    /// The run report (trace + task outcomes).
    pub report: RunReport,
    /// Per-process Ω∆ handles (final values readable after the run).
    pub handles: Vec<OmegaHandles>,
    /// The register operation log.
    pub log: Arc<OpLog>,
}

/// Builds and runs a complete Ω∆ system: processes, implementation,
/// scripted candidate drivers.
///
/// ```
/// use tbwf_omega::{run_omega_system, CandidateScript, OmegaKind, OmegaSystemConfig};
/// use tbwf_sim::schedule::RoundRobin;
/// use tbwf_sim::{ProcId, RunConfig};
///
/// let cfg = OmegaSystemConfig {
///     n: 2,
///     kind: OmegaKind::Atomic,
///     scripts: vec![CandidateScript::Always; 2],
///     ..Default::default()
/// };
/// let out = run_omega_system(&cfg, RunConfig::new(10_000, RoundRobin::new()));
/// out.report.assert_no_panics();
/// // Equal counters: the lowest-id candidate wins at both processes.
/// assert_eq!(out.handles[0].leader.get(), Some(ProcId(0)));
/// assert_eq!(out.handles[1].leader.get(), Some(ProcId(0)));
/// ```
///
/// # Panics
///
/// Panics if `cfg.scripts.len() != cfg.n`.
pub fn run_omega_system(cfg: &OmegaSystemConfig, run: RunConfig) -> OmegaSystemOutput {
    assert_eq!(cfg.scripts.len(), cfg.n, "one candidacy script per process");
    let factory = RegisterFactory::new(cfg.factory);
    let mut b = SimBuilder::new();
    for p in 0..cfg.n {
        b.add_process(&format!("p{p}"));
    }
    let handles = install_omega(&mut b, &factory, cfg.n, cfg.kind);
    for p in 0..cfg.n {
        add_candidate_driver(&mut b, ProcId(p), &handles[p], cfg.scripts[p]);
    }
    let report = b.build().run(run);
    OmegaSystemOutput {
        report,
        handles,
        log: factory.log(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbwf_sim::schedule::RoundRobin;

    #[test]
    fn two_process_atomic_smoke() {
        let cfg = OmegaSystemConfig::default();
        let out = run_omega_system(&cfg, RunConfig::new(30_000, RoundRobin::new()));
        out.report.assert_no_panics();
        // Both permanent candidates must agree on p0 (equal counters,
        // smallest id wins).
        assert_eq!(out.handles[0].leader.get(), Some(ProcId(0)));
        assert_eq!(out.handles[1].leader.get(), Some(ProcId(0)));
    }

    #[test]
    #[should_panic(expected = "one candidacy script per process")]
    fn script_count_must_match() {
        let cfg = OmegaSystemConfig {
            n: 3,
            ..Default::default()
        };
        let _ = run_omega_system(&cfg, RunConfig::new(100, RoundRobin::new()));
    }

    /// A spawner that hides its inner builder's native poll backend, so
    /// every stepper goes through the default blocking adapter and runs
    /// on a gate-backed thread.
    struct ThreadBackend<'a>(&'a mut SimBuilder);

    impl TaskSpawner for ThreadBackend<'_> {
        fn spawn_task(&mut self, pid: ProcId, name: &str, body: tbwf_sim::TaskBody) {
            self.0.spawn_task(pid, name, body);
        }
    }

    /// Satellite of the step-engine refactor: the *same* Ω∆ system —
    /// algorithm tasks, monitor mesh, candidate drivers — must produce
    /// byte-identical step and observation traces whether its steppers
    /// run on the poll backend or through the blocking-thread adapter.
    #[test]
    fn backends_agree_on_full_omega_system() {
        for kind in [OmegaKind::Atomic, OmegaKind::Abortable] {
            let run_once = |threads: bool| {
                let n = 3;
                let factory = RegisterFactory::new(RegisterFactoryConfig::default());
                let mut b = SimBuilder::new();
                for p in 0..n {
                    b.add_process(&format!("p{p}"));
                }
                let scripts = [
                    CandidateScript::Always,
                    CandidateScript::Blink { on: 40, off: 40 },
                    CandidateScript::From(100),
                ];
                let handles;
                if threads {
                    let mut t = ThreadBackend(&mut b);
                    handles = install_omega(&mut t, &factory, n, kind);
                    for p in 0..n {
                        add_candidate_driver(&mut t, ProcId(p), &handles[p], scripts[p]);
                    }
                } else {
                    handles = install_omega(&mut b, &factory, n, kind);
                    for p in 0..n {
                        add_candidate_driver(&mut b, ProcId(p), &handles[p], scripts[p]);
                    }
                }
                b.build().run(RunConfig::new(12_000, RoundRobin::new()))
            };
            let poll = run_once(false);
            let thread = run_once(true);
            poll.assert_no_panics();
            thread.assert_no_panics();
            assert_eq!(
                poll.trace.steps, thread.trace.steps,
                "{kind:?}: step traces diverge across backends"
            );
            assert_eq!(
                poll.trace.obs, thread.trace.obs,
                "{kind:?}: observation traces diverge across backends"
            );
        }
    }
}
