//! Figures 4–6: implementation of Ω∆ using single-writer single-reader
//! **abortable** registers only (Theorem 13).
//!
//! Three pieces, exactly as in the paper:
//!
//! * [`MsgChannels`] (Figure 4) — communicating the *final value of a
//!   variable that stops changing*: the writer retries until one write
//!   succeeds; the reader backs off (doubling `readTimeout`) whenever its
//!   reads abort or return nothing new, eventually letting a `q`-timely
//!   writer run solo.
//! * [`HeartbeatChannels`] (Figure 5) — communicating a heartbeat through
//!   **two** alternating registers. One register is not enough: a read
//!   that aborts proves the writer is alive but not that it is timely —
//!   a slow writer can keep one register perpetually "under write". With
//!   two registers a slow writer is caught: while it dawdles on one
//!   register, reads of the *other* neither abort nor see a new value.
//! * [`AbortableOmegaProcess`] (Figure 6) — the main loop: rank by local
//!   counter views, punish inactive processes by *asking them* to raise
//!   their own counter (`actrTo`), self-punish on re-candidacy, and gate
//!   heartbeats on `writeDone` so that a process that cannot deliver its
//!   counter to `q` stops looking active to `q`.
//!
//! Line numbers in comments refer to Figures 4, 5 and 6.

// The `for q in 0..n` loops below deliberately mirror the paper's
// "for each q ∈ Π − {p}" iterations over several parallel vectors.
#![allow(clippy::needless_range_loop)]

use crate::{set_leader, OmegaHandles};
use std::collections::BTreeSet;
use tbwf_registers::{OpToken, ReadOutcome, SharedAbortable};
use tbwf_sim::{Control, Env, ProcId, SimResult, StepCtx, Stepper};

/// A Figure 4/6 message: `⟨counter_p[p], actrTo_p[q]⟩`.
pub type Msg = (i64, i64);

/// The Figure 4 communication state of one process `p`.
pub struct MsgChannels {
    p: ProcId,
    n: usize,
    /// `MsgRegister[p, q]`, written by `p`, read by `q` (index `q`).
    out: Vec<Option<SharedAbortable<Msg>>>,
    /// `MsgRegister[q, p]`, written by `q`, read by `p` (index `q`).
    inn: Vec<Option<SharedAbortable<Msg>>>,
    msg_curr: Vec<Msg>,
    prev_msg_from: Vec<Msg>,
    read_timer: Vec<u64>,
    read_timeout: Vec<u64>,
    prev_write_done: Vec<bool>,
}

impl MsgChannels {
    /// Creates the channel state. `out[q]`/`inn[q]` must be `Some` exactly
    /// for `q ≠ p`.
    pub fn new(
        p: ProcId,
        n: usize,
        out: Vec<Option<SharedAbortable<Msg>>>,
        inn: Vec<Option<SharedAbortable<Msg>>>,
    ) -> Self {
        MsgChannels {
            p,
            n,
            out,
            inn,
            msg_curr: vec![(0, 0); n],
            prev_msg_from: vec![(0, 0); n],
            read_timer: vec![1; n],
            read_timeout: vec![1; n],
            prev_write_done: vec![true; n],
        }
    }

    /// Figure 4, lines 1–7: `WriteMsgs(msgTo)`.
    ///
    /// Tries to communicate `msgTo[q]` to every `q ≠ p`; returns
    /// `prevWriteDone` — whether the *current* value has been written
    /// successfully to each `MsgRegister[p, q]`.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
    pub fn write_msgs(&mut self, env: &dyn Env, msg_to: &[Msg]) -> SimResult<Vec<bool>> {
        // 2: for each q ∈ Π − {p}
        for q in 0..self.n {
            if q == self.p.0 {
                continue;
            }
            env.tick()?; // local step: inspect state for this q
                         // 3: if (not prevWriteDone[q]) or msgCurr[q] ≠ msgTo[q]
            if !self.prev_write_done[q] || self.msg_curr[q] != msg_to[q] {
                // 4: if prevWriteDone[q] then msgCurr[q] := msgTo[q]
                if self.prev_write_done[q] {
                    self.msg_curr[q] = msg_to[q];
                }
                // 5: res ← WRITE(MsgRegister[p, q], msgCurr[q])
                let res = self.out[q]
                    .as_ref()
                    .expect("out register for peer")
                    .write(env, self.msg_curr[q])?;
                // 6: prevWriteDone[q] ← (res = ok)
                self.prev_write_done[q] = res.is_ok();
            }
        }
        // 7: return prevWriteDone
        Ok(self.prev_write_done.clone())
    }

    /// Figure 4, lines 8–19: `ReadMsgs()`.
    ///
    /// Polls each `MsgRegister[q, p]` every `readTimeout[q]` invocations,
    /// backing off on aborts or unchanged values; returns `prevMsgFrom`,
    /// the last successfully read message from each process.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
    pub fn read_msgs(&mut self, env: &dyn Env) -> SimResult<Vec<Msg>> {
        // 9: for each q ∈ Π − {p}
        for q in 0..self.n {
            if q == self.p.0 {
                continue;
            }
            env.tick()?; // local step: timer bookkeeping for this q
                         // 10: if readTimer[q] ≥ 1 then readTimer[q] ← readTimer[q] − 1
            if self.read_timer[q] >= 1 {
                self.read_timer[q] -= 1;
            }
            // 11: if readTimer[q] = 0 then
            if self.read_timer[q] == 0 {
                // 12: readTimer[q] ← readTimeout[q]
                self.read_timer[q] = self.read_timeout[q];
                // 13: res[q] ← READ(MsgRegister[q, p])
                let res = self.inn[q]
                    .as_ref()
                    .expect("in register for peer")
                    .read(env)?;
                match res {
                    // 14–15: abort or stale ⇒ back off.
                    ReadOutcome::Aborted => self.read_timeout[q] += 1,
                    ReadOutcome::Value(v) if v == self.prev_msg_from[q] => {
                        self.read_timeout[q] += 1;
                    }
                    // 16–18: fresh value ⇒ record it, reset the backoff.
                    ReadOutcome::Value(v) => {
                        self.prev_msg_from[q] = v;
                        self.read_timeout[q] = 1;
                    }
                }
            }
        }
        // 19: return prevMsgFrom
        Ok(self.prev_msg_from.clone())
    }
}

/// The Figure 5 heartbeat state of one process `p`.
pub struct HeartbeatChannels {
    p: ProcId,
    n: usize,
    /// `HbRegister1[p, q]` / `HbRegister2[p, q]` (written by `p`).
    hb1_out: Vec<Option<SharedAbortable<i64>>>,
    hb2_out: Vec<Option<SharedAbortable<i64>>>,
    /// `HbRegister1[q, p]` / `HbRegister2[q, p]` (read by `p`).
    hb1_in: Vec<Option<SharedAbortable<i64>>>,
    hb2_in: Vec<Option<SharedAbortable<i64>>>,
    hb_timeout: Vec<u64>,
    hb_timer: Vec<u64>,
    /// `None` encodes `⊥` (an aborted read).
    prev_hb1: Vec<Option<i64>>,
    prev_hb2: Vec<Option<i64>>,
    hb1: Vec<Option<i64>>,
    hb2: Vec<Option<i64>>,
    hb_send_counter: i64,
    active_set: BTreeSet<ProcId>,
}

impl HeartbeatChannels {
    /// Creates the heartbeat state; register vectors must be `Some`
    /// exactly for `q ≠ p`.
    pub fn new(
        p: ProcId,
        n: usize,
        hb1_out: Vec<Option<SharedAbortable<i64>>>,
        hb2_out: Vec<Option<SharedAbortable<i64>>>,
        hb1_in: Vec<Option<SharedAbortable<i64>>>,
        hb2_in: Vec<Option<SharedAbortable<i64>>>,
    ) -> Self {
        let mut active_set = BTreeSet::new();
        active_set.insert(p); // { Initial state }: activeSet = {p}
        HeartbeatChannels {
            p,
            n,
            hb1_out,
            hb2_out,
            hb1_in,
            hb2_in,
            hb_timeout: vec![1; n],
            hb_timer: vec![1; n],
            prev_hb1: vec![Some(0); n],
            prev_hb2: vec![Some(0); n],
            hb1: vec![Some(0); n],
            hb2: vec![Some(0); n],
            hb_send_counter: 0,
            active_set,
        }
    }

    /// Figure 5, lines 20–25: `SendHeartbeat(dest)`.
    ///
    /// Writes an ever-increasing counter to both heartbeat registers of
    /// every `q` with `dest[q]`; write aborts are deliberately ignored.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
    pub fn send_heartbeat(&mut self, env: &dyn Env, dest: &[bool]) -> SimResult<()> {
        // 21: hbSendCounter ← hbSendCounter + 1
        self.hb_send_counter += 1;
        // 22–25: for each destination, write both registers.
        for q in 0..self.n {
            if q == self.p.0 {
                continue;
            }
            env.tick()?; // local step: inspect dest[q]
            if dest[q] {
                let _ = self.hb1_out[q]
                    .as_ref()
                    .expect("hb1 out register")
                    .write(env, self.hb_send_counter)?;
                let _ = self.hb2_out[q]
                    .as_ref()
                    .expect("hb2 out register")
                    .write(env, self.hb_send_counter)?;
            }
        }
        Ok(())
    }

    /// Figure 5, lines 26–40: `ReceiveHeartbeat()`.
    ///
    /// Reads both heartbeat registers of each `q` every `hbTimeout[q]`
    /// invocations. `q` is considered timely only if, **for both
    /// registers**, the read aborted or returned a new value; otherwise
    /// `q` leaves the active set and the timeout adapts upward.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
    pub fn receive_heartbeat(&mut self, env: &dyn Env) -> SimResult<BTreeSet<ProcId>> {
        // 27: for each q ∈ Π − {p}
        for q in 0..self.n {
            if q == self.p.0 {
                continue;
            }
            env.tick()?; // local step: timer bookkeeping
                         // 28: if hbTimer[q] ≥ 1 then hbTimer[q] ← hbTimer[q] − 1
            if self.hb_timer[q] >= 1 {
                self.hb_timer[q] -= 1;
            }
            // 29: if hbTimer[q] = 0 then
            if self.hb_timer[q] == 0 {
                // 30: hbTimer[q] ← hbTimeout[q]
                self.hb_timer[q] = self.hb_timeout[q];
                // 31–32: remember the previous samples.
                self.prev_hb1[q] = self.hb1[q];
                self.prev_hb2[q] = self.hb2[q];
                // 33–34: sample both registers (⊥ becomes None).
                self.hb1[q] = self.hb1_in[q]
                    .as_ref()
                    .expect("hb1 in register")
                    .read(env)?
                    .value();
                self.hb2[q] = self.hb2_in[q]
                    .as_ref()
                    .expect("hb2 in register")
                    .read(env)?
                    .value();
                // 35: fresh-or-aborted on BOTH registers ⇒ active.
                let fresh1 = self.hb1[q].is_none() || self.hb1[q] != self.prev_hb1[q];
                let fresh2 = self.hb2[q].is_none() || self.hb2[q] != self.prev_hb2[q];
                if fresh1 && fresh2 {
                    // 36: activeSet ← activeSet ∪ {q}
                    self.active_set.insert(ProcId(q));
                } else {
                    // 38–39: activeSet ← activeSet − {q}; adapt timeout.
                    self.active_set.remove(&ProcId(q));
                    self.hb_timeout[q] += 1;
                }
            }
        }
        // 40: return activeSet
        Ok(self.active_set.clone())
    }
}

/// The per-process state and code of the Figure 6 main algorithm.
pub struct AbortableOmegaProcess {
    /// This process.
    pub p: ProcId,
    /// Number of processes.
    pub n: usize,
    /// The Ω∆ input/output handles.
    pub handles: OmegaHandles,
    /// Figure 4 channel state.
    pub msgs: MsgChannels,
    /// Figure 5 heartbeat state.
    pub hb: HeartbeatChannels,
}

impl AbortableOmegaProcess {
    /// The main task body (Figure 6). Runs forever; returns only on halt.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
    pub fn run(mut self, env: &dyn Env) -> SimResult<()> {
        let n = self.n;
        let p = self.p;
        // { Initial state }
        let mut leader = p;
        let mut counter = vec![0i64; n];
        let mut actr_to = vec![0i64; n];
        let mut write_done = vec![false; n];
        // 41: repeat forever
        loop {
            // 42: LEADER ← ?
            set_leader(env, &self.handles.leader, None);
            // 43: while CANDIDATE = false do skip
            while !self.handles.candidate.get() {
                env.tick()?;
            }
            // 44: self-punishment beyond the current leader's counter.
            counter[p.0] = counter[p.0].max(counter[leader.0] + 1);
            // 45: do … while CANDIDATE = true (lines 45–59)
            loop {
                env.tick()?;
                // 46: SendHeartbeat(writeDone)
                self.hb.send_heartbeat(env, &write_done)?;
                // 47: activeSet ← ReceiveHeartbeat()
                let active_set = self.hb.receive_heartbeat(env)?;
                // 48: pick the active process with the smallest counter.
                leader = *active_set
                    .iter()
                    .min_by_key(|&&q| (counter[q.0], q))
                    .expect("activeSet always contains p");
                // 49: LEADER ← leader
                set_leader(env, &self.handles.leader, Some(leader));
                // 50–53: assemble messages, punishing inactive processes.
                let mut msg_to = vec![(0i64, 0i64); n];
                for q in 0..n {
                    if q == p.0 {
                        continue;
                    }
                    // 51–52: ask inactive q to raise its counter beyond
                    // the current leader's.
                    if !active_set.contains(&ProcId(q)) {
                        actr_to[q] = actr_to[q].max(counter[leader.0] + 1);
                    }
                    // 53: msgTo[q] ← ⟨counter[p], actrTo[q]⟩
                    msg_to[q] = (counter[p.0], actr_to[q]);
                }
                // 54: writeDone ← WriteMsgs(msgTo)
                write_done = self.msgs.write_msgs(env, &msg_to)?;
                // 55: msgFrom ← ReadMsgs()
                let msg_from = self.msgs.read_msgs(env)?;
                // 56–58: adopt counters and apply received punishments.
                for q in 0..n {
                    if q == p.0 {
                        continue;
                    }
                    let (cq, actr_from_q) = msg_from[q];
                    counter[q] = cq;
                    counter[p.0] = counter[p.0].max(actr_from_q);
                }
                // 59: while CANDIDATE = true
                if !self.handles.candidate.get() {
                    break;
                }
            }
        }
    }
}

impl AbortableOmegaProcess {
    /// Converts into the poll-driven [`Stepper`] form of the same
    /// algorithm (the step engine's native backend).
    ///
    /// One [`step`](Stepper::step) executes exactly the code between two
    /// consecutive `tick` points of [`run`](AbortableOmegaProcess::run) —
    /// including the per-peer ticks inside the Figure 4/5 channel
    /// sub-routines — with register operations straddling step boundaries
    /// (invoke at the end of one segment, complete at the start of the
    /// next). Both forms produce identical traces under the same schedule.
    pub fn into_stepper(self) -> AbortableOmegaStepper {
        let n = self.n;
        AbortableOmegaStepper {
            leader: self.p,
            counter: vec![0; n],
            actr_to: vec![0; n],
            write_done: vec![false; n],
            msg_to: vec![(0, 0); n],
            state: AbState::Start,
            proc: self,
        }
    }
}

/// Where the Figure 4–6 control flow is parked between steps. `Body`
/// variants name the per-peer segment the next step executes; `Pending`
/// variants carry the token of an in-flight register operation.
#[derive(Clone, Copy)]
enum AbState {
    /// Lines 41–43: top of the outer loop.
    Start,
    /// Line 43: waiting to become a candidate.
    WaitCand,
    /// Line 45 head tick consumed: start `SendHeartbeat` (line 46).
    MainHead,
    /// Figure 5, lines 22–25: the per-`q` body of `SendHeartbeat`.
    SendBody { q: usize },
    /// The `HbRegister1[p, q]` write is in flight.
    SendHb1Pending { q: usize, tok: OpToken },
    /// The `HbRegister2[p, q]` write is in flight.
    SendHb2Pending { q: usize, tok: OpToken },
    /// Figure 5, lines 28–39: the per-`q` body of `ReceiveHeartbeat`.
    RecvBody { q: usize },
    /// The `HbRegister1[q, p]` read is in flight.
    RecvHb1Pending { q: usize, tok: OpToken },
    /// The `HbRegister2[q, p]` read is in flight.
    RecvHb2Pending { q: usize, tok: OpToken },
    /// Figure 4, lines 3–6: the per-`q` body of `WriteMsgs`.
    WriteBody { q: usize },
    /// The `MsgRegister[p, q]` write is in flight.
    WritePending { q: usize, tok: OpToken },
    /// Figure 4, lines 10–18: the per-`q` body of `ReadMsgs`.
    ReadBody { q: usize },
    /// The `MsgRegister[q, p]` read is in flight.
    ReadPending { q: usize, tok: OpToken },
}

/// Poll-driven form of [`AbortableOmegaProcess`]: the Figure 6 main loop
/// (with the Figure 4/5 channel sub-routines inlined) as a [`Stepper`]
/// state machine. Built with [`AbortableOmegaProcess::into_stepper`].
pub struct AbortableOmegaStepper {
    proc: AbortableOmegaProcess,
    leader: ProcId,
    counter: Vec<i64>,
    actr_to: Vec<i64>,
    write_done: Vec<bool>,
    msg_to: Vec<Msg>,
    state: AbState,
}

impl AbortableOmegaStepper {
    /// The first peer `≥ from` (skipping `p`), if any.
    fn next_other(&self, from: usize) -> Option<usize> {
        (from..self.proc.n).find(|&q| q != self.proc.p.0)
    }

    /// Line 42, then fall through to the line-43 check.
    fn outer_top(&mut self, env: &dyn Env) {
        set_leader(env, &self.proc.handles.leader, None);
        self.arm_or_wait(env);
    }

    /// Line 43; on candidacy, line 44 and entry into the line-45 loop.
    fn arm_or_wait(&mut self, _env: &dyn Env) {
        if !self.proc.handles.candidate.get() {
            self.state = AbState::WaitCand;
            return;
        }
        // 44: self-punishment beyond the current leader's counter.
        let p = self.proc.p.0;
        self.counter[p] = self.counter[p].max(self.counter[self.leader.0] + 1);
        self.state = AbState::MainHead;
    }

    /// Advances the `SendHeartbeat` loop past peer `q`.
    fn advance_send(&mut self, env: &dyn Env, q: usize) {
        match self.next_other(q + 1) {
            Some(q) => self.state = AbState::SendBody { q },
            None => self.begin_receive(env),
        }
    }

    /// Line 47: enter `ReceiveHeartbeat`.
    fn begin_receive(&mut self, env: &dyn Env) {
        match self.next_other(0) {
            Some(q) => self.state = AbState::RecvBody { q },
            None => self.finish_receive(env),
        }
    }

    /// Advances the `ReceiveHeartbeat` loop past peer `q`.
    fn advance_recv(&mut self, env: &dyn Env, q: usize) {
        match self.next_other(q + 1) {
            Some(q) => self.state = AbState::RecvBody { q },
            None => self.finish_receive(env),
        }
    }

    /// Lines 48–53, then entry into `WriteMsgs` (line 54).
    fn finish_receive(&mut self, env: &dyn Env) {
        let p = self.proc.p.0;
        // 48: pick the active process with the smallest counter.
        self.leader = *self
            .proc
            .hb
            .active_set
            .iter()
            .min_by_key(|&&q| (self.counter[q.0], q))
            .expect("activeSet always contains p");
        // 49: LEADER ← leader
        set_leader(env, &self.proc.handles.leader, Some(self.leader));
        // 50–53: assemble messages, punishing inactive processes.
        for q in 0..self.proc.n {
            if q == p {
                continue;
            }
            if !self.proc.hb.active_set.contains(&ProcId(q)) {
                self.actr_to[q] = self.actr_to[q].max(self.counter[self.leader.0] + 1);
            }
            self.msg_to[q] = (self.counter[p], self.actr_to[q]);
        }
        match self.next_other(0) {
            Some(q) => self.state = AbState::WriteBody { q },
            None => self.finish_writes(env),
        }
    }

    /// Advances the `WriteMsgs` loop past peer `q`.
    fn advance_write(&mut self, env: &dyn Env, q: usize) {
        match self.next_other(q + 1) {
            Some(q) => self.state = AbState::WriteBody { q },
            None => self.finish_writes(env),
        }
    }

    /// Figure 4 line 7 / line 54, then entry into `ReadMsgs` (line 55).
    fn finish_writes(&mut self, env: &dyn Env) {
        self.write_done = self.proc.msgs.prev_write_done.clone();
        match self.next_other(0) {
            Some(q) => self.state = AbState::ReadBody { q },
            None => self.finish_reads(env),
        }
    }

    /// Advances the `ReadMsgs` loop past peer `q`.
    fn advance_read(&mut self, env: &dyn Env, q: usize) {
        match self.next_other(q + 1) {
            Some(q) => self.state = AbState::ReadBody { q },
            None => self.finish_reads(env),
        }
    }

    /// Lines 56–58, then the line-59 re-check.
    fn finish_reads(&mut self, env: &dyn Env) {
        let p = self.proc.p.0;
        for q in 0..self.proc.n {
            if q == p {
                continue;
            }
            let (cq, actr_from_q) = self.proc.msgs.prev_msg_from[q];
            self.counter[q] = cq;
            self.counter[p] = self.counter[p].max(actr_from_q);
        }
        // 59: while CANDIDATE = true
        if self.proc.handles.candidate.get() {
            self.state = AbState::MainHead;
        } else {
            self.outer_top(env);
        }
    }
}

impl Stepper for AbortableOmegaStepper {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control {
        let env = ctx.env();
        match self.state {
            AbState::Start => self.outer_top(env),
            AbState::WaitCand => self.arm_or_wait(env),
            AbState::MainHead => {
                // 46 / Figure 5 line 21: bump the heartbeat counter, then
                // the first per-peer inspection step.
                self.proc.hb.hb_send_counter += 1;
                match self.next_other(0) {
                    Some(q) => self.state = AbState::SendBody { q },
                    None => self.begin_receive(env),
                }
            }
            AbState::SendBody { q } => {
                if self.write_done[q] {
                    let hb = &self.proc.hb;
                    let tok = hb.hb1_out[q]
                        .as_ref()
                        .expect("hb1 out register")
                        .invoke_write(env, hb.hb_send_counter);
                    self.state = AbState::SendHb1Pending { q, tok };
                } else {
                    self.advance_send(env, q);
                }
            }
            AbState::SendHb1Pending { q, tok } => {
                let hb = &self.proc.hb;
                let _ = hb.hb1_out[q]
                    .as_ref()
                    .expect("hb1 out register")
                    .complete_write(env, tok);
                let tok = hb.hb2_out[q]
                    .as_ref()
                    .expect("hb2 out register")
                    .invoke_write(env, hb.hb_send_counter);
                self.state = AbState::SendHb2Pending { q, tok };
            }
            AbState::SendHb2Pending { q, tok } => {
                let _ = self.proc.hb.hb2_out[q]
                    .as_ref()
                    .expect("hb2 out register")
                    .complete_write(env, tok);
                self.advance_send(env, q);
            }
            AbState::RecvBody { q } => {
                let hb = &mut self.proc.hb;
                // 28: if hbTimer[q] ≥ 1 then hbTimer[q] ← hbTimer[q] − 1
                if hb.hb_timer[q] >= 1 {
                    hb.hb_timer[q] -= 1;
                }
                // 29–34: sample both registers when the timer fires.
                if hb.hb_timer[q] == 0 {
                    hb.hb_timer[q] = hb.hb_timeout[q];
                    hb.prev_hb1[q] = hb.hb1[q];
                    hb.prev_hb2[q] = hb.hb2[q];
                    let tok = hb.hb1_in[q]
                        .as_ref()
                        .expect("hb1 in register")
                        .invoke_read(env);
                    self.state = AbState::RecvHb1Pending { q, tok };
                } else {
                    self.advance_recv(env, q);
                }
            }
            AbState::RecvHb1Pending { q, tok } => {
                let hb = &mut self.proc.hb;
                hb.hb1[q] = hb.hb1_in[q]
                    .as_ref()
                    .expect("hb1 in register")
                    .complete_read(env, tok)
                    .value();
                let tok = hb.hb2_in[q]
                    .as_ref()
                    .expect("hb2 in register")
                    .invoke_read(env);
                self.state = AbState::RecvHb2Pending { q, tok };
            }
            AbState::RecvHb2Pending { q, tok } => {
                let hb = &mut self.proc.hb;
                hb.hb2[q] = hb.hb2_in[q]
                    .as_ref()
                    .expect("hb2 in register")
                    .complete_read(env, tok)
                    .value();
                // 35: fresh-or-aborted on BOTH registers ⇒ active.
                let fresh1 = hb.hb1[q].is_none() || hb.hb1[q] != hb.prev_hb1[q];
                let fresh2 = hb.hb2[q].is_none() || hb.hb2[q] != hb.prev_hb2[q];
                if fresh1 && fresh2 {
                    hb.active_set.insert(ProcId(q));
                } else {
                    hb.active_set.remove(&ProcId(q));
                    hb.hb_timeout[q] += 1;
                }
                self.advance_recv(env, q);
            }
            AbState::WriteBody { q } => {
                let msgs = &mut self.proc.msgs;
                // 3: if (not prevWriteDone[q]) or msgCurr[q] ≠ msgTo[q]
                if !msgs.prev_write_done[q] || msgs.msg_curr[q] != self.msg_to[q] {
                    if msgs.prev_write_done[q] {
                        msgs.msg_curr[q] = self.msg_to[q];
                    }
                    let tok = msgs.out[q]
                        .as_ref()
                        .expect("out register for peer")
                        .invoke_write(env, msgs.msg_curr[q]);
                    self.state = AbState::WritePending { q, tok };
                } else {
                    self.advance_write(env, q);
                }
            }
            AbState::WritePending { q, tok } => {
                let msgs = &mut self.proc.msgs;
                let res = msgs.out[q]
                    .as_ref()
                    .expect("out register for peer")
                    .complete_write(env, tok);
                msgs.prev_write_done[q] = res.is_ok();
                self.advance_write(env, q);
            }
            AbState::ReadBody { q } => {
                let msgs = &mut self.proc.msgs;
                // 10: if readTimer[q] ≥ 1 then readTimer[q] ← readTimer[q] − 1
                if msgs.read_timer[q] >= 1 {
                    msgs.read_timer[q] -= 1;
                }
                // 11–13: read when the timer fires.
                if msgs.read_timer[q] == 0 {
                    msgs.read_timer[q] = msgs.read_timeout[q];
                    let tok = msgs.inn[q]
                        .as_ref()
                        .expect("in register for peer")
                        .invoke_read(env);
                    self.state = AbState::ReadPending { q, tok };
                } else {
                    self.advance_read(env, q);
                }
            }
            AbState::ReadPending { q, tok } => {
                let msgs = &mut self.proc.msgs;
                let res = msgs.inn[q]
                    .as_ref()
                    .expect("in register for peer")
                    .complete_read(env, tok);
                match res {
                    ReadOutcome::Aborted => msgs.read_timeout[q] += 1,
                    ReadOutcome::Value(v) if v == msgs.prev_msg_from[q] => {
                        msgs.read_timeout[q] += 1;
                    }
                    ReadOutcome::Value(v) => {
                        msgs.prev_msg_from[q] = v;
                        msgs.read_timeout[q] = 1;
                    }
                }
                self.advance_read(env, q);
            }
        }
        Control::Yield
    }
}

#[cfg(test)]
mod tests {
    use crate::harness::{run_omega_system, OmegaKind, OmegaSystemConfig};
    use crate::spec::{check_spec, OmegaRunData, SpecParams};
    use crate::CandidateScript;
    use tbwf_sim::schedule::RoundRobin;
    use tbwf_sim::{ProcId, RunConfig};

    #[test]
    fn abortable_omega_elects_with_all_timely() {
        let cfg = OmegaSystemConfig {
            n: 3,
            kind: OmegaKind::Abortable,
            scripts: vec![CandidateScript::Always; 3],
            ..Default::default()
        };
        let out = run_omega_system(&cfg, RunConfig::new(120_000, RoundRobin::new()));
        out.report.assert_no_panics();
        let timely: Vec<ProcId> = (0..3).map(ProcId).collect();
        let data = OmegaRunData::from_trace(&out.report.trace, 3, &timely);
        let v = check_spec(&data, SpecParams::default(), false);
        assert!(v.ok, "spec failures: {:?}", v.failures);
        let l = v.elected.expect("a leader must be elected");
        for p in 0..3 {
            assert_eq!(out.handles[p].leader.get(), Some(l), "p{p} disagrees");
        }
    }

    #[test]
    fn abortable_omega_survives_leader_crash() {
        let cfg = OmegaSystemConfig {
            n: 3,
            kind: OmegaKind::Abortable,
            scripts: vec![CandidateScript::Always; 3],
            ..Default::default()
        };
        let out = run_omega_system(
            &cfg,
            RunConfig::new(300_000, RoundRobin::new()).crash(30_000, ProcId(0)),
        );
        out.report.assert_no_panics();
        let l1 = out.handles[1].leader.get();
        let l2 = out.handles[2].leader.get();
        assert_eq!(l1, l2, "survivors disagree: {l1:?} vs {l2:?}");
        assert_ne!(l1, Some(ProcId(0)), "crashed process still leads");
        assert!(l1.is_some(), "no leader after crash");
    }
}
