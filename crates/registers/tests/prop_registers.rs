//! Property tests: register semantics under sequential (non-overlapping)
//! operation histories, plus policy laws.

use proptest::prelude::*;
use tbwf_registers::{
    AbortPolicy, EffectPolicy, ReadOutcome, RegisterFactory, RegisterFactoryConfig, WriteOutcome,
};
use tbwf_sim::{FreeRunEnv, ProcId};

#[derive(Clone, Copy, Debug)]
enum SeqOp {
    Write(i64),
    Read,
}

fn ops_strategy() -> impl Strategy<Value = Vec<SeqOp>> {
    prop::collection::vec(
        prop_oneof![(-100i64..100).prop_map(SeqOp::Write), Just(SeqOp::Read)],
        1..40,
    )
}

proptest! {
    /// Sequential operations on an atomic register: every read returns
    /// the most recently written value.
    #[test]
    fn atomic_register_is_a_register(ops in ops_strategy(), init in -100i64..100) {
        let f = RegisterFactory::default();
        let r = f.atomic("R", init);
        let env = FreeRunEnv::new(ProcId(0));
        let mut model = init;
        for op in ops {
            match op {
                SeqOp::Write(v) => { r.write(&env, v).unwrap(); model = v; }
                SeqOp::Read => prop_assert_eq!(r.read(&env).unwrap(), model),
            }
        }
    }

    /// Sequential operations never overlap, so an abortable register must
    /// behave exactly like an atomic register — no aborts, ever — even
    /// under the strongest abort policy.
    #[test]
    fn abortable_register_sequential_never_aborts(ops in ops_strategy(), init in -100i64..100, seed in 0u64..1000) {
        let f = RegisterFactory::new(RegisterFactoryConfig {
            seed,
            abort_policy: AbortPolicy::AlwaysOnOverlap,
            effect_policy: EffectPolicy::Never,
        });
        let r = f.abortable("R", init);
        let env = FreeRunEnv::new(ProcId(0));
        let mut model = init;
        for op in ops {
            match op {
                SeqOp::Write(v) => {
                    prop_assert_eq!(r.write(&env, v).unwrap(), WriteOutcome::Ok);
                    model = v;
                }
                SeqOp::Read => {
                    prop_assert_eq!(r.read(&env).unwrap(), ReadOutcome::Value(model));
                }
            }
        }
        // The log must agree: nothing overlapped, nothing aborted.
        let (total, overlapped, aborted) = f.log().abort_stats();
        prop_assert!(total > 0);
        prop_assert_eq!(overlapped, 0);
        prop_assert_eq!(aborted, 0);
    }

    /// Safe registers behave like atomic registers sequentially.
    #[test]
    fn safe_register_sequential_is_exact(ops in ops_strategy(), init in 0i64..100) {
        let f = RegisterFactory::default();
        let r = f.safe("S", init as u64);
        let env = FreeRunEnv::new(ProcId(0));
        let mut model = init as u64;
        for op in ops {
            match op {
                SeqOp::Write(v) => { r.write(&env, v.unsigned_abs()).unwrap(); model = v.unsigned_abs(); }
                SeqOp::Read => prop_assert_eq!(r.read(&env).unwrap(), model),
            }
        }
    }

    /// CAS register: sequential compare-and-swap follows the model.
    #[test]
    fn cas_register_matches_model(ops in prop::collection::vec((0i64..4, 0i64..4), 1..40)) {
        let f = RegisterFactory::default();
        let r = f.cas("C", 0i64);
        let env = FreeRunEnv::new(ProcId(0));
        let mut model = 0i64;
        for (expected, new) in ops {
            let ok = r.compare_and_swap(&env, &expected, new).unwrap();
            prop_assert_eq!(ok, model == expected);
            if ok { model = new; }
            prop_assert_eq!(r.read(&env).unwrap(), model);
        }
    }

    /// Abort-policy law: `Never` never aborts, `AlwaysOnOverlap` always
    /// does, and `Seeded` thresholds at `p_abort`.
    #[test]
    fn abort_policy_laws(u in 0.0f64..1.0, p in 0.0f64..1.0) {
        prop_assert!(!AbortPolicy::Never.aborts(u));
        prop_assert!(AbortPolicy::AlwaysOnOverlap.aborts(u));
        prop_assert_eq!(AbortPolicy::Seeded { p_abort: p }.aborts(u), u < p);
        prop_assert_eq!(EffectPolicy::Seeded { p_effect: p }.takes_effect(u), u < p);
    }

    /// Two factories with the same seed produce registers with identical
    /// adversary decisions (reproducibility of runs).
    #[test]
    fn same_seed_same_adversary(seed in 0u64..500) {
        let mk = || {
            let f = RegisterFactory::new(RegisterFactoryConfig {
                seed,
                abort_policy: AbortPolicy::Seeded { p_abort: 0.5 },
                effect_policy: EffectPolicy::Seeded { p_effect: 0.5 },
            });
            f.abortable("R", 0i64)
        };
        // Overlap two ops artificially by invoking both before ticks:
        // here we just run the same sequential script and compare logs —
        // the decision *streams* are seed-determined even if unused.
        let env = FreeRunEnv::new(ProcId(0));
        let r1 = mk();
        let r2 = mk();
        for i in 0..10 {
            let a = r1.write(&env, i).unwrap();
            let b = r2.write(&env, i).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}
