//! Deterministic overlap tests: drive two processes with a scripted
//! schedule so that register operations overlap (or don't) exactly as
//! planned, and check the abortable semantics at the boundary.

use std::sync::Arc;
use tbwf_registers::{
    AbortPolicy, EffectPolicy, ReadOutcome, RegisterFactory, RegisterFactoryConfig, WriteOutcome,
};
use tbwf_sim::schedule::Scripted;
use tbwf_sim::{Env, Local, ProcId, RunConfig, SimBuilder};

fn factory(abort: AbortPolicy, effect: EffectPolicy) -> RegisterFactory {
    RegisterFactory::new(RegisterFactoryConfig {
        seed: 1,
        abort_policy: abort,
        effect_policy: effect,
    })
}

/// Schedule [p0, p1, p0, p1]: p0's write spans steps 0–2, p1's read spans
/// steps 1–3 ⇒ the intervals overlap ⇒ both abort under AlwaysOnOverlap.
#[test]
fn interleaved_ops_overlap_and_abort() {
    let f = factory(AbortPolicy::AlwaysOnOverlap, EffectPolicy::Never);
    let reg = f.abortable("R", 0i64);
    let w_out = Local::new(None::<WriteOutcome>);
    let r_out = Local::new(None::<ReadOutcome<i64>>);

    let mut b = SimBuilder::new();
    let p0 = b.add_process("p0");
    {
        let reg = Arc::clone(&reg);
        let w_out = w_out.clone();
        b.add_task(p0, "writer", move |env| {
            let res = reg.write(&env, 7)?;
            w_out.set(Some(res));
            Ok(())
        });
    }
    let p1 = b.add_process("p1");
    {
        let reg = Arc::clone(&reg);
        let r_out = r_out.clone();
        b.add_task(p1, "reader", move |env| {
            // With the [p0, p1] script the read's invocation (p1's first
            // step, t=1) falls inside the write's [t=0, t=2] interval.
            let res = reg.read(&env)?;
            r_out.set(Some(res));
            Ok(())
        });
    }
    let report = b.build().run(RunConfig::new(
        20,
        Scripted::new(vec![ProcId(0), ProcId(1)]),
    ));
    report.assert_no_panics();
    assert_eq!(w_out.get(), Some(WriteOutcome::Aborted), "write must abort");
    assert_eq!(r_out.get(), Some(ReadOutcome::Aborted), "read must abort");
    let (_, overlapped, aborted) = f.log().abort_stats();
    assert_eq!(overlapped, 2);
    assert_eq!(aborted, 2);
}

/// Same shape but the ops are strictly sequential (p0 finishes before p1
/// starts): nothing overlaps, nothing aborts, the read sees the write.
#[test]
fn sequential_ops_do_not_abort() {
    let f = factory(AbortPolicy::AlwaysOnOverlap, EffectPolicy::Never);
    let reg = f.abortable("R", 0i64);
    let r_out = Local::new(None::<ReadOutcome<i64>>);

    let mut b = SimBuilder::new();
    let p0 = b.add_process("p0");
    {
        let reg = Arc::clone(&reg);
        b.add_task(p0, "writer", move |env| {
            let res = reg.write(&env, 7)?;
            assert_eq!(res, WriteOutcome::Ok);
            Ok(())
        });
    }
    let p1 = b.add_process("p1");
    {
        let reg = Arc::clone(&reg);
        let r_out = r_out.clone();
        b.add_task(p1, "reader", move |env| {
            // Burn steps until the writer has definitely finished.
            for _ in 0..4 {
                env.tick()?;
            }
            let res = reg.read(&env)?;
            r_out.set(Some(res));
            Ok(())
        });
    }
    // p0 takes both its steps before p1's read begins.
    let report = b.build().run(RunConfig::new(
        30,
        Scripted::new(vec![ProcId(0), ProcId(0), ProcId(1)]),
    ));
    report.assert_no_panics();
    assert_eq!(r_out.get(), Some(ReadOutcome::Value(7)));
    let (_, overlapped, aborted) = f.log().abort_stats();
    assert_eq!(overlapped, 0);
    assert_eq!(aborted, 0);
}

/// EffectPolicy::Always: an aborted write *does* take effect — the writer
/// gets ⊥ but a later read sees the value (footnote 2 of the paper).
#[test]
fn aborted_write_may_take_effect() {
    let f = factory(AbortPolicy::AlwaysOnOverlap, EffectPolicy::Always);
    let reg = f.abortable("R", 0i64);
    let w_out = Local::new(None::<WriteOutcome>);
    let late_read = Local::new(None::<ReadOutcome<i64>>);

    let mut b = SimBuilder::new();
    let p0 = b.add_process("p0");
    {
        let reg = Arc::clone(&reg);
        let w_out = w_out.clone();
        b.add_task(p0, "writer", move |env| {
            let res = reg.write(&env, 42)?;
            w_out.set(Some(res));
            Ok(())
        });
    }
    let p1 = b.add_process("p1");
    {
        let reg = Arc::clone(&reg);
        let late_read = late_read.clone();
        b.add_task(p1, "reader", move |env| {
            let _overlapping = reg.read(&env)?; // races the write
            for _ in 0..4 {
                env.tick()?;
            }
            let res = reg.read(&env)?; // solo: must succeed
            late_read.set(Some(res));
            Ok(())
        });
    }
    let report = b.build().run(RunConfig::new(
        30,
        Scripted::new(vec![ProcId(0), ProcId(1)]),
    ));
    report.assert_no_panics();
    assert_eq!(
        w_out.get(),
        Some(WriteOutcome::Aborted),
        "writer must see ⊥"
    );
    assert_eq!(
        late_read.get(),
        Some(ReadOutcome::Value(42)),
        "the aborted write must have taken effect"
    );
}

/// EffectPolicy::Never: the aborted write leaves the register unchanged.
#[test]
fn aborted_write_may_not_take_effect() {
    let f = factory(AbortPolicy::AlwaysOnOverlap, EffectPolicy::Never);
    let reg = f.abortable("R", 0i64);
    let late_read = Local::new(None::<ReadOutcome<i64>>);

    let mut b = SimBuilder::new();
    let p0 = b.add_process("p0");
    {
        let reg = Arc::clone(&reg);
        b.add_task(p0, "writer", move |env| {
            let res = reg.write(&env, 42)?;
            assert_eq!(res, WriteOutcome::Aborted);
            Ok(())
        });
    }
    let p1 = b.add_process("p1");
    {
        let reg = Arc::clone(&reg);
        let late_read = late_read.clone();
        b.add_task(p1, "reader", move |env| {
            let _ = reg.read(&env)?; // races the write
            for _ in 0..4 {
                env.tick()?;
            }
            late_read.set(Some(reg.read(&env)?));
            Ok(())
        });
    }
    let report = b.build().run(RunConfig::new(
        30,
        Scripted::new(vec![ProcId(0), ProcId(1)]),
    ));
    report.assert_no_panics();
    assert_eq!(
        late_read.get(),
        Some(ReadOutcome::Value(0)),
        "no effect expected"
    );
}

/// Safe register: a read overlapping a write returns garbage, but
/// reads overlapping only reads stay exact.
#[test]
fn safe_register_overlap_semantics() {
    let f = factory(AbortPolicy::AlwaysOnOverlap, EffectPolicy::Never);
    let reg = f.safe("S", 5);
    let overlapping = Local::new(None::<u64>);
    let quiet = Local::new(None::<u64>);

    let mut b = SimBuilder::new();
    let p0 = b.add_process("p0");
    {
        let reg = Arc::clone(&reg);
        b.add_task(p0, "writer", move |env| {
            reg.write(&env, 9)?;
            Ok(())
        });
    }
    let p1 = b.add_process("p1");
    {
        let reg = Arc::clone(&reg);
        let overlapping = overlapping.clone();
        let quiet = quiet.clone();
        b.add_task(p1, "reader", move |env| {
            overlapping.set(Some(reg.read(&env)?)); // races the write
            for _ in 0..4 {
                env.tick()?;
            }
            quiet.set(Some(reg.read(&env)?)); // solo
            Ok(())
        });
    }
    let report = b.build().run(RunConfig::new(
        30,
        Scripted::new(vec![ProcId(0), ProcId(1)]),
    ));
    report.assert_no_panics();
    assert!(overlapping.get().is_some());
    // The solo read must be exact (the write completed with value 9).
    assert_eq!(quiet.get(), Some(9));
}
