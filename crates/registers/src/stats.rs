//! The shared operation log: every register operation of a run, with
//! timestamps, for the write-efficiency (E6) and abort-rate (E8) analyses.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use tbwf_sim::ProcId;

/// Kind of a register operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// A read operation.
    Read,
    /// A write operation.
    Write,
}

/// One completed register operation.
#[derive(Clone, Debug)]
pub struct OpEvent {
    /// Global time of the invocation step.
    pub invoked: u64,
    /// Global time of the response step.
    pub responded: u64,
    /// The process that performed the operation.
    pub proc: ProcId,
    /// Name the register was created with (e.g. `"CounterRegister[3]"`).
    ///
    /// An `Arc<str>` shared with the register itself: recording an event
    /// must not allocate on the hot path.
    pub reg: Arc<str>,
    /// Read or write.
    pub kind: OpKind,
    /// Whether the operation overlapped another operation on the register.
    pub overlapped: bool,
    /// Whether the operation aborted (always false on atomic registers).
    pub aborted: bool,
    /// For aborted writes: whether the write took effect anyway.
    pub effect: bool,
}

/// Append-only log of register operations shared by all registers of one
/// [`RegisterFactory`](crate::RegisterFactory).
pub struct OpLog {
    events: Mutex<Vec<OpEvent>>,
    enabled: bool,
}

impl Default for OpLog {
    fn default() -> Self {
        OpLog {
            events: Mutex::new(Vec::new()),
            enabled: true,
        }
    }
}

impl OpLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a log that silently drops every event. Used by the native
    /// harness, where full-speed threads would otherwise accumulate
    /// millions of events.
    pub fn disabled() -> Self {
        OpLog {
            events: Mutex::new(Vec::new()),
            enabled: false,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn push(&self, e: OpEvent) {
        if self.enabled {
            self.events.lock().push(e);
        }
    }

    /// Snapshot of all events so far.
    pub fn events(&self) -> Vec<OpEvent> {
        self.events.lock().clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Processes that performed at least one *write* invoked at or after
    /// time `t0`, with their write counts.
    ///
    /// This is the measurement behind the paper's closing remark of
    /// Section 5.2: after stabilization "the only processes that write to
    /// shared registers are the leader and processes in Rcandidates".
    pub fn writers_since(&self, t0: u64) -> BTreeMap<ProcId, u64> {
        let mut map = BTreeMap::new();
        for e in self.events.lock().iter() {
            if e.kind == OpKind::Write && e.invoked >= t0 {
                *map.entry(e.proc).or_insert(0) += 1;
            }
        }
        map
    }

    /// `(total, overlapped, aborted)` counts over all operations.
    pub fn abort_stats(&self) -> (u64, u64, u64) {
        let evs = self.events.lock();
        let total = evs.len() as u64;
        let overlapped = evs.iter().filter(|e| e.overlapped).count() as u64;
        let aborted = evs.iter().filter(|e| e.aborted).count() as u64;
        (total, overlapped, aborted)
    }

    /// Abort fraction among operations invoked in `[t0, t1)`.
    pub fn abort_rate_in(&self, t0: u64, t1: u64) -> f64 {
        let evs = self.events.lock();
        let in_window: Vec<_> = evs
            .iter()
            .filter(|e| e.invoked >= t0 && e.invoked < t1)
            .collect();
        if in_window.is_empty() {
            return 0.0;
        }
        in_window.iter().filter(|e| e.aborted).count() as f64 / in_window.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(invoked: u64, proc: usize, kind: OpKind, aborted: bool) -> OpEvent {
        OpEvent {
            invoked,
            responded: invoked + 1,
            proc: ProcId(proc),
            reg: "R".into(),
            kind,
            overlapped: aborted,
            aborted,
            effect: false,
        }
    }

    #[test]
    fn writers_since_filters_by_time_and_kind() {
        let log = OpLog::new();
        log.push(ev(5, 0, OpKind::Write, false));
        log.push(ev(15, 1, OpKind::Write, false));
        log.push(ev(20, 1, OpKind::Read, false));
        log.push(ev(25, 1, OpKind::Write, false));
        let w = log.writers_since(10);
        assert_eq!(w.get(&ProcId(0)), None);
        assert_eq!(w.get(&ProcId(1)), Some(&2));
    }

    #[test]
    fn abort_stats_counts() {
        let log = OpLog::new();
        log.push(ev(0, 0, OpKind::Read, true));
        log.push(ev(1, 0, OpKind::Read, false));
        assert_eq!(log.abort_stats(), (2, 1, 1));
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn abort_rate_windows() {
        let log = OpLog::new();
        for t in 0..10 {
            log.push(ev(t, 0, OpKind::Read, t < 5));
        }
        assert!((log.abort_rate_in(0, 5) - 1.0).abs() < 1e-9);
        assert!((log.abort_rate_in(5, 10) - 0.0).abs() < 1e-9);
        assert_eq!(log.abort_rate_in(100, 200), 0.0);
    }
}
