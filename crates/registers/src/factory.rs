//! The register factory: creates named, logged, seeded registers for one
//! run.

use crate::core_reg::{InflightGauges, SimAbortableReg, SimAtomicReg, SimSafeReg};
use crate::policy::{AbortPolicy, EffectPolicy, PolicyDial};
use crate::stats::OpLog;
use crate::{SafeRegister, SharedAbortable, SharedAtomic};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use tbwf_sim::ProcId;

/// Configuration for all registers created by one factory.
#[derive(Clone, Copy, Debug)]
pub struct RegisterFactoryConfig {
    /// Master seed; each register derives its own RNG from it.
    pub seed: u64,
    /// Abort policy for abortable registers.
    pub abort_policy: AbortPolicy,
    /// Effect policy for aborted writes.
    pub effect_policy: EffectPolicy,
}

impl Default for RegisterFactoryConfig {
    fn default() -> Self {
        RegisterFactoryConfig {
            seed: 0xB0A7,
            abort_policy: AbortPolicy::default(),
            effect_policy: EffectPolicy::default(),
        }
    }
}

/// Creates the shared registers of one run, all feeding a common
/// [`OpLog`].
///
/// ```
/// use tbwf_registers::{ReadOutcome, RegisterFactory, WriteOutcome};
/// use tbwf_sim::{FreeRunEnv, ProcId};
///
/// let factory = RegisterFactory::default();
/// let reg = factory.abortable("R", 0i64);
/// let env = FreeRunEnv::new(ProcId(0));
/// // Solo operations on an abortable register never abort.
/// assert_eq!(reg.write(&env, 7)?, WriteOutcome::Ok);
/// assert_eq!(reg.read(&env)?, ReadOutcome::Value(7));
/// # Ok::<(), tbwf_sim::Halted>(())
/// ```
pub struct RegisterFactory {
    config: RegisterFactoryConfig,
    log: Arc<OpLog>,
    counter: AtomicU64,
    dial: PolicyDial,
    gauges: Arc<InflightGauges>,
}

impl RegisterFactory {
    /// Creates a factory with the given configuration.
    pub fn new(config: RegisterFactoryConfig) -> Self {
        RegisterFactory {
            config,
            log: Arc::new(OpLog::new()),
            counter: AtomicU64::new(0),
            dial: PolicyDial::new(),
            gauges: Arc::new(InflightGauges::new()),
        }
    }

    /// Creates a factory whose operation log is disabled (for the native
    /// harness: full-speed threads would otherwise record millions of
    /// events).
    pub fn new_unlogged(config: RegisterFactoryConfig) -> Self {
        RegisterFactory {
            config,
            log: Arc::new(OpLog::disabled()),
            counter: AtomicU64::new(0),
            dial: PolicyDial::new(),
            gauges: Arc::new(InflightGauges::new()),
        }
    }

    /// The shared operation log.
    pub fn log(&self) -> Arc<OpLog> {
        Arc::clone(&self.log)
    }

    /// The factory configuration.
    pub fn config(&self) -> RegisterFactoryConfig {
        self.config
    }

    /// The run-wide policy-override dial shared by every abortable
    /// register of this factory (register its [`PolicyDial::handle`]
    /// with a nemesis to inject register fault bursts).
    pub fn policy_dial(&self) -> PolicyDial {
        self.dial.clone()
    }

    /// The in-flight-operation gauge of process `p` across all registers
    /// of this factory (register it with a nemesis to crash `p` between
    /// `invoke_` and `complete_` of an operation).
    pub fn inflight_gauge(&self, p: ProcId) -> Arc<AtomicI64> {
        self.gauges.cell(p)
    }

    fn next_seed(&self) -> u64 {
        // SplitMix-style derivation keeps per-register streams independent.
        let i = self.counter.fetch_add(1, Ordering::Relaxed);
        self.config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i)
    }

    /// Creates a multi-writer multi-reader atomic register.
    pub fn atomic<T: Clone + Send + Sync + 'static>(&self, name: &str, init: T) -> SharedAtomic<T> {
        Arc::new(SimAtomicReg::new(
            name.to_string(),
            init,
            self.next_seed(),
            self.log(),
            Arc::clone(&self.gauges),
        ))
    }

    /// Creates a multi-writer multi-reader abortable register.
    pub fn abortable<T: Clone + Send + Sync + 'static>(
        &self,
        name: &str,
        init: T,
    ) -> SharedAbortable<T> {
        Arc::new(SimAbortableReg::new(
            name.to_string(),
            init,
            self.next_seed(),
            self.log(),
            Arc::clone(&self.gauges),
            self.config.abort_policy,
            self.config.effect_policy,
            self.dial.clone(),
            None,
            None,
        ))
    }

    /// Creates a single-writer single-reader abortable register owned by
    /// `writer`/`reader` (ownership is asserted at every operation), as
    /// used throughout Section 6.
    pub fn abortable_swsr<T: Clone + Send + Sync + 'static>(
        &self,
        name: &str,
        init: T,
        writer: ProcId,
        reader: ProcId,
    ) -> SharedAbortable<T> {
        Arc::new(SimAbortableReg::new(
            name.to_string(),
            init,
            self.next_seed(),
            self.log(),
            Arc::clone(&self.gauges),
            self.config.abort_policy,
            self.config.effect_policy,
            self.dial.clone(),
            Some(writer),
            Some(reader),
        ))
    }

    /// Creates a single-writer multi-reader abortable register owned by
    /// `writer` (write ownership is asserted at every operation).
    pub fn abortable_swmr<T: Clone + Send + Sync + 'static>(
        &self,
        name: &str,
        init: T,
        writer: ProcId,
    ) -> SharedAbortable<T> {
        Arc::new(SimAbortableReg::new(
            name.to_string(),
            init,
            self.next_seed(),
            self.log(),
            Arc::clone(&self.gauges),
            self.config.abort_policy,
            self.config.effect_policy,
            self.dial.clone(),
            Some(writer),
            None,
        ))
    }

    /// Creates a safe register over `u64`.
    pub fn safe(&self, name: &str, init: u64) -> Arc<dyn SafeRegister> {
        Arc::new(SimSafeReg::new(
            name.to_string(),
            init,
            self.next_seed(),
            self.log(),
            Arc::clone(&self.gauges),
        ))
    }

    /// Creates a compare-and-swap register (used only by the strong-
    /// primitive baseline, never by the paper's constructions).
    pub fn cas<T: Clone + PartialEq + Send + Sync + 'static>(
        &self,
        name: &str,
        init: T,
    ) -> crate::SharedCas<T> {
        Arc::new(crate::cas::SimCasReg::new(
            name.to_string(),
            init,
            self.log(),
        ))
    }
}

impl Default for RegisterFactory {
    fn default() -> Self {
        RegisterFactory::new(RegisterFactoryConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReadOutcome, WriteOutcome};
    use tbwf_sim::{Env, FreeRunEnv};

    #[test]
    fn factory_creates_working_registers() {
        let f = RegisterFactory::default();
        let env = FreeRunEnv::new(ProcId(0));
        let a = f.atomic("A", 1i64);
        let b = f.abortable("B", 2i64);
        let s = f.safe("S", 3);
        assert_eq!(a.read(&env).unwrap(), 1);
        assert_eq!(b.read(&env).unwrap(), ReadOutcome::Value(2));
        assert_eq!(s.read(&env).unwrap(), 3);
        assert_eq!(b.write(&env, 9).unwrap(), WriteOutcome::Ok);
        assert_eq!(b.read(&env).unwrap(), ReadOutcome::Value(9));
        assert_eq!(f.log().len(), 5);
    }

    #[test]
    fn swsr_allows_owner() {
        let f = RegisterFactory::default();
        let env = FreeRunEnv::new(ProcId(1));
        let r = f.abortable_swsr("R", 0i64, ProcId(1), ProcId(1));
        assert_eq!(r.write(&env, 5).unwrap(), WriteOutcome::Ok);
        assert_eq!(r.read(&env).unwrap(), ReadOutcome::Value(5));
    }

    #[test]
    fn seeds_differ_per_register() {
        let f = RegisterFactory::new(RegisterFactoryConfig {
            seed: 42,
            ..Default::default()
        });
        // Two registers created by the same factory must not share RNG
        // streams; we can only check the derivation differs.
        let s1 = f.next_seed();
        let s2 = f.next_seed();
        assert_ne!(s1, s2);
    }

    #[test]
    fn env_tick_advances_between_invoke_and_response() {
        let f = RegisterFactory::default();
        let env = FreeRunEnv::new(ProcId(0));
        let a = f.atomic("A", 0i64);
        let before = env.now();
        a.write(&env, 1).unwrap();
        assert_eq!(env.now(), before + 1, "one tick per operation");
    }
}
