//! Compare-and-swap registers — the *strong* primitive used only by the
//! Herlihy-style baseline (Section 1.2 of the paper: "any object has a
//! wait-free implementation, provided one is allowed to use some strong
//! synchronization primitives like compare-and-swap"). The paper's own
//! constructions never use this.

use crate::stats::{OpEvent, OpKind, OpLog};
use parking_lot::Mutex;
use std::sync::Arc;
use tbwf_sim::{Env, SimResult};

/// A linearizable compare-and-swap register. Never aborts.
pub trait CasRegister<T: Clone + PartialEq>: Send + Sync {
    /// Atomically: if the value equals `expected`, replace it with `new`
    /// and return `true`; otherwise return `false`.
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn compare_and_swap(&self, env: &dyn Env, expected: &T, new: T) -> SimResult<bool>;

    /// Reads the current value.
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn read(&self, env: &dyn Env) -> SimResult<T>;
}

/// Simulated CAS register: two-step operation, linearizes at the response.
pub struct SimCasReg<T> {
    name: Arc<str>,
    value: Mutex<T>,
    log: Arc<OpLog>,
}

impl<T: Clone + PartialEq + Send> SimCasReg<T> {
    pub(crate) fn new(name: String, init: T, log: Arc<OpLog>) -> Self {
        SimCasReg {
            name: name.into(),
            value: Mutex::new(init),
            log,
        }
    }

    fn record(&self, env: &dyn Env, invoked: u64, kind: OpKind) {
        self.log.push(OpEvent {
            invoked,
            responded: env.now(),
            proc: env.pid(),
            reg: self.name.clone(),
            kind,
            overlapped: false,
            aborted: false,
            effect: true,
        });
    }
}

impl<T: Clone + PartialEq + Send + Sync> CasRegister<T> for SimCasReg<T> {
    fn compare_and_swap(&self, env: &dyn Env, expected: &T, new: T) -> SimResult<bool> {
        let invoked = env.now();
        env.tick()?;
        let mut v = self.value.lock();
        let ok = *v == *expected;
        if ok {
            *v = new;
        }
        drop(v);
        self.record(env, invoked, OpKind::Write);
        Ok(ok)
    }

    fn read(&self, env: &dyn Env) -> SimResult<T> {
        let invoked = env.now();
        env.tick()?;
        let v = self.value.lock().clone();
        self.record(env, invoked, OpKind::Read);
        Ok(v)
    }
}

/// Shorthand for a shared CAS register handle.
pub type SharedCas<T> = Arc<dyn CasRegister<T>>;

#[cfg(test)]
mod tests {
    use super::*;
    use tbwf_sim::{FreeRunEnv, ProcId};

    #[test]
    fn cas_succeeds_on_match() {
        let log = Arc::new(OpLog::new());
        let r = SimCasReg::new("C".into(), 0i64, log);
        let env = FreeRunEnv::new(ProcId(0));
        assert!(r.compare_and_swap(&env, &0, 5).unwrap());
        assert_eq!(r.read(&env).unwrap(), 5);
    }

    #[test]
    fn cas_fails_on_mismatch() {
        let log = Arc::new(OpLog::new());
        let r = SimCasReg::new("C".into(), 0i64, log);
        let env = FreeRunEnv::new(ProcId(0));
        assert!(!r.compare_and_swap(&env, &3, 5).unwrap());
        assert_eq!(r.read(&env).unwrap(), 0);
    }

    #[test]
    fn cas_on_option_values() {
        let log = Arc::new(OpLog::new());
        let r: SimCasReg<Option<u32>> = SimCasReg::new("C".into(), None, log);
        let env = FreeRunEnv::new(ProcId(0));
        assert!(r.compare_and_swap(&env, &None, Some(7)).unwrap());
        assert!(!r.compare_and_swap(&env, &None, Some(9)).unwrap());
        assert_eq!(r.read(&env).unwrap(), Some(7));
    }
}
