//! Abort and effect policies: the register-level adversary.
//!
//! The specification of an abortable register says that operations that
//! are concurrent with other operations **may** abort; it does not say
//! when. The choice is therefore adversarial, and these policies let a run
//! pick its adversary. All randomness is seeded per register, so runs are
//! reproducible.

/// When does an operation that overlapped another operation abort?
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum AbortPolicy {
    /// Every overlapping operation aborts: the strongest admissible
    /// adversary, and the default everywhere.
    #[default]
    AlwaysOnOverlap,
    /// An overlapping operation aborts with probability `p_abort`.
    Seeded {
        /// Probability that an overlapping operation aborts.
        p_abort: f64,
    },
    /// Overlapping operations never abort — the register behaves
    /// atomically. Useful as a control in ablations.
    Never,
}

impl AbortPolicy {
    /// Decides whether an overlapped operation aborts, given a uniform
    /// sample `u ∈ [0, 1)`.
    pub fn aborts(self, u: f64) -> bool {
        match self {
            AbortPolicy::AlwaysOnOverlap => true,
            AbortPolicy::Seeded { p_abort } => u < p_abort,
            AbortPolicy::Never => false,
        }
    }
}

/// Does an *aborted write* take effect anyway?
///
/// The writer gets `⊥` either way and cannot tell (Section 1.2 of the
/// paper, footnote 2).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum EffectPolicy {
    /// Aborted writes never take effect.
    Never,
    /// Aborted writes always take effect.
    Always,
    /// An aborted write takes effect with probability `p_effect`.
    Seeded {
        /// Probability that an aborted write takes effect.
        p_effect: f64,
    },
}

impl Default for EffectPolicy {
    fn default() -> Self {
        EffectPolicy::Seeded { p_effect: 0.5 }
    }
}

impl EffectPolicy {
    /// Decides whether an aborted write takes effect, given a uniform
    /// sample `u ∈ [0, 1)`.
    pub fn takes_effect(self, u: f64) -> bool {
        match self {
            EffectPolicy::Never => false,
            EffectPolicy::Always => true,
            EffectPolicy::Seeded { p_effect } => u < p_effect,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_policy_always_aborts() {
        assert!(AbortPolicy::AlwaysOnOverlap.aborts(0.0));
        assert!(AbortPolicy::AlwaysOnOverlap.aborts(0.999));
    }

    #[test]
    fn never_policy_never_aborts() {
        assert!(!AbortPolicy::Never.aborts(0.0));
    }

    #[test]
    fn seeded_policy_thresholds() {
        let p = AbortPolicy::Seeded { p_abort: 0.3 };
        assert!(p.aborts(0.1));
        assert!(!p.aborts(0.5));
    }

    #[test]
    fn effect_policies() {
        assert!(!EffectPolicy::Never.takes_effect(0.0));
        assert!(EffectPolicy::Always.takes_effect(0.99));
        let s = EffectPolicy::Seeded { p_effect: 0.5 };
        assert!(s.takes_effect(0.2));
        assert!(!s.takes_effect(0.8));
    }

    #[test]
    fn defaults() {
        assert_eq!(AbortPolicy::default(), AbortPolicy::AlwaysOnOverlap);
        assert_eq!(
            EffectPolicy::default(),
            EffectPolicy::Seeded { p_effect: 0.5 }
        );
    }
}
