//! Abort and effect policies: the register-level adversary.
//!
//! The specification of an abortable register says that operations that
//! are concurrent with other operations **may** abort; it does not say
//! when. The choice is therefore adversarial, and these policies let a run
//! pick its adversary. All randomness is seeded per register, so runs are
//! reproducible.
//!
//! A [`PolicyDial`] lets the adversary *change mid-run*: the nemesis
//! turns the dial to one of the [`DIAL_BASE`]/[`DIAL_ABORT_STORM`]/
//! [`DIAL_CALM`]/[`DIAL_ABORT_NO_EFFECT`] modes and every abortable
//! register of the factory immediately follows. All modes stay within
//! the abortable specification — only *overlapped* operations ever
//! abort, so a fault burst can never violate the register's contract,
//! it can only exercise the admissible adversary harder.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// When does an operation that overlapped another operation abort?
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum AbortPolicy {
    /// Every overlapping operation aborts: the strongest admissible
    /// adversary, and the default everywhere.
    #[default]
    AlwaysOnOverlap,
    /// An overlapping operation aborts with probability `p_abort`.
    Seeded {
        /// Probability that an overlapping operation aborts.
        p_abort: f64,
    },
    /// Overlapping operations never abort — the register behaves
    /// atomically. Useful as a control in ablations.
    Never,
}

impl AbortPolicy {
    /// Decides whether an overlapped operation aborts, given a uniform
    /// sample `u ∈ [0, 1)`.
    pub fn aborts(self, u: f64) -> bool {
        match self {
            AbortPolicy::AlwaysOnOverlap => true,
            AbortPolicy::Seeded { p_abort } => u < p_abort,
            AbortPolicy::Never => false,
        }
    }
}

/// Does an *aborted write* take effect anyway?
///
/// The writer gets `⊥` either way and cannot tell (Section 1.2 of the
/// paper, footnote 2).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum EffectPolicy {
    /// Aborted writes never take effect.
    Never,
    /// Aborted writes always take effect.
    Always,
    /// An aborted write takes effect with probability `p_effect`.
    Seeded {
        /// Probability that an aborted write takes effect.
        p_effect: f64,
    },
}

impl Default for EffectPolicy {
    fn default() -> Self {
        EffectPolicy::Seeded { p_effect: 0.5 }
    }
}

impl EffectPolicy {
    /// Decides whether an aborted write takes effect, given a uniform
    /// sample `u ∈ [0, 1)`.
    pub fn takes_effect(self, u: f64) -> bool {
        match self {
            EffectPolicy::Never => false,
            EffectPolicy::Always => true,
            EffectPolicy::Seeded { p_effect } => u < p_effect,
        }
    }
}

/// Dial mode: use the policies the factory was configured with.
pub const DIAL_BASE: i64 = 0;
/// Dial mode: every overlapped operation aborts and every aborted write
/// takes effect — the strongest admissible adversary.
pub const DIAL_ABORT_STORM: i64 = 1;
/// Dial mode: nothing aborts — the registers behave atomically.
pub const DIAL_CALM: i64 = 2;
/// Dial mode: every overlapped operation aborts and no aborted write
/// takes effect.
pub const DIAL_ABORT_NO_EFFECT: i64 = 3;

/// A run-wide override knob for the abort/effect policies of every
/// abortable register created by one factory.
///
/// Cloning yields another handle to the same dial. The raw handle
/// ([`PolicyDial::handle`]) can be registered with a nemesis as a dial
/// named in `SetDial` fault actions; unknown values behave like
/// [`DIAL_BASE`].
#[derive(Clone, Default)]
pub struct PolicyDial {
    mode: Arc<AtomicI64>,
}

impl PolicyDial {
    /// Creates a dial in [`DIAL_BASE`] mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current mode.
    pub fn mode(&self) -> i64 {
        self.mode.load(Ordering::SeqCst)
    }

    /// Sets the mode.
    pub fn set(&self, mode: i64) {
        self.mode.store(mode, Ordering::SeqCst);
    }

    /// The shared cell behind the dial (for nemesis registration).
    pub fn handle(&self) -> Arc<AtomicI64> {
        Arc::clone(&self.mode)
    }

    /// The effective policies under the current mode, given the
    /// factory-configured base policies.
    pub fn resolve(&self, base: (AbortPolicy, EffectPolicy)) -> (AbortPolicy, EffectPolicy) {
        match self.mode() {
            DIAL_ABORT_STORM => (AbortPolicy::AlwaysOnOverlap, EffectPolicy::Always),
            DIAL_CALM => (AbortPolicy::Never, EffectPolicy::Never),
            DIAL_ABORT_NO_EFFECT => (AbortPolicy::AlwaysOnOverlap, EffectPolicy::Never),
            _ => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dial_modes_resolve() {
        let dial = PolicyDial::new();
        let base = (AbortPolicy::Never, EffectPolicy::Never);
        assert_eq!(dial.resolve(base), base);
        dial.set(DIAL_ABORT_STORM);
        assert_eq!(
            dial.resolve(base),
            (AbortPolicy::AlwaysOnOverlap, EffectPolicy::Always)
        );
        dial.set(DIAL_CALM);
        assert_eq!(
            dial.resolve(base),
            (AbortPolicy::Never, EffectPolicy::Never)
        );
        dial.set(DIAL_ABORT_NO_EFFECT);
        assert_eq!(
            dial.resolve(base),
            (AbortPolicy::AlwaysOnOverlap, EffectPolicy::Never)
        );
        dial.set(99);
        assert_eq!(dial.resolve(base), base, "unknown modes fall back to base");
    }

    #[test]
    fn dial_clones_share_state() {
        let dial = PolicyDial::new();
        let other = dial.clone();
        other.handle().store(DIAL_CALM, Ordering::SeqCst);
        assert_eq!(dial.mode(), DIAL_CALM);
    }

    #[test]
    fn always_policy_always_aborts() {
        assert!(AbortPolicy::AlwaysOnOverlap.aborts(0.0));
        assert!(AbortPolicy::AlwaysOnOverlap.aborts(0.999));
    }

    #[test]
    fn never_policy_never_aborts() {
        assert!(!AbortPolicy::Never.aborts(0.0));
    }

    #[test]
    fn seeded_policy_thresholds() {
        let p = AbortPolicy::Seeded { p_abort: 0.3 };
        assert!(p.aborts(0.1));
        assert!(!p.aborts(0.5));
    }

    #[test]
    fn effect_policies() {
        assert!(!EffectPolicy::Never.takes_effect(0.0));
        assert!(EffectPolicy::Always.takes_effect(0.99));
        let s = EffectPolicy::Seeded { p_effect: 0.5 };
        assert!(s.takes_effect(0.2));
        assert!(!s.takes_effect(0.8));
    }

    #[test]
    fn defaults() {
        assert_eq!(AbortPolicy::default(), AbortPolicy::AlwaysOnOverlap);
        assert_eq!(
            EffectPolicy::default(),
            EffectPolicy::Seeded { p_effect: 0.5 }
        );
    }
}
