//! The simulated register core: two-phase operations with overlap
//! detection, and the three register kinds built on it.

use crate::outcome::{ReadOutcome, WriteOutcome};
use crate::policy::{AbortPolicy, EffectPolicy, PolicyDial};
use crate::stats::{OpEvent, OpKind, OpLog};
use crate::{AbortableRegister, AtomicRegister, OpToken, SafeRegister};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use tbwf_sim::{Env, ProcId, SimResult};

/// Per-process counters of operations currently in flight (invoked but
/// not yet completed) across all registers of one factory.
///
/// The cells are plain shared integers so a nemesis can watch one as a
/// gauge: `inflight[p] ≥ 1` holds exactly between `invoke_` and
/// `complete_` of an operation by `p`, which is the window a
/// crash-mid-operation injection targets.
#[derive(Default)]
pub struct InflightGauges {
    cells: Mutex<Vec<Arc<AtomicI64>>>,
}

impl InflightGauges {
    /// Creates gauges with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared counter of process `p` (created on first use).
    pub fn cell(&self, p: ProcId) -> Arc<AtomicI64> {
        let mut cells = self.cells.lock();
        while cells.len() <= p.0 {
            cells.push(Arc::new(AtomicI64::new(0)));
        }
        Arc::clone(&cells[p.0])
    }
}

/// An operation in flight between its invocation and response steps.
struct Inflight<T> {
    id: u64,
    kind: OpKind,
    /// The invoking process (its in-flight gauge is held until the
    /// response step).
    proc: ProcId,
    /// Set as soon as any other operation's interval overlaps this one.
    overlapped: bool,
    /// Whether the overlap involved a write (needed by safe registers).
    overlapped_write: bool,
    /// Time of the invocation step (for the operation log).
    invoked: u64,
    /// A write's value, captured at invocation.
    payload: Option<T>,
}

struct CoreState<T> {
    value: T,
    inflight: Vec<Inflight<T>>,
    next_id: u64,
    rng: StdRng,
    /// Per-process gauge cells, cached on first use so the per-operation
    /// gauge updates are a single `fetch_add` instead of a lock + `Arc`
    /// clone through [`InflightGauges::cell`] (the hot path runs twice
    /// per operation).
    gauge_cache: Vec<Option<Arc<AtomicI64>>>,
}

/// Shared core of one simulated register.
pub(crate) struct RegCore<T> {
    name: Arc<str>,
    state: Mutex<CoreState<T>>,
    log: Arc<OpLog>,
    gauges: Arc<InflightGauges>,
}

/// What the core reports when an operation resolves.
struct Resolution<T> {
    overlapped: bool,
    overlapped_write: bool,
    /// Uniform samples for the abort and effect decisions.
    u_abort: f64,
    u_effect: f64,
    /// Invocation time, echoed back from `begin`.
    invoked: u64,
    /// The invoking process, echoed back from `begin` (the completer is
    /// always the invoker, so `record` needs no `env.pid()` call).
    proc: ProcId,
    /// The write payload captured at invocation, if any.
    payload: Option<T>,
}

impl<T: Clone + Send> RegCore<T> {
    fn new(name: String, init: T, seed: u64, log: Arc<OpLog>, gauges: Arc<InflightGauges>) -> Self {
        RegCore {
            name: name.into(),
            state: Mutex::new(CoreState {
                value: init,
                inflight: Vec::new(),
                next_id: 0,
                rng: StdRng::seed_from_u64(seed),
                gauge_cache: Vec::new(),
            }),
            log,
            gauges,
        }
    }

    /// Updates process `p`'s in-flight gauge through the per-register
    /// cache (the caller already holds the state lock, so the cache needs
    /// no synchronization of its own).
    fn gauge_add(&self, st: &mut CoreState<T>, p: ProcId, delta: i64) {
        if st.gauge_cache.len() <= p.0 {
            st.gauge_cache.resize(p.0 + 1, None);
        }
        st.gauge_cache[p.0]
            .get_or_insert_with(|| self.gauges.cell(p))
            .fetch_add(delta, Ordering::SeqCst);
    }

    /// Invocation step: register the in-flight op and mark overlaps.
    ///
    /// Operations left pending by a crashed process are dropped first: a
    /// crashed process takes no further steps, so its unfinished
    /// operation cannot interfere with operations invoked after the
    /// crash (its write never takes effect — the crash landed before the
    /// linearization point). Without this, one crash mid-operation would
    /// mark every later operation on the register as overlapped forever,
    /// and an `AlwaysOnOverlap` abortable register would wedge all
    /// survivors. Overlap marks already made by the dead operation stand:
    /// operations genuinely concurrent with it before the crash may still
    /// abort.
    fn begin(
        &self,
        env: &dyn Env,
        kind: OpKind,
        proc: ProcId,
        invoked: u64,
        payload: Option<T>,
    ) -> u64 {
        let mut st = self.state.lock();
        let mut i = 0;
        while i < st.inflight.len() {
            if env.is_crashed(st.inflight[i].proc) {
                let dead = st.inflight.remove(i);
                self.gauge_add(&mut st, dead.proc, -1);
            } else {
                i += 1;
            }
        }
        let id = st.next_id;
        st.next_id += 1;
        let any = !st.inflight.is_empty();
        let any_write = st.inflight.iter().any(|o| o.kind == OpKind::Write);
        for o in &mut st.inflight {
            o.overlapped = true;
            o.overlapped_write |= kind == OpKind::Write;
        }
        st.inflight.push(Inflight {
            id,
            kind,
            proc,
            overlapped: any,
            overlapped_write: any_write,
            invoked,
            payload,
        });
        self.gauge_add(&mut st, proc, 1);
        id
    }

    /// Response step: remove the in-flight op, sample the adversary, and
    /// run `apply` on the resolution and the register value — all under
    /// one state lock, so completing an operation locks exactly once.
    fn resolve_apply<R>(
        &self,
        id: u64,
        apply: impl FnOnce(&mut Resolution<T>, &mut T) -> R,
    ) -> (Resolution<T>, R) {
        let mut st = self.state.lock();
        let pos = st
            .inflight
            .iter()
            .position(|o| o.id == id)
            .expect("resolving unknown operation");
        let op = st.inflight.remove(pos);
        // The adversary samples are always drawn, even when the current
        // policy ignores them: policy-dial changes must not shift the
        // per-register RNG stream, or shrinking a fault plan would
        // perturb the rest of the run.
        let u_abort = st.rng.random::<f64>();
        let u_effect = st.rng.random::<f64>();
        self.gauge_add(&mut st, op.proc, -1);
        let mut res = Resolution {
            overlapped: op.overlapped,
            overlapped_write: op.overlapped_write,
            u_abort,
            u_effect,
            invoked: op.invoked,
            proc: op.proc,
            payload: op.payload,
        };
        let out = apply(&mut res, &mut st.value);
        (res, out)
    }

    /// Response step without a value effect (tests only; the register
    /// implementations fold their effect into [`Self::resolve_apply`]).
    #[cfg(test)]
    fn resolve(&self, id: u64) -> Resolution<T> {
        self.resolve_apply(id, |_, _| ()).0
    }

    fn record(
        &self,
        env: &dyn Env,
        invoked: u64,
        kind: OpKind,
        res: &Resolution<T>,
        aborted: bool,
        effect: bool,
    ) {
        self.log.push(OpEvent {
            invoked,
            responded: env.now(),
            proc: res.proc,
            reg: self.name.clone(),
            kind,
            overlapped: res.overlapped,
            aborted,
            effect,
        });
    }
}

/// Simulated atomic register (linearizes at the response step).
pub(crate) struct SimAtomicReg<T> {
    core: RegCore<T>,
}

impl<T: Clone + Send> SimAtomicReg<T> {
    pub(crate) fn new(
        name: String,
        init: T,
        seed: u64,
        log: Arc<OpLog>,
        gauges: Arc<InflightGauges>,
    ) -> Self {
        SimAtomicReg {
            core: RegCore::new(name, init, seed, log, gauges),
        }
    }
}

impl<T: Clone + Send + Sync> AtomicRegister<T> for SimAtomicReg<T> {
    fn invoke_write(&self, env: &dyn Env, v: T) -> OpToken {
        OpToken::new(
            self.core
                .begin(env, OpKind::Write, env.pid(), env.now(), Some(v)),
        )
    }

    fn complete_write(&self, env: &dyn Env, tok: OpToken) {
        let (res, ()) = self.core.resolve_apply(tok.raw(), |res, value| {
            *value = res.payload.take().expect("write resolved without payload");
        });
        self.core
            .record(env, res.invoked, OpKind::Write, &res, false, true);
    }

    fn invoke_read(&self, env: &dyn Env) -> OpToken {
        OpToken::new(
            self.core
                .begin(env, OpKind::Read, env.pid(), env.now(), None),
        )
    }

    fn complete_read(&self, env: &dyn Env, tok: OpToken) -> T {
        let (res, v) = self.core.resolve_apply(tok.raw(), |_, value| value.clone());
        self.core
            .record(env, res.invoked, OpKind::Read, &res, false, false);
        v
    }
}

/// Simulated abortable register.
pub(crate) struct SimAbortableReg<T> {
    core: RegCore<T>,
    abort_policy: AbortPolicy,
    effect_policy: EffectPolicy,
    /// Run-wide override dial shared with the factory (and the nemesis).
    dial: PolicyDial,
    /// If set, only this process may write (single-writer enforcement).
    writer: Option<ProcId>,
    /// If set, only this process may read (single-reader enforcement).
    reader: Option<ProcId>,
}

impl<T: Clone + Send> SimAbortableReg<T> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: String,
        init: T,
        seed: u64,
        log: Arc<OpLog>,
        gauges: Arc<InflightGauges>,
        abort_policy: AbortPolicy,
        effect_policy: EffectPolicy,
        dial: PolicyDial,
        writer: Option<ProcId>,
        reader: Option<ProcId>,
    ) -> Self {
        SimAbortableReg {
            core: RegCore::new(name, init, seed, log, gauges),
            abort_policy,
            effect_policy,
            dial,
            writer,
            reader,
        }
    }

    /// The abort/effect policies in force right now (base policies
    /// possibly overridden by the dial).
    fn policies(&self) -> (AbortPolicy, EffectPolicy) {
        self.dial.resolve((self.abort_policy, self.effect_policy))
    }
}

impl<T: Clone + Send + Sync> AbortableRegister<T> for SimAbortableReg<T> {
    fn invoke_write(&self, env: &dyn Env, v: T) -> OpToken {
        if let Some(w) = self.writer {
            assert_eq!(
                env.pid(),
                w,
                "register {} written by non-owner",
                self.core.name
            );
        }
        OpToken::new(
            self.core
                .begin(env, OpKind::Write, env.pid(), env.now(), Some(v)),
        )
    }

    fn complete_write(&self, env: &dyn Env, tok: OpToken) -> WriteOutcome {
        let (abort_policy, effect_policy) = self.policies();
        let (res, (aborted, effect)) = self.core.resolve_apply(tok.raw(), |res, value| {
            let v = res.payload.take().expect("write resolved without payload");
            if res.overlapped && abort_policy.aborts(res.u_abort) {
                let effect = effect_policy.takes_effect(res.u_effect);
                if effect {
                    *value = v;
                }
                (true, effect)
            } else {
                *value = v;
                (false, true)
            }
        });
        self.core
            .record(env, res.invoked, OpKind::Write, &res, aborted, effect);
        if aborted {
            WriteOutcome::Aborted
        } else {
            WriteOutcome::Ok
        }
    }

    fn invoke_read(&self, env: &dyn Env) -> OpToken {
        if let Some(r) = self.reader {
            assert_eq!(
                env.pid(),
                r,
                "register {} read by non-owner",
                self.core.name
            );
        }
        OpToken::new(
            self.core
                .begin(env, OpKind::Read, env.pid(), env.now(), None),
        )
    }

    fn complete_read(&self, env: &dyn Env, tok: OpToken) -> ReadOutcome<T> {
        let (abort_policy, _) = self.policies();
        let (res, v) = self.core.resolve_apply(tok.raw(), |res, value| {
            if res.overlapped && abort_policy.aborts(res.u_abort) {
                None
            } else {
                Some(value.clone())
            }
        });
        match v {
            Some(v) => {
                self.core
                    .record(env, res.invoked, OpKind::Read, &res, false, false);
                ReadOutcome::Value(v)
            }
            None => {
                self.core
                    .record(env, res.invoked, OpKind::Read, &res, true, false);
                ReadOutcome::Aborted
            }
        }
    }
}

/// Simulated safe register over `u64`.
pub(crate) struct SimSafeReg {
    core: RegCore<u64>,
}

impl SimSafeReg {
    pub(crate) fn new(
        name: String,
        init: u64,
        seed: u64,
        log: Arc<OpLog>,
        gauges: Arc<InflightGauges>,
    ) -> Self {
        SimSafeReg {
            core: RegCore::new(name, init, seed, log, gauges),
        }
    }
}

impl SafeRegister for SimSafeReg {
    fn write(&self, env: &dyn Env, v: u64) -> SimResult<()> {
        let invoked = env.now();
        let id = self
            .core
            .begin(env, OpKind::Write, env.pid(), invoked, None);
        env.tick()?;
        let (res, ()) = self.core.resolve_apply(id, |_, value| *value = v);
        self.core
            .record(env, invoked, OpKind::Write, &res, false, true);
        Ok(())
    }

    fn read(&self, env: &dyn Env) -> SimResult<u64> {
        let invoked = env.now();
        let id = self.core.begin(env, OpKind::Read, env.pid(), invoked, None);
        env.tick()?;
        let (res, stored) = self.core.resolve_apply(id, |_, value| *value);
        let v = if res.overlapped_write {
            // Arbitrary value: safe semantics under read/write overlap.
            (res.u_abort * u64::MAX as f64) as u64
        } else {
            stored
        };
        self.core
            .record(env, invoked, OpKind::Read, &res, false, false);
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbwf_sim::FreeRunEnv;

    fn log() -> Arc<OpLog> {
        Arc::new(OpLog::new())
    }

    fn gauges() -> Arc<InflightGauges> {
        Arc::new(InflightGauges::new())
    }

    /// A free-running env that also reports a fixed set of crashed
    /// processes, for exercising the pending-op purge in `begin`.
    struct CrashyEnv {
        inner: FreeRunEnv,
        crashed: Vec<ProcId>,
    }

    impl Env for CrashyEnv {
        fn tick(&self) -> SimResult<()> {
            self.inner.tick()
        }
        fn now(&self) -> u64 {
            self.inner.now()
        }
        fn pid(&self) -> ProcId {
            self.inner.pid()
        }
        fn observe(&self, key: &'static str, idx: u32, value: i64) {
            self.inner.observe(key, idx, value);
        }
        fn is_crashed(&self, p: ProcId) -> bool {
            self.crashed.contains(&p)
        }
    }

    #[test]
    fn atomic_read_write_solo() {
        let env = FreeRunEnv::new(ProcId(0));
        let r = SimAtomicReg::new("R".into(), 0i64, 1, log(), gauges());
        r.write(&env, 7).unwrap();
        assert_eq!(r.read(&env).unwrap(), 7);
    }

    #[test]
    fn abortable_solo_never_aborts() {
        let env = FreeRunEnv::new(ProcId(0));
        let r = SimAbortableReg::new(
            "R".into(),
            0i64,
            1,
            log(),
            gauges(),
            AbortPolicy::AlwaysOnOverlap,
            EffectPolicy::Never,
            PolicyDial::new(),
            None,
            None,
        );
        for i in 0..100 {
            assert_eq!(r.write(&env, i).unwrap(), WriteOutcome::Ok);
            assert_eq!(r.read(&env).unwrap(), ReadOutcome::Value(i));
        }
    }

    #[test]
    fn overlap_detection_marks_both_ops() {
        let env = FreeRunEnv::new(ProcId(0));
        let r: RegCore<i64> = RegCore::new("R".into(), 0, 1, log(), gauges());
        let a = r.begin(&env, OpKind::Read, ProcId(0), 0, None);
        let b = r.begin(&env, OpKind::Write, ProcId(1), 0, Some(1));
        let ra = r.resolve(a);
        let rb = r.resolve(b);
        assert!(ra.overlapped);
        assert!(ra.overlapped_write);
        assert!(rb.overlapped);
        assert!(!rb.overlapped_write);
    }

    #[test]
    fn sequential_ops_do_not_overlap() {
        let env = FreeRunEnv::new(ProcId(0));
        let r: RegCore<i64> = RegCore::new("R".into(), 0, 1, log(), gauges());
        let a = r.begin(&env, OpKind::Read, ProcId(0), 0, None);
        let ra = r.resolve(a);
        let b = r.begin(&env, OpKind::Write, ProcId(0), 1, Some(1));
        let rb = r.resolve(b);
        assert!(!ra.overlapped);
        assert!(!rb.overlapped);
    }

    #[test]
    #[should_panic(expected = "written by non-owner")]
    fn single_writer_enforced() {
        let env = FreeRunEnv::new(ProcId(3));
        let r = SimAbortableReg::new(
            "R".into(),
            0i64,
            1,
            log(),
            gauges(),
            AbortPolicy::default(),
            EffectPolicy::default(),
            PolicyDial::new(),
            Some(ProcId(0)),
            None,
        );
        let _ = r.write(&env, 1);
    }

    #[test]
    fn ops_are_logged() {
        let env = FreeRunEnv::new(ProcId(2));
        let l = log();
        let r = SimAtomicReg::new("Reg".into(), 0i64, 1, Arc::clone(&l), gauges());
        r.write(&env, 1).unwrap();
        r.read(&env).unwrap();
        let evs = l.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, OpKind::Write);
        assert_eq!(evs[1].kind, OpKind::Read);
        assert_eq!(evs[0].proc, ProcId(2));
        assert_eq!(&*evs[0].reg, "Reg");
        assert!(evs[0].responded > evs[0].invoked);
    }

    #[test]
    fn safe_register_solo_reads_are_exact() {
        let env = FreeRunEnv::new(ProcId(0));
        let r = SimSafeReg::new("S".into(), 9, 1, log(), gauges());
        assert_eq!(r.read(&env).unwrap(), 9);
        r.write(&env, 11).unwrap();
        assert_eq!(r.read(&env).unwrap(), 11);
    }

    #[test]
    fn inflight_gauge_tracks_invoke_to_complete_window() {
        let g = gauges();
        let r: RegCore<i64> = RegCore::new("R".into(), 0, 1, log(), Arc::clone(&g));
        let env = FreeRunEnv::new(ProcId(2));
        let cell = g.cell(ProcId(2));
        assert_eq!(cell.load(Ordering::SeqCst), 0);
        let a = r.begin(&env, OpKind::Write, ProcId(2), 0, Some(1));
        assert_eq!(
            cell.load(Ordering::SeqCst),
            1,
            "held between invoke and complete"
        );
        let b = r.begin(&env, OpKind::Read, ProcId(2), 0, None);
        assert_eq!(cell.load(Ordering::SeqCst), 2);
        r.resolve(a);
        r.resolve(b);
        assert_eq!(cell.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn crashed_pending_op_does_not_poison_later_ops() {
        // p1 invokes a write and crashes before completing it. Under
        // AlwaysOnOverlap, p0's next operations must still succeed: the
        // dead pending op is purged at the next invocation and no longer
        // counts as overlapping.
        let g = gauges();
        let r = SimAbortableReg::new(
            "R".into(),
            0i64,
            1,
            log(),
            Arc::clone(&g),
            AbortPolicy::AlwaysOnOverlap,
            EffectPolicy::Never,
            PolicyDial::new(),
            None,
            None,
        );
        let p1 = CrashyEnv {
            inner: FreeRunEnv::new(ProcId(1)),
            crashed: vec![],
        };
        let _dangling = r.invoke_write(&p1, 99); // never completed
        let p0 = CrashyEnv {
            inner: FreeRunEnv::new(ProcId(0)),
            crashed: vec![ProcId(1)],
        };
        for i in 0..50 {
            assert_eq!(r.write(&p0, i).unwrap(), WriteOutcome::Ok);
            assert_eq!(r.read(&p0).unwrap(), ReadOutcome::Value(i));
        }
        // The dead op's gauge was released when it was purged, and the
        // crashed write never took effect.
        assert_eq!(g.cell(ProcId(1)).load(Ordering::SeqCst), 0);
    }

    #[test]
    fn dial_overrides_only_while_set() {
        let env = FreeRunEnv::new(ProcId(0));
        let dial = PolicyDial::new();
        let r = SimAbortableReg::new(
            "R".into(),
            0i64,
            1,
            log(),
            gauges(),
            AbortPolicy::Never,
            EffectPolicy::Never,
            dial.clone(),
            None,
            None,
        );
        // Overlapped ops under the base Never policy do not abort.
        let t1 = r.invoke_write(&env, 1);
        let t2 = r.invoke_write(&env, 2);
        assert_eq!(r.complete_write(&env, t1), WriteOutcome::Ok);
        assert_eq!(r.complete_write(&env, t2), WriteOutcome::Ok);
        // Under the storm mode they abort (and the writes take effect).
        dial.set(crate::policy::DIAL_ABORT_STORM);
        let t1 = r.invoke_write(&env, 3);
        let t2 = r.invoke_write(&env, 4);
        assert_eq!(r.complete_write(&env, t1), WriteOutcome::Aborted);
        assert_eq!(r.complete_write(&env, t2), WriteOutcome::Aborted);
        assert_eq!(r.read(&env).unwrap(), ReadOutcome::Value(4));
        // Back to base: Never again.
        dial.set(crate::policy::DIAL_BASE);
        let t1 = r.invoke_write(&env, 5);
        let t2 = r.invoke_write(&env, 6);
        assert_eq!(r.complete_write(&env, t1), WriteOutcome::Ok);
        assert_eq!(r.complete_write(&env, t2), WriteOutcome::Ok);
    }
}
