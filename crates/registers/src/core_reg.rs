//! The simulated register core: two-phase operations with overlap
//! detection, and the three register kinds built on it.

use crate::outcome::{ReadOutcome, WriteOutcome};
use crate::policy::{AbortPolicy, EffectPolicy};
use crate::stats::{OpEvent, OpKind, OpLog};
use crate::{AbortableRegister, AtomicRegister, OpToken, SafeRegister};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tbwf_sim::{Env, ProcId, SimResult};

/// An operation in flight between its invocation and response steps.
struct Inflight<T> {
    id: u64,
    kind: OpKind,
    /// Set as soon as any other operation's interval overlaps this one.
    overlapped: bool,
    /// Whether the overlap involved a write (needed by safe registers).
    overlapped_write: bool,
    /// Time of the invocation step (for the operation log).
    invoked: u64,
    /// A write's value, captured at invocation.
    payload: Option<T>,
}

struct CoreState<T> {
    value: T,
    inflight: Vec<Inflight<T>>,
    next_id: u64,
    rng: StdRng,
}

/// Shared core of one simulated register.
pub(crate) struct RegCore<T> {
    name: String,
    state: Mutex<CoreState<T>>,
    log: Arc<OpLog>,
}

/// What the core reports when an operation resolves.
struct Resolution<T> {
    overlapped: bool,
    overlapped_write: bool,
    /// Uniform samples for the abort and effect decisions.
    u_abort: f64,
    u_effect: f64,
    /// Invocation time, echoed back from `begin`.
    invoked: u64,
    /// The write payload captured at invocation, if any.
    payload: Option<T>,
}

impl<T: Clone + Send> RegCore<T> {
    fn new(name: String, init: T, seed: u64, log: Arc<OpLog>) -> Self {
        RegCore {
            name,
            state: Mutex::new(CoreState {
                value: init,
                inflight: Vec::new(),
                next_id: 0,
                rng: StdRng::seed_from_u64(seed),
            }),
            log,
        }
    }

    /// Invocation step: register the in-flight op and mark overlaps.
    fn begin(&self, kind: OpKind, invoked: u64, payload: Option<T>) -> u64 {
        let mut st = self.state.lock();
        let id = st.next_id;
        st.next_id += 1;
        let any = !st.inflight.is_empty();
        let any_write = st.inflight.iter().any(|o| o.kind == OpKind::Write);
        for o in &mut st.inflight {
            o.overlapped = true;
            o.overlapped_write |= kind == OpKind::Write;
        }
        st.inflight.push(Inflight {
            id,
            kind,
            overlapped: any,
            overlapped_write: any_write,
            invoked,
            payload,
        });
        id
    }

    /// Response step: remove the in-flight op and sample the adversary.
    fn resolve(&self, id: u64) -> Resolution<T> {
        let mut st = self.state.lock();
        let pos = st
            .inflight
            .iter()
            .position(|o| o.id == id)
            .expect("resolving unknown operation");
        let op = st.inflight.remove(pos);
        let u_abort = st.rng.random::<f64>();
        let u_effect = st.rng.random::<f64>();
        Resolution {
            overlapped: op.overlapped,
            overlapped_write: op.overlapped_write,
            u_abort,
            u_effect,
            invoked: op.invoked,
            payload: op.payload,
        }
    }

    fn record(
        &self,
        env: &dyn Env,
        invoked: u64,
        kind: OpKind,
        res: &Resolution<T>,
        aborted: bool,
        effect: bool,
    ) {
        self.log.push(OpEvent {
            invoked,
            responded: env.now(),
            proc: env.pid(),
            reg: self.name.clone(),
            kind,
            overlapped: res.overlapped,
            aborted,
            effect,
        });
    }
}

/// Simulated atomic register (linearizes at the response step).
pub(crate) struct SimAtomicReg<T> {
    core: RegCore<T>,
}

impl<T: Clone + Send> SimAtomicReg<T> {
    pub(crate) fn new(name: String, init: T, seed: u64, log: Arc<OpLog>) -> Self {
        SimAtomicReg {
            core: RegCore::new(name, init, seed, log),
        }
    }
}

impl<T: Clone + Send + Sync> AtomicRegister<T> for SimAtomicReg<T> {
    fn invoke_write(&self, env: &dyn Env, v: T) -> OpToken {
        OpToken::new(self.core.begin(OpKind::Write, env.now(), Some(v)))
    }

    fn complete_write(&self, env: &dyn Env, tok: OpToken) {
        let res = self.core.resolve(tok.raw());
        let v = res.payload.clone().expect("write resolved without payload");
        self.core.state.lock().value = v;
        self.core
            .record(env, res.invoked, OpKind::Write, &res, false, true);
    }

    fn invoke_read(&self, env: &dyn Env) -> OpToken {
        OpToken::new(self.core.begin(OpKind::Read, env.now(), None))
    }

    fn complete_read(&self, env: &dyn Env, tok: OpToken) -> T {
        let res = self.core.resolve(tok.raw());
        let v = self.core.state.lock().value.clone();
        self.core
            .record(env, res.invoked, OpKind::Read, &res, false, false);
        v
    }
}

/// Simulated abortable register.
pub(crate) struct SimAbortableReg<T> {
    core: RegCore<T>,
    abort_policy: AbortPolicy,
    effect_policy: EffectPolicy,
    /// If set, only this process may write (single-writer enforcement).
    writer: Option<ProcId>,
    /// If set, only this process may read (single-reader enforcement).
    reader: Option<ProcId>,
}

impl<T: Clone + Send> SimAbortableReg<T> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        name: String,
        init: T,
        seed: u64,
        log: Arc<OpLog>,
        abort_policy: AbortPolicy,
        effect_policy: EffectPolicy,
        writer: Option<ProcId>,
        reader: Option<ProcId>,
    ) -> Self {
        SimAbortableReg {
            core: RegCore::new(name, init, seed, log),
            abort_policy,
            effect_policy,
            writer,
            reader,
        }
    }
}

impl<T: Clone + Send + Sync> AbortableRegister<T> for SimAbortableReg<T> {
    fn invoke_write(&self, env: &dyn Env, v: T) -> OpToken {
        if let Some(w) = self.writer {
            assert_eq!(
                env.pid(),
                w,
                "register {} written by non-owner",
                self.core.name
            );
        }
        OpToken::new(self.core.begin(OpKind::Write, env.now(), Some(v)))
    }

    fn complete_write(&self, env: &dyn Env, tok: OpToken) -> WriteOutcome {
        let res = self.core.resolve(tok.raw());
        let v = res.payload.clone().expect("write resolved without payload");
        if res.overlapped && self.abort_policy.aborts(res.u_abort) {
            let effect = self.effect_policy.takes_effect(res.u_effect);
            if effect {
                self.core.state.lock().value = v;
            }
            self.core
                .record(env, res.invoked, OpKind::Write, &res, true, effect);
            WriteOutcome::Aborted
        } else {
            self.core.state.lock().value = v;
            self.core
                .record(env, res.invoked, OpKind::Write, &res, false, true);
            WriteOutcome::Ok
        }
    }

    fn invoke_read(&self, env: &dyn Env) -> OpToken {
        if let Some(r) = self.reader {
            assert_eq!(
                env.pid(),
                r,
                "register {} read by non-owner",
                self.core.name
            );
        }
        OpToken::new(self.core.begin(OpKind::Read, env.now(), None))
    }

    fn complete_read(&self, env: &dyn Env, tok: OpToken) -> ReadOutcome<T> {
        let res = self.core.resolve(tok.raw());
        if res.overlapped && self.abort_policy.aborts(res.u_abort) {
            self.core
                .record(env, res.invoked, OpKind::Read, &res, true, false);
            ReadOutcome::Aborted
        } else {
            let v = self.core.state.lock().value.clone();
            self.core
                .record(env, res.invoked, OpKind::Read, &res, false, false);
            ReadOutcome::Value(v)
        }
    }
}

/// Simulated safe register over `u64`.
pub(crate) struct SimSafeReg {
    core: RegCore<u64>,
}

impl SimSafeReg {
    pub(crate) fn new(name: String, init: u64, seed: u64, log: Arc<OpLog>) -> Self {
        SimSafeReg {
            core: RegCore::new(name, init, seed, log),
        }
    }
}

impl SafeRegister for SimSafeReg {
    fn write(&self, env: &dyn Env, v: u64) -> SimResult<()> {
        let invoked = env.now();
        let id = self.core.begin(OpKind::Write, invoked, None);
        env.tick()?;
        let res = self.core.resolve(id);
        self.core.state.lock().value = v;
        self.core
            .record(env, invoked, OpKind::Write, &res, false, true);
        Ok(())
    }

    fn read(&self, env: &dyn Env) -> SimResult<u64> {
        let invoked = env.now();
        let id = self.core.begin(OpKind::Read, invoked, None);
        env.tick()?;
        let res = self.core.resolve(id);
        let v = if res.overlapped_write {
            // Arbitrary value: safe semantics under read/write overlap.
            (res.u_abort * u64::MAX as f64) as u64
        } else {
            self.core.state.lock().value
        };
        self.core
            .record(env, invoked, OpKind::Read, &res, false, false);
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbwf_sim::FreeRunEnv;

    fn log() -> Arc<OpLog> {
        Arc::new(OpLog::new())
    }

    #[test]
    fn atomic_read_write_solo() {
        let env = FreeRunEnv::new(ProcId(0));
        let r = SimAtomicReg::new("R".into(), 0i64, 1, log());
        r.write(&env, 7).unwrap();
        assert_eq!(r.read(&env).unwrap(), 7);
    }

    #[test]
    fn abortable_solo_never_aborts() {
        let env = FreeRunEnv::new(ProcId(0));
        let r = SimAbortableReg::new(
            "R".into(),
            0i64,
            1,
            log(),
            AbortPolicy::AlwaysOnOverlap,
            EffectPolicy::Never,
            None,
            None,
        );
        for i in 0..100 {
            assert_eq!(r.write(&env, i).unwrap(), WriteOutcome::Ok);
            assert_eq!(r.read(&env).unwrap(), ReadOutcome::Value(i));
        }
    }

    #[test]
    fn overlap_detection_marks_both_ops() {
        let r: RegCore<i64> = RegCore::new("R".into(), 0, 1, log());
        let a = r.begin(OpKind::Read, 0, None);
        let b = r.begin(OpKind::Write, 0, Some(1));
        let ra = r.resolve(a);
        let rb = r.resolve(b);
        assert!(ra.overlapped);
        assert!(ra.overlapped_write);
        assert!(rb.overlapped);
        assert!(!rb.overlapped_write);
    }

    #[test]
    fn sequential_ops_do_not_overlap() {
        let r: RegCore<i64> = RegCore::new("R".into(), 0, 1, log());
        let a = r.begin(OpKind::Read, 0, None);
        let ra = r.resolve(a);
        let b = r.begin(OpKind::Write, 1, Some(1));
        let rb = r.resolve(b);
        assert!(!ra.overlapped);
        assert!(!rb.overlapped);
    }

    #[test]
    #[should_panic(expected = "written by non-owner")]
    fn single_writer_enforced() {
        let env = FreeRunEnv::new(ProcId(3));
        let r = SimAbortableReg::new(
            "R".into(),
            0i64,
            1,
            log(),
            AbortPolicy::default(),
            EffectPolicy::default(),
            Some(ProcId(0)),
            None,
        );
        let _ = r.write(&env, 1);
    }

    #[test]
    fn ops_are_logged() {
        let env = FreeRunEnv::new(ProcId(2));
        let l = log();
        let r = SimAtomicReg::new("Reg".into(), 0i64, 1, Arc::clone(&l));
        r.write(&env, 1).unwrap();
        r.read(&env).unwrap();
        let evs = l.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, OpKind::Write);
        assert_eq!(evs[1].kind, OpKind::Read);
        assert_eq!(evs[0].proc, ProcId(2));
        assert_eq!(evs[0].reg, "Reg");
        assert!(evs[0].responded > evs[0].invoked);
    }

    #[test]
    fn safe_register_solo_reads_are_exact() {
        let env = FreeRunEnv::new(ProcId(0));
        let r = SimSafeReg::new("S".into(), 9, 1, log());
        assert_eq!(r.read(&env).unwrap(), 9);
        r.write(&env, 11).unwrap();
        assert_eq!(r.read(&env).unwrap(), 11);
    }
}
