//! Operation outcomes for abortable registers.

use std::fmt;

/// Result of a write on an abortable register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteOutcome {
    /// The write succeeded and took effect.
    Ok,
    /// The write aborted (`⊥`): it was concurrent with another operation
    /// and **may or may not** have taken effect — the writer cannot tell.
    Aborted,
}

impl WriteOutcome {
    /// Whether the write returned `ok`.
    pub fn is_ok(self) -> bool {
        self == WriteOutcome::Ok
    }

    /// Whether the write returned `⊥`.
    pub fn is_aborted(self) -> bool {
        self == WriteOutcome::Aborted
    }
}

impl fmt::Display for WriteOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteOutcome::Ok => write!(f, "ok"),
            WriteOutcome::Aborted => write!(f, "⊥"),
        }
    }
}

/// Result of a read on an abortable register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadOutcome<T> {
    /// The read succeeded and returned the register's value.
    Value(T),
    /// The read aborted (`⊥`): it was concurrent with another operation
    /// and returned no value.
    Aborted,
}

impl<T> ReadOutcome<T> {
    /// Whether the read aborted.
    pub fn is_aborted(&self) -> bool {
        matches!(self, ReadOutcome::Aborted)
    }

    /// The value, if the read succeeded.
    pub fn value(self) -> Option<T> {
        match self {
            ReadOutcome::Value(v) => Some(v),
            ReadOutcome::Aborted => None,
        }
    }

    /// Borrowing accessor for the value.
    pub fn as_value(&self) -> Option<&T> {
        match self {
            ReadOutcome::Value(v) => Some(v),
            ReadOutcome::Aborted => None,
        }
    }

    /// Maps the value, preserving aborts.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> ReadOutcome<U> {
        match self {
            ReadOutcome::Value(v) => ReadOutcome::Value(f(v)),
            ReadOutcome::Aborted => ReadOutcome::Aborted,
        }
    }
}

impl<T: fmt::Display> fmt::Display for ReadOutcome<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadOutcome::Value(v) => write!(f, "{v}"),
            ReadOutcome::Aborted => write!(f, "⊥"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_outcome_predicates() {
        assert!(WriteOutcome::Ok.is_ok());
        assert!(!WriteOutcome::Ok.is_aborted());
        assert!(WriteOutcome::Aborted.is_aborted());
        assert_eq!(WriteOutcome::Aborted.to_string(), "⊥");
    }

    #[test]
    fn read_outcome_accessors() {
        let r: ReadOutcome<i32> = ReadOutcome::Value(5);
        assert_eq!(r.as_value(), Some(&5));
        assert_eq!(r.value(), Some(5));
        let a: ReadOutcome<i32> = ReadOutcome::Aborted;
        assert!(a.is_aborted());
        assert_eq!(a.value(), None);
    }

    #[test]
    fn read_outcome_map() {
        let r: ReadOutcome<i32> = ReadOutcome::Value(5);
        assert_eq!(r.map(|v| v * 2), ReadOutcome::Value(10));
        let a: ReadOutcome<i32> = ReadOutcome::Aborted;
        assert_eq!(a.map(|v| v * 2), ReadOutcome::Aborted);
    }
}
