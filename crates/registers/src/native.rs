//! Native (real-thread) backend.
//!
//! The simulated backend gives determinism and full adversary control; the
//! native backend gives real parallelism for the Criterion benches. Both
//! implement the same [`AtomicRegister`]/[`AbortableRegister`] traits, so
//! algorithm code is backend-agnostic.
//!
//! The native abortable register aborts exactly when it *detects* a racing
//! operation (a held try-lock or a torn version), which is an admissible
//! adversary for the abortable-register specification: solo operations
//! never abort.

use crate::outcome::{ReadOutcome, WriteOutcome};
use crate::{AbortableRegister, AtomicRegister, OpToken};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tbwf_sim::{Env, Halted, ProcId, SimResult};

/// Keyed stash for write payloads between `invoke_write` and
/// `complete_write` (native registers have no in-flight bookkeeping of
/// their own, unlike the simulated core).
struct PayloadStash<T> {
    next_tok: AtomicU64,
    pending: Mutex<Vec<(u64, T)>>,
}

impl<T> PayloadStash<T> {
    fn new() -> Self {
        PayloadStash {
            next_tok: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
        }
    }

    fn put(&self, v: Option<T>) -> OpToken {
        let tok = self.next_tok.fetch_add(1, Ordering::Relaxed);
        if let Some(v) = v {
            self.pending.lock().push((tok, v));
        }
        OpToken::new(tok)
    }

    fn take(&self, tok: OpToken) -> T {
        let mut pending = self.pending.lock();
        let pos = pending
            .iter()
            .position(|(t, _)| *t == tok.raw())
            .expect("completing unknown or already-completed write");
        pending.remove(pos).1
    }
}

/// Environment for algorithm code running on real threads.
///
/// `tick` checks a shared stop flag (so `repeat forever` loops can be torn
/// down) and counts local steps; `now` returns a global step counter that
/// is monotone but — unlike the simulator — not a total order of steps.
#[derive(Clone)]
pub struct NativeEnv {
    pid: ProcId,
    stop: Arc<AtomicBool>,
    clock: Arc<AtomicU64>,
}

impl NativeEnv {
    /// Creates an environment for process `pid` controlled by `stop`.
    pub fn new(pid: ProcId, stop: Arc<AtomicBool>) -> Self {
        NativeEnv {
            pid,
            stop,
            clock: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates `n` environments sharing one stop flag and clock.
    pub fn group(n: usize) -> (Vec<NativeEnv>, Arc<AtomicBool>) {
        let stop = Arc::new(AtomicBool::new(false));
        let clock = Arc::new(AtomicU64::new(0));
        let envs = (0..n)
            .map(|p| NativeEnv {
                pid: ProcId(p),
                stop: Arc::clone(&stop),
                clock: Arc::clone(&clock),
            })
            .collect();
        (envs, stop)
    }

    /// The shared stop flag; set it to `true` to halt all loops.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }
}

impl Env for NativeEnv {
    fn tick(&self) -> SimResult<()> {
        if self.stop.load(Ordering::Relaxed) {
            return Err(Halted);
        }
        self.clock.fetch_add(1, Ordering::Relaxed);
        std::hint::spin_loop();
        Ok(())
    }

    fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    fn pid(&self) -> ProcId {
        self.pid
    }

    fn observe(&self, _key: &'static str, _idx: u32, _value: i64) {
        // Native runs are for throughput, not trace checking.
    }
}

/// Native atomic register: a mutex-protected value.
pub struct NativeAtomicReg<T> {
    value: Mutex<T>,
    stash: PayloadStash<T>,
}

impl<T: Clone + Send> NativeAtomicReg<T> {
    /// Creates the register with an initial value.
    pub fn new(init: T) -> Self {
        NativeAtomicReg {
            value: Mutex::new(init),
            stash: PayloadStash::new(),
        }
    }
}

impl<T: Clone + Send + Sync> AtomicRegister<T> for NativeAtomicReg<T> {
    fn invoke_write(&self, _env: &dyn Env, v: T) -> OpToken {
        self.stash.put(Some(v))
    }

    fn complete_write(&self, _env: &dyn Env, tok: OpToken) {
        *self.value.lock() = self.stash.take(tok);
    }

    fn invoke_read(&self, _env: &dyn Env) -> OpToken {
        self.stash.put(None)
    }

    fn complete_read(&self, _env: &dyn Env, _tok: OpToken) -> T {
        self.value.lock().clone()
    }
}

/// Native abortable register: try-lock with a version word.
///
/// * `write` try-locks; failure ⇒ a concurrent operation holds the
///   register ⇒ abort **without** effect. On success the version is
///   bumped to odd, the value stored, then bumped to even.
/// * `read` samples the version (odd ⇒ a write is mid-flight ⇒ abort),
///   try-locks (failure ⇒ abort), and returns the value.
///
/// Solo operations always succeed, as the specification requires.
pub struct NativeAbortableReg<T> {
    version: AtomicU64,
    value: Mutex<T>,
    stash: PayloadStash<T>,
}

impl<T: Clone + Send> NativeAbortableReg<T> {
    /// Creates the register with an initial value.
    pub fn new(init: T) -> Self {
        NativeAbortableReg {
            version: AtomicU64::new(0),
            value: Mutex::new(init),
            stash: PayloadStash::new(),
        }
    }
}

impl<T: Clone + Send + Sync> AbortableRegister<T> for NativeAbortableReg<T> {
    fn invoke_write(&self, _env: &dyn Env, v: T) -> OpToken {
        self.stash.put(Some(v))
    }

    fn complete_write(&self, _env: &dyn Env, tok: OpToken) -> WriteOutcome {
        let v = self.stash.take(tok);
        match self.value.try_lock() {
            Some(mut guard) => {
                self.version.fetch_add(1, Ordering::AcqRel); // odd: in flight
                *guard = v;
                self.version.fetch_add(1, Ordering::AcqRel); // even: done
                WriteOutcome::Ok
            }
            None => WriteOutcome::Aborted,
        }
    }

    fn invoke_read(&self, _env: &dyn Env) -> OpToken {
        self.stash.put(None)
    }

    fn complete_read(&self, _env: &dyn Env, _tok: OpToken) -> ReadOutcome<T> {
        if self.version.load(Ordering::Acquire) % 2 == 1 {
            return ReadOutcome::Aborted;
        }
        match self.value.try_lock() {
            Some(guard) => ReadOutcome::Value(guard.clone()),
            None => ReadOutcome::Aborted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn native_env_halts_on_stop() {
        let (envs, stop) = NativeEnv::group(2);
        assert!(envs[0].tick().is_ok());
        stop.store(true, Ordering::Relaxed);
        assert_eq!(envs[0].tick(), Err(Halted));
        assert_eq!(envs[1].tick(), Err(Halted));
        assert_eq!(envs[0].pid(), ProcId(0));
        assert_eq!(envs[1].pid(), ProcId(1));
    }

    #[test]
    fn native_atomic_roundtrip() {
        let (envs, _stop) = NativeEnv::group(1);
        let r = NativeAtomicReg::new(0i64);
        r.write(&envs[0], 42).unwrap();
        assert_eq!(r.read(&envs[0]).unwrap(), 42);
    }

    #[test]
    fn native_abortable_solo_succeeds() {
        let (envs, _stop) = NativeEnv::group(1);
        let r = NativeAbortableReg::new(0i64);
        for i in 0..1000 {
            assert_eq!(r.write(&envs[0], i).unwrap(), WriteOutcome::Ok);
            assert_eq!(r.read(&envs[0]).unwrap(), ReadOutcome::Value(i));
        }
    }

    #[test]
    fn native_abortable_contention_aborts_but_is_safe() {
        let (envs, stop) = NativeEnv::group(2);
        let r = Arc::new(NativeAbortableReg::new(0u64));
        let writer = {
            let r = Arc::clone(&r);
            let env = envs[0].clone();
            thread::spawn(move || {
                let mut ok = 0u64;
                let mut i = 1u64;
                while env.tick().is_ok() {
                    if r.write(&env, i).unwrap_or(WriteOutcome::Aborted).is_ok() {
                        ok += 1;
                    }
                    i += 1;
                }
                ok
            })
        };
        let reader = {
            let r = Arc::clone(&r);
            let env = envs[1].clone();
            thread::spawn(move || {
                let mut last = 0u64;
                let mut seen = 0u64;
                while env.tick().is_ok() {
                    if let Ok(ReadOutcome::Value(v)) = r.read(&env) {
                        assert!(v >= last, "values must be monotone: {v} < {last}");
                        last = v;
                        seen += 1;
                    }
                }
                seen
            })
        };
        thread::sleep(std::time::Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        let ok = writer.join().unwrap();
        let seen = reader.join().unwrap();
        assert!(ok > 0, "some writes must succeed");
        assert!(seen > 0, "some reads must succeed");
    }
}
