//! Shared registers for the TBWF reproduction: atomic, safe, and
//! **abortable** registers, in two backends.
//!
//! # Model (simulated backend)
//!
//! In the paper's model (Section 3 and \[2\]) a register operation spans an
//! *invocation* step and a *response* step; two operations are
//! **concurrent** iff their invoke–response intervals overlap. The
//! simulated registers here implement exactly that:
//!
//! * an operation registers its invocation, consumes one
//!   [`Env::tick`](tbwf_sim::Env) (so the response happens on the
//!   caller's *next* step, arbitrarily far in global time), then resolves;
//! * an **atomic** register linearizes at the response and never aborts;
//! * a **safe** register returns an arbitrary (seeded) value when a read
//!   overlaps a write;
//! * an **abortable** register *may abort* any operation that overlaps
//!   another operation on the same register: an aborted read returns no
//!   value, an aborted write returns `⊥` and *may or may not take effect*
//!   (the writer cannot tell) — the semantics of \[2\] as summarized in
//!   Section 1.2 of the paper. Operations that overlap nothing **never**
//!   abort, which is what makes solo execution (and hence
//!   obstruction-freedom) possible.
//!
//! Abort and effect decisions are driven by a seeded [`AbortPolicy`] /
//! [`EffectPolicy`] so every adversary is reproducible; the default policy
//! (`AlwaysOnOverlap`) is the strongest admissible adversary.
//!
//! # Native backend
//!
//! [`native`] provides real-thread implementations: the abortable register
//! is a try-lock/seqlock hybrid whose operations abort exactly when they
//! detect a racing operation. It is used by the Criterion benches to put
//! real parallel contention through the same algorithm code.
//!
//! All registers are created through a [`RegisterFactory`], which tags each
//! register with a name and records every operation into a shared
//! [`OpLog`] — the write-efficiency experiment (E6) and the abort-rate
//! ablation (E8) read the log.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cas;
mod core_reg;
mod factory;
pub mod native;
mod outcome;
mod policy;
pub mod stats;

pub use cas::{CasRegister, SharedCas};
pub use core_reg::InflightGauges;
pub use factory::{RegisterFactory, RegisterFactoryConfig};
pub use outcome::{ReadOutcome, WriteOutcome};
pub use policy::{
    AbortPolicy, EffectPolicy, PolicyDial, DIAL_ABORT_NO_EFFECT, DIAL_ABORT_STORM, DIAL_BASE,
    DIAL_CALM,
};
pub use stats::{OpEvent, OpKind, OpLog};

use std::sync::Arc;
use tbwf_sim::{Env, SimResult};

/// Opaque handle to one register operation between its invocation and its
/// response step.
///
/// Returned by the `invoke_*` methods; passed to the matching `complete_*`
/// method exactly once, on a *later* step of the same task (in stepper
/// code: invoke at the end of one segment, complete at the start of the
/// next). Completing a token twice, or a token from a different register,
/// panics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpToken(u64);

impl OpToken {
    /// Wraps a raw operation id (for register implementors).
    pub fn new(raw: u64) -> Self {
        OpToken(raw)
    }

    /// The raw operation id (for register implementors).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A multi-writer multi-reader atomic register.
///
/// Operations never abort; each costs two steps (invoke + response).
///
/// The required methods are the two-phase (poll) form used by stepper
/// code; a write value is captured at invocation. The blocking `write`/
/// `read` are *derived*: invoke, consume one step with [`Env::tick`],
/// complete. Because the derivation is the only difference between the
/// two forms, an algorithm using either form performs its register steps
/// at identical times.
pub trait AtomicRegister<T: Clone>: Send + Sync {
    /// Invocation step of a write of `v` (the value is captured now).
    fn invoke_write(&self, env: &dyn Env, v: T) -> OpToken;

    /// Response step of a write; linearization point.
    fn complete_write(&self, env: &dyn Env, tok: OpToken);

    /// Invocation step of a read.
    fn invoke_read(&self, env: &dyn Env) -> OpToken;

    /// Response step of a read; returns the value read.
    fn complete_read(&self, env: &dyn Env, tok: OpToken) -> T;

    /// Writes `v`; linearizes at the response step (blocking form).
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn write(&self, env: &dyn Env, v: T) -> SimResult<()> {
        let tok = self.invoke_write(env, v);
        env.tick()?;
        self.complete_write(env, tok);
        Ok(())
    }

    /// Reads the current value (blocking form).
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn read(&self, env: &dyn Env) -> SimResult<T> {
        let tok = self.invoke_read(env);
        env.tick()?;
        Ok(self.complete_read(env, tok))
    }
}

/// An abortable register (\[2\]; Section 1.2 of the paper).
///
/// Operations that are concurrent with other operations on the same
/// register **may** return `⊥` ([`WriteOutcome::Aborted`] /
/// [`ReadOutcome::Aborted`]); an aborted write may or may not have taken
/// effect. An operation concurrent with nothing never aborts.
///
/// As with [`AtomicRegister`], the required methods are the two-phase
/// (poll) form and the blocking forms are derived from them, so both
/// forms take steps at identical times.
pub trait AbortableRegister<T: Clone>: Send + Sync {
    /// Invocation step of a write of `v` (the value is captured now).
    fn invoke_write(&self, env: &dyn Env, v: T) -> OpToken;

    /// Response step of a write; reports whether it aborted.
    fn complete_write(&self, env: &dyn Env, tok: OpToken) -> WriteOutcome;

    /// Invocation step of a read.
    fn invoke_read(&self, env: &dyn Env) -> OpToken;

    /// Response step of a read; aborted reads return no value.
    fn complete_read(&self, env: &dyn Env, tok: OpToken) -> ReadOutcome<T>;

    /// Attempts to write `v` (blocking form).
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn write(&self, env: &dyn Env, v: T) -> SimResult<WriteOutcome> {
        let tok = self.invoke_write(env, v);
        env.tick()?;
        Ok(self.complete_write(env, tok))
    }

    /// Attempts to read (blocking form).
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn read(&self, env: &dyn Env) -> SimResult<ReadOutcome<T>> {
        let tok = self.invoke_read(env);
        env.tick()?;
        Ok(self.complete_read(env, tok))
    }
}

/// A safe register holding `u64` values.
///
/// A read that overlaps a write returns an *arbitrary* value (here: a
/// seeded pseudo-random one). Included to demonstrate that abortable
/// registers are *weaker* than safe registers: a safe write always takes
/// effect, an abortable one may not.
pub trait SafeRegister: Send + Sync {
    /// Writes `v` (always takes effect).
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn write(&self, env: &dyn Env, v: u64) -> SimResult<()>;

    /// Reads; an overlapping write makes the result arbitrary.
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn read(&self, env: &dyn Env) -> SimResult<u64>;
}

/// Shorthand for a shared atomic register handle.
pub type SharedAtomic<T> = Arc<dyn AtomicRegister<T>>;
/// Shorthand for a shared abortable register handle.
pub type SharedAbortable<T> = Arc<dyn AbortableRegister<T>>;
