//! Shared registers for the TBWF reproduction: atomic, safe, and
//! **abortable** registers, in two backends.
//!
//! # Model (simulated backend)
//!
//! In the paper's model (Section 3 and \[2\]) a register operation spans an
//! *invocation* step and a *response* step; two operations are
//! **concurrent** iff their invoke–response intervals overlap. The
//! simulated registers here implement exactly that:
//!
//! * an operation registers its invocation, consumes one
//!   [`Env::tick`](tbwf_sim::Env) (so the response happens on the
//!   caller's *next* step, arbitrarily far in global time), then resolves;
//! * an **atomic** register linearizes at the response and never aborts;
//! * a **safe** register returns an arbitrary (seeded) value when a read
//!   overlaps a write;
//! * an **abortable** register *may abort* any operation that overlaps
//!   another operation on the same register: an aborted read returns no
//!   value, an aborted write returns `⊥` and *may or may not take effect*
//!   (the writer cannot tell) — the semantics of \[2\] as summarized in
//!   Section 1.2 of the paper. Operations that overlap nothing **never**
//!   abort, which is what makes solo execution (and hence
//!   obstruction-freedom) possible.
//!
//! Abort and effect decisions are driven by a seeded [`AbortPolicy`] /
//! [`EffectPolicy`] so every adversary is reproducible; the default policy
//! (`AlwaysOnOverlap`) is the strongest admissible adversary.
//!
//! # Native backend
//!
//! [`native`] provides real-thread implementations: the abortable register
//! is a try-lock/seqlock hybrid whose operations abort exactly when they
//! detect a racing operation. It is used by the Criterion benches to put
//! real parallel contention through the same algorithm code.
//!
//! All registers are created through a [`RegisterFactory`], which tags each
//! register with a name and records every operation into a shared
//! [`OpLog`] — the write-efficiency experiment (E6) and the abort-rate
//! ablation (E8) read the log.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cas;
mod core_reg;
mod factory;
pub mod native;
mod outcome;
mod policy;
pub mod stats;

pub use cas::{CasRegister, SharedCas};
pub use factory::{RegisterFactory, RegisterFactoryConfig};
pub use outcome::{ReadOutcome, WriteOutcome};
pub use policy::{AbortPolicy, EffectPolicy};
pub use stats::{OpEvent, OpKind, OpLog};

use std::sync::Arc;
use tbwf_sim::{Env, SimResult};

/// A multi-writer multi-reader atomic register.
///
/// Operations never abort; each costs two steps (invoke + response) on the
/// simulated backend.
pub trait AtomicRegister<T: Clone>: Send + Sync {
    /// Writes `v`; linearizes at the response step.
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn write(&self, env: &dyn Env, v: T) -> SimResult<()>;

    /// Reads the current value.
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn read(&self, env: &dyn Env) -> SimResult<T>;
}

/// An abortable register (\[2\]; Section 1.2 of the paper).
///
/// Operations that are concurrent with other operations on the same
/// register **may** return `⊥` ([`WriteOutcome::Aborted`] /
/// [`ReadOutcome::Aborted`]); an aborted write may or may not have taken
/// effect. An operation concurrent with nothing never aborts.
pub trait AbortableRegister<T: Clone>: Send + Sync {
    /// Attempts to write `v`.
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn write(&self, env: &dyn Env, v: T) -> SimResult<WriteOutcome>;

    /// Attempts to read.
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn read(&self, env: &dyn Env) -> SimResult<ReadOutcome<T>>;
}

/// A safe register holding `u64` values.
///
/// A read that overlaps a write returns an *arbitrary* value (here: a
/// seeded pseudo-random one). Included to demonstrate that abortable
/// registers are *weaker* than safe registers: a safe write always takes
/// effect, an abortable one may not.
pub trait SafeRegister: Send + Sync {
    /// Writes `v` (always takes effect).
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn write(&self, env: &dyn Env, v: u64) -> SimResult<()>;

    /// Reads; an overlapping write makes the result arbitrary.
    ///
    /// # Errors
    /// Propagates [`Halted`](tbwf_sim::Halted) at the end of a run.
    fn read(&self, env: &dyn Env) -> SimResult<u64>;
}

/// Shorthand for a shared atomic register handle.
pub type SharedAtomic<T> = Arc<dyn AtomicRegister<T>>;
/// Shorthand for a shared abortable register handle.
pub type SharedAbortable<T> = Arc<dyn AbortableRegister<T>>;
