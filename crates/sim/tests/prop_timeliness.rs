//! Property tests: the timeliness analyzer against brute-force
//! enumerations of Definition 1.

use proptest::prelude::*;
use tbwf_sim::timeliness::{q_timely_bound, timely_bound, windowed_bounds};
use tbwf_sim::ProcId;

/// Brute force for Definition 1: the minimal `i ≥ 1` such that every
/// contiguous interval containing `i` steps of `q` has at least one step
/// of `p` — computed by enumerating all intervals.
fn brute_q_timely_bound(steps: &[ProcId], p: ProcId, q: ProcId) -> u64 {
    let n = steps.len();
    let mut worst = 0u64; // max q-steps in a p-free interval
    for lo in 0..n {
        let mut qs = 0u64;
        for s in &steps[lo..] {
            if *s == p {
                break;
            }
            if *s == q {
                qs += 1;
            }
            worst = worst.max(qs);
        }
    }
    worst + 1
}

fn brute_timely_bound(steps: &[ProcId], p: ProcId) -> u64 {
    let n = steps.len();
    let mut worst = 0u64;
    for lo in 0..n {
        let mut len = 0u64;
        for s in &steps[lo..] {
            if *s == p {
                break;
            }
            len += 1;
            worst = worst.max(len);
        }
    }
    worst + 1
}

fn steps_strategy() -> impl Strategy<Value = Vec<ProcId>> {
    prop::collection::vec(0usize..4, 0..60).prop_map(|v| v.into_iter().map(ProcId).collect())
}

proptest! {
    #[test]
    fn q_timely_bound_matches_brute_force(steps in steps_strategy(), p in 0usize..4, q in 0usize..4) {
        prop_assume!(p != q);
        let fast = q_timely_bound(&steps, ProcId(p), ProcId(q));
        let brute = brute_q_timely_bound(&steps, ProcId(p), ProcId(q));
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn timely_bound_matches_brute_force(steps in steps_strategy(), p in 0usize..4) {
        let fast = timely_bound(&steps, ProcId(p));
        let brute = brute_timely_bound(&steps, ProcId(p));
        prop_assert_eq!(fast, brute);
    }

    /// Bounds are at least 1 and at most the trace length + 1.
    #[test]
    fn bounds_are_in_range(steps in steps_strategy(), p in 0usize..4) {
        let b = timely_bound(&steps, ProcId(p));
        prop_assert!(b >= 1);
        prop_assert!(b as usize <= steps.len() + 1);
    }

    /// A process that takes every step has bound exactly 1.
    #[test]
    fn solo_process_has_bound_one(len in 1usize..50) {
        let steps = vec![ProcId(2); len];
        prop_assert_eq!(timely_bound(&steps, ProcId(2)), 1);
    }

    /// Appending more steps of p never increases p's bound beyond the
    /// old bound plus nothing — monotonicity: the bound over a prefix is
    /// at most the bound over the full trace when the suffix is all-p.
    #[test]
    fn all_p_suffix_never_hurts(steps in steps_strategy(), p in 0usize..4, extra in 1usize..10) {
        let base = timely_bound(&steps, ProcId(p));
        let mut longer = steps.clone();
        longer.extend(std::iter::repeat_n(ProcId(p), extra));
        let b = timely_bound(&longer, ProcId(p));
        prop_assert!(b <= base, "suffix of p-steps increased the bound: {b} > {base}");
    }

    /// Windowed bounds never exceed the whole-trace bound + window edge
    /// effects are bounded by the window content itself.
    #[test]
    fn windowed_bounds_are_local(steps in steps_strategy(), p in 0usize..4, w in 1usize..6) {
        let bounds = windowed_bounds(&steps, ProcId(p), w);
        prop_assert_eq!(bounds.len(), if steps.is_empty() { w } else { steps.len().div_ceil(steps.len().div_ceil(w)) });
        for b in bounds {
            prop_assert!(b >= 1);
        }
    }
}
