//! Property tests: the temporal-predicate helpers against naive
//! step-function evaluations.

use proptest::prelude::*;
use tbwf_sim::analysis::{bounded_suffix, holds_from, increases_without_bound, value_at};

fn series_strategy() -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0u64..200, -5i64..6), 0..30).prop_map(|mut v| {
        v.sort_by_key(|(t, _)| *t);
        v.dedup_by_key(|(t, _)| *t);
        v
    })
}

proptest! {
    /// `holds_from` returns the start of the final true-streak: every
    /// observation at or after it satisfies the predicate, and the
    /// observation immediately before it (if any) does not.
    #[test]
    fn holds_from_is_final_streak(series in series_strategy(), threshold in -5i64..6) {
        let pred = |v: i64| v >= threshold;
        match holds_from(&series, pred) {
            Some(t0) => {
                for (t, v) in &series {
                    if *t >= t0 {
                        prop_assert!(pred(*v), "obs at {t} violates pred after {t0}");
                    }
                }
                let before: Vec<_> = series.iter().filter(|(t, _)| *t < t0).collect();
                if let Some((_, v)) = before.last() {
                    prop_assert!(!pred(*v), "streak should extend earlier");
                }
            }
            None => {
                if let Some((_, v)) = series.last() {
                    prop_assert!(!pred(*v));
                }
            }
        }
    }

    /// `value_at` agrees with a naive scan.
    #[test]
    fn value_at_matches_naive(series in series_strategy(), t in 0u64..220) {
        let naive = series.iter().rfind(|(ot, _)| *ot <= t).map(|(_, v)| *v);
        prop_assert_eq!(value_at(&series, t), naive);
    }

    /// A constant series is bounded at every fraction and never
    /// "increases without bound".
    #[test]
    fn constant_series_is_bounded(v in -5i64..6, times in prop::collection::btree_set(0u64..100, 1..10)) {
        let series: Vec<(u64, i64)> = times.into_iter().map(|t| (t, v)).collect();
        prop_assert!(bounded_suffix(&series, 100, 0.5));
        prop_assert!(!increases_without_bound(&series, 100, 4));
    }

    /// A strictly increasing dense series does increase without bound.
    #[test]
    fn linear_series_increases(n in 8u64..40) {
        let series: Vec<(u64, i64)> = (0..n).map(|i| (i * 100 / n, i as i64)).collect();
        prop_assert!(increases_without_bound(&series, 100, 4));
    }
}
