//! Measuring timeliness (Definitions 1 and 2 of the paper) from a trace.
//!
//! Timeliness is a property of *infinite* runs; on the finite prefixes the
//! simulator produces we report exact witness bounds over the prefix and
//! offer a windowed growth test to distinguish "bounded forever" from
//! "grows without bound" behaviors. Experiments additionally know their
//! schedule's *intended* timely set; tests cross-check the two.

use crate::ids::ProcId;

/// The minimal `i ≥ 1` such that, in this trace, every time interval
/// containing `i` steps of `q` has at least one step of `p` (Definition 1).
///
/// Boundary segments (before `p`'s first step and after its last) count:
/// an interval need not be bracketed by `p`-steps.
///
/// Returns `i = (max q-steps in any p-step-free segment) + 1`. If `q`
/// takes no steps the condition is vacuous and the bound is 1. Note that a
/// finite trace always yields *some* finite bound; use
/// [`windowed_bounds`] to detect growth.
pub fn q_timely_bound(steps: &[ProcId], p: ProcId, q: ProcId) -> u64 {
    let mut max_gap = 0u64;
    let mut gap = 0u64;
    for &s in steps {
        if s == p {
            max_gap = max_gap.max(gap);
            gap = 0;
        } else if s == q {
            gap += 1;
        }
    }
    max_gap = max_gap.max(gap);
    max_gap + 1
}

/// The minimal `i ≥ 1` such that every `i` consecutive process steps in the
/// trace contain at least one step of `p` (the characterization of *timely*
/// right after Definition 2).
///
/// ```
/// use tbwf_sim::{timeliness::timely_bound, ProcId};
///
/// // Round-robin over three processes: everyone has bound 3.
/// let steps: Vec<ProcId> = (0..9).map(|i| ProcId(i % 3)).collect();
/// assert_eq!(timely_bound(&steps, ProcId(1)), 3);
/// ```
pub fn timely_bound(steps: &[ProcId], p: ProcId) -> u64 {
    let mut max_gap = 0u64;
    let mut gap = 0u64;
    for &s in steps {
        if s == p {
            max_gap = max_gap.max(gap);
            gap = 0;
        } else {
            gap += 1;
        }
    }
    max_gap = max_gap.max(gap);
    max_gap + 1
}

/// [`timely_bound`] computed separately over `windows` equal slices of the
/// trace. A process whose bound grows from window to window is (evidence
/// of being) not timely; a process with a small stable bound is timely.
pub fn windowed_bounds(steps: &[ProcId], p: ProcId, windows: usize) -> Vec<u64> {
    assert!(windows >= 1);
    let len = steps.len();
    if len == 0 {
        return vec![1; windows];
    }
    let w = len.div_ceil(windows);
    steps.chunks(w).map(|c| timely_bound(c, p)).collect()
}

/// Heuristic verdict: is `p` timely in this (finite prefix of a) run?
///
/// `p` is judged timely iff its per-window bound does not grow: the bound
/// over the last window is at most `growth_factor ×` the bound over the
/// first window (and `p` takes at least one step in the last window).
/// With the schedules in [`crate::schedule`] this classifies correctly
/// for runs of a few thousand steps; it is a heuristic, not a proof.
pub fn is_timely_windowed(steps: &[ProcId], p: ProcId, windows: usize, growth_factor: f64) -> bool {
    let bounds = windowed_bounds(steps, p, windows);
    if bounds.is_empty() {
        return false;
    }
    let first = bounds[0] as f64;
    let last = *bounds.last().unwrap() as f64;
    let stepped_late = steps
        .iter()
        .rev()
        .take(steps.len().div_ceil(windows))
        .any(|&s| s == p);
    stepped_late && last <= first * growth_factor
}

/// The measured timely set of a run: every correct process judged timely
/// by [`is_timely_windowed`] with default parameters (4 windows, factor 2).
pub fn measured_timely_set(steps: &[ProcId], n: usize, crashed: &[ProcId]) -> Vec<ProcId> {
    (0..n)
        .map(ProcId)
        .filter(|p| !crashed.contains(p))
        .filter(|&p| is_timely_windowed(steps, p, 4, 2.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(ids: &[usize]) -> Vec<ProcId> {
        ids.iter().map(|&i| ProcId(i)).collect()
    }

    #[test]
    fn round_robin_bounds_are_n() {
        let steps = seq(&[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert_eq!(timely_bound(&steps, ProcId(0)), 3);
        assert_eq!(timely_bound(&steps, ProcId(2)), 3);
        // q-timely: between two p0 steps there is exactly one p1 step
        assert_eq!(q_timely_bound(&steps, ProcId(0), ProcId(1)), 2);
    }

    #[test]
    fn absent_process_has_large_bound() {
        let steps = seq(&[0, 1, 0, 1, 0, 1]);
        assert_eq!(timely_bound(&steps, ProcId(2)), 7);
        // vacuous: p2 takes no steps, so anyone is p2-timely with bound 1
        assert_eq!(q_timely_bound(&steps, ProcId(0), ProcId(2)), 1);
    }

    #[test]
    fn boundary_gaps_count() {
        // p0 steps only at the very start: the tail gap dominates.
        let steps = seq(&[0, 1, 1, 1, 1]);
        assert_eq!(timely_bound(&steps, ProcId(0)), 5);
    }

    #[test]
    fn solo_runner_is_timely() {
        let steps = seq(&[2; 100]);
        assert_eq!(timely_bound(&steps, ProcId(2)), 1);
        assert!(is_timely_windowed(&steps, ProcId(2), 4, 2.0));
    }

    #[test]
    fn growing_gaps_detected_as_not_timely() {
        // p1's silences double: 2, 4, 8, 16, ...
        let mut steps = Vec::new();
        let mut gap = 2usize;
        for _ in 0..7 {
            steps.push(ProcId(1));
            for _ in 0..gap {
                steps.push(ProcId(0));
            }
            gap *= 2;
        }
        assert!(!is_timely_windowed(&steps, ProcId(1), 4, 2.0));
        assert!(is_timely_windowed(&steps, ProcId(0), 4, 2.0));
    }

    #[test]
    fn measured_set_excludes_crashed() {
        let steps = seq(&[0, 1, 0, 1, 0, 1, 0, 1]);
        let set = measured_timely_set(&steps, 2, &[ProcId(1)]);
        assert_eq!(set, vec![ProcId(0)]);
    }

    #[test]
    fn windowed_bounds_shape() {
        let steps = seq(&[0, 1, 0, 1, 0, 1, 0, 1]);
        let b = windowed_bounds(&steps, ProcId(0), 4);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|&x| x <= 3));
    }
}
