//! The rendezvous turnstile that serializes task steps.
//!
//! Every task thread blocks on its own [`Gate`]. The scheduler *grants* one
//! step at a time: it flips the gate to `Go`, then waits until the task has
//! flipped it back to `Done` (one step executed) or `Exited` (task body
//! returned). Because the scheduler never has more than one grant
//! outstanding, at most one task thread is runnable at any instant and the
//! whole run is deterministic.

use crate::halt::{Halted, SimResult};
use parking_lot::{Condvar, Mutex};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum GateState {
    /// Task is blocked (or about to block) waiting for its next step.
    Done,
    /// Scheduler has granted a step; the task may run until its next tick.
    Go,
    /// The run is over; the task must unwind with [`Halted`].
    Halt,
    /// The task body returned; the thread is gone or about to be.
    Exited,
}

/// Outcome of granting one step to a task.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Grant {
    /// The task executed one step and is blocked again.
    StepDone,
    /// The task body returned during this step (or had already returned).
    TaskExited,
}

pub(crate) struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl Gate {
    pub(crate) fn new() -> Self {
        Gate {
            state: Mutex::new(GateState::Done),
            cv: Condvar::new(),
        }
    }

    /// Scheduler side: grant one step and wait for it to complete.
    pub(crate) fn grant(&self) -> Grant {
        let mut st = self.state.lock();
        if *st == GateState::Exited {
            return Grant::TaskExited;
        }
        debug_assert_eq!(*st, GateState::Done, "grant while task not parked");
        *st = GateState::Go;
        self.cv.notify_all();
        while *st != GateState::Done && *st != GateState::Exited {
            self.cv.wait(&mut st);
        }
        if *st == GateState::Exited {
            Grant::TaskExited
        } else {
            Grant::StepDone
        }
    }

    /// Task side: block until the first/next step is granted.
    ///
    /// Does *not* mark the previous step done; used once at task startup.
    pub(crate) fn wait_for_go(&self) -> SimResult<()> {
        let mut st = self.state.lock();
        while *st != GateState::Go && *st != GateState::Halt {
            self.cv.wait(&mut st);
        }
        if *st == GateState::Halt {
            Err(Halted)
        } else {
            Ok(())
        }
    }

    /// Task side: mark the current step done and block for the next grant.
    pub(crate) fn tick(&self) -> SimResult<()> {
        let mut st = self.state.lock();
        if *st == GateState::Halt {
            return Err(Halted);
        }
        debug_assert_eq!(*st, GateState::Go, "tick outside a granted step");
        *st = GateState::Done;
        self.cv.notify_all();
        while *st != GateState::Go && *st != GateState::Halt {
            self.cv.wait(&mut st);
        }
        if *st == GateState::Halt {
            Err(Halted)
        } else {
            Ok(())
        }
    }

    /// Task side: the body returned; release the scheduler if it is waiting.
    pub(crate) fn exit(&self) {
        let mut st = self.state.lock();
        *st = GateState::Exited;
        self.cv.notify_all();
    }

    /// Scheduler side: end the run; release the task with [`Halted`].
    pub(crate) fn halt(&self) {
        let mut st = self.state.lock();
        if *st != GateState::Exited {
            *st = GateState::Halt;
        }
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn grant_then_tick_round_trip() {
        let gate = Arc::new(Gate::new());
        let g2 = gate.clone();
        let h = thread::spawn(move || {
            g2.wait_for_go().unwrap();
            // step 1 work
            g2.tick().unwrap();
            // step 2 work
            g2.exit();
        });
        assert_eq!(gate.grant(), Grant::StepDone);
        assert_eq!(gate.grant(), Grant::TaskExited);
        h.join().unwrap();
    }

    #[test]
    fn halt_releases_blocked_task() {
        let gate = Arc::new(Gate::new());
        let g2 = gate.clone();
        let h = thread::spawn(move || {
            let r = g2.wait_for_go();
            g2.exit();
            r
        });
        gate.halt();
        assert_eq!(h.join().unwrap(), Err(Halted));
    }

    #[test]
    fn grant_after_exit_reports_exited() {
        let gate = Arc::new(Gate::new());
        gate.exit();
        assert_eq!(gate.grant(), Grant::TaskExited);
    }
}
