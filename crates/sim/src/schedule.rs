//! Schedules: the adversary that decides which process steps next.
//!
//! A schedule controls the *degree of partial synchrony* of a run. The
//! paper's timeliness notion (Definitions 1–2) is relative: `p` is timely
//! iff there is a bound `i` such that every `i` consecutive steps of the
//! system contain a step of `p`. The schedules below realize the regimes
//! studied in the paper:
//!
//! * [`RoundRobin`] — all correct processes timely with bound `n`;
//! * [`PartiallySynchronous`] — a designated *timely set* steps regularly
//!   while the rest step ever more rarely (growing gaps ⇒ not timely);
//! * [`Flicker`] — a process alternates bursts of activity and growing
//!   silences, the "flickering" behavior of Section 4;
//! * [`SoloAfter`] — obstruction-freedom's regime: one process eventually
//!   runs solo;
//! * [`SeededRandom`] / [`Weighted`] — randomized interleavings for
//!   property-based testing;
//! * [`Scripted`] — an explicit step sequence for adversarial
//!   counterexamples (e.g. the boosting-starvation run of E5);
//! * [`NemesisSchedule`] — a round-robin base whose timely set can be
//!   perturbed *mid-run* through a [`ScheduleCtl`] handle, which is how
//!   the nemesis (see the [`nemesis`](crate::nemesis) module) demotes and
//!   flickers processes.

use crate::ids::ProcId;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

/// What a schedule may inspect when choosing the next process.
#[derive(Debug)]
pub struct ScheduleView<'a> {
    /// Number of processes in the system.
    pub n: usize,
    /// `runnable[p]` is false if `p` crashed or all of its tasks returned.
    pub runnable: &'a [bool],
    /// Current global time.
    pub time: u64,
}

impl ScheduleView<'_> {
    /// First runnable process at or after `start` (wrapping), if any.
    pub fn next_runnable_from(&self, start: usize) -> Option<ProcId> {
        (0..self.n)
            .map(|k| (start + k) % self.n)
            .find(|&p| self.runnable[p])
            .map(ProcId)
    }

    /// Whether any process can still take a step.
    pub fn any_runnable(&self) -> bool {
        self.runnable.iter().any(|&r| r)
    }

    /// The runnable processes, in id order.
    pub fn runnable_set(&self) -> Vec<ProcId> {
        (0..self.n)
            .filter(|&p| self.runnable[p])
            .map(ProcId)
            .collect()
    }

    /// The runnable set as a bitmask: bit `p` is set iff `p` is runnable.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` (the model checker that consumes masks only
    /// explores small systems).
    pub fn runnable_mask(&self) -> u64 {
        assert!(self.n <= 64, "runnable_mask supports at most 64 processes");
        (0..self.n)
            .filter(|&p| self.runnable[p])
            .fold(0u64, |m, p| m | (1 << p))
    }
}

/// Decides which process takes the step at each time.
///
/// If the returned process is not runnable, the runner falls back to the
/// next runnable process in id order (so schedules may ignore crashes).
pub trait Schedule: Send {
    /// The process to step at time `view.time`.
    fn next(&mut self, view: &ScheduleView<'_>) -> ProcId;

    /// The set of processes this schedule *intends* to keep timely, if it
    /// has a designed ground truth. Used by experiments for labelling;
    /// tests always re-measure timeliness from the trace.
    fn intended_timely(&self, n: usize) -> Vec<ProcId> {
        (0..n).map(ProcId).collect()
    }
}

impl Schedule for Box<dyn Schedule> {
    fn next(&mut self, view: &ScheduleView<'_>) -> ProcId {
        (**self).next(view)
    }

    fn intended_timely(&self, n: usize) -> Vec<ProcId> {
        (**self).intended_timely(n)
    }
}

/// Every process steps in turn: the fully synchronous regime.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin schedule starting at process 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Schedule for RoundRobin {
    fn next(&mut self, view: &ScheduleView<'_>) -> ProcId {
        let p = view
            .next_runnable_from(self.cursor % view.n.max(1))
            .unwrap_or(ProcId(0));
        self.cursor = p.0 + 1;
        p
    }
}

/// A designated timely set steps round-robin; the remaining processes get
/// one step every `gap` rounds of the timely set — and if `growing_gaps`
/// is set, the gap doubles each time, so the slow processes are *not*
/// timely (no fixed bound exists).
#[derive(Clone, Debug)]
pub struct PartiallySynchronous {
    timely: Vec<ProcId>,
    timely_cursor: usize,
    slow_cursor: usize,
    growth: GapGrowth,
    current_gap: u64,
    since_slow: u64,
}

/// How the slow processes' step gaps evolve in [`PartiallySynchronous`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GapGrowth {
    /// Fixed gap: the slow processes are *still timely*, just with a large
    /// bound. Useful as a control.
    Constant,
    /// The gap grows by the given increment after every slow step: the
    /// slow processes are not timely, but their steps stay dense enough
    /// (quadratic times) for finite-window growth checks.
    Linear(u64),
    /// The gap doubles after every slow step: the slow processes are not
    /// timely and become extremely rare (exponential times).
    Doubling,
}

impl PartiallySynchronous {
    /// Creates a schedule in which exactly `timely` keeps a constant step
    /// cadence. `gap` is the initial number of timely steps between two
    /// consecutive slow-process steps; `growing_gaps` selects
    /// [`GapGrowth::Doubling`] (true) or [`GapGrowth::Constant`] (false).
    pub fn new(timely: Vec<ProcId>, gap: u64, growing_gaps: bool) -> Self {
        Self::with_growth(
            timely,
            gap,
            if growing_gaps {
                GapGrowth::Doubling
            } else {
                GapGrowth::Constant
            },
        )
    }

    /// Creates the schedule with an explicit gap-growth law.
    pub fn with_growth(timely: Vec<ProcId>, gap: u64, growth: GapGrowth) -> Self {
        assert!(!timely.is_empty(), "timely set must be non-empty");
        assert!(gap >= 1, "gap must be at least 1");
        PartiallySynchronous {
            timely,
            timely_cursor: 0,
            slow_cursor: 0,
            growth,
            current_gap: gap,
            since_slow: 0,
        }
    }
}

impl Schedule for PartiallySynchronous {
    fn next(&mut self, view: &ScheduleView<'_>) -> ProcId {
        let slow: Vec<ProcId> = (0..view.n)
            .map(ProcId)
            .filter(|p| !self.timely.contains(p))
            .collect();
        if !slow.is_empty() && self.since_slow >= self.current_gap {
            self.since_slow = 0;
            self.current_gap = match self.growth {
                GapGrowth::Constant => self.current_gap,
                GapGrowth::Linear(inc) => (self.current_gap + inc).min(1 << 40),
                GapGrowth::Doubling => (self.current_gap * 2).min(1 << 40),
            };
            let p = slow[self.slow_cursor % slow.len()];
            self.slow_cursor += 1;
            return p;
        }
        self.since_slow += 1;
        let p = self.timely[self.timely_cursor % self.timely.len()];
        self.timely_cursor += 1;
        p
    }

    fn intended_timely(&self, _n: usize) -> Vec<ProcId> {
        self.timely.clone()
    }
}

/// One process "flickers": it runs in bursts separated by growing
/// silences, so it is correct but not timely. Everyone else round-robins.
#[derive(Clone, Debug)]
pub struct Flicker {
    flickerer: ProcId,
    burst_len: u64,
    growth: GapGrowth,
    in_burst: bool,
    remaining: u64,
    quiet_len: u64,
    others_cursor: usize,
    /// Step counter used to interleave the flickerer's burst steps 1:1
    /// with the others' steps during a burst.
    parity: bool,
}

impl Flicker {
    /// Creates a flicker schedule: `flickerer` steps for `burst_len` of its
    /// own steps, then is silent while the others take `initial_quiet`
    /// steps, with the quiet period doubling after each burst.
    pub fn new(flickerer: ProcId, burst_len: u64, initial_quiet: u64) -> Self {
        Self::with_quiet_growth(flickerer, burst_len, initial_quiet, GapGrowth::Doubling)
    }

    /// Like [`Flicker::new`] with an explicit quiet-period growth law
    /// (any growing law keeps the flickerer non-timely; linear growth
    /// keeps its bursts dense enough for finite-trace convergence checks).
    pub fn with_quiet_growth(
        flickerer: ProcId,
        burst_len: u64,
        initial_quiet: u64,
        growth: GapGrowth,
    ) -> Self {
        Flicker {
            flickerer,
            burst_len,
            growth,
            in_burst: true,
            remaining: burst_len,
            quiet_len: initial_quiet,
            others_cursor: 0,
            parity: false,
        }
    }
}

impl Schedule for Flicker {
    fn next(&mut self, view: &ScheduleView<'_>) -> ProcId {
        let others: Vec<ProcId> = (0..view.n)
            .map(ProcId)
            .filter(|&p| p != self.flickerer)
            .collect();
        if self.in_burst {
            self.parity = !self.parity;
            if self.parity {
                self.remaining -= 1;
                if self.remaining == 0 {
                    self.in_burst = false;
                    self.remaining = self.quiet_len;
                    self.quiet_len = match self.growth {
                        GapGrowth::Constant => self.quiet_len,
                        GapGrowth::Linear(inc) => (self.quiet_len + inc).min(1 << 40),
                        GapGrowth::Doubling => (self.quiet_len * 2).min(1 << 40),
                    };
                }
                return self.flickerer;
            }
        } else {
            self.remaining -= 1;
            if self.remaining == 0 {
                self.in_burst = true;
                self.remaining = self.burst_len;
            }
        }
        let p = others[self.others_cursor % others.len()];
        self.others_cursor += 1;
        p
    }

    fn intended_timely(&self, n: usize) -> Vec<ProcId> {
        (0..n)
            .map(ProcId)
            .filter(|&p| p != self.flickerer)
            .collect()
    }
}

/// Round-robin until `t0`, then only `solo` steps: the obstruction-freedom
/// regime ("there is a time after which some process runs solo").
#[derive(Clone, Debug)]
pub struct SoloAfter {
    t0: u64,
    solo: ProcId,
    rr: RoundRobin,
}

impl SoloAfter {
    /// Creates the schedule; `solo` runs alone from time `t0` on.
    pub fn new(t0: u64, solo: ProcId) -> Self {
        SoloAfter {
            t0,
            solo,
            rr: RoundRobin::new(),
        }
    }
}

impl Schedule for SoloAfter {
    fn next(&mut self, view: &ScheduleView<'_>) -> ProcId {
        if view.time >= self.t0 {
            self.solo
        } else {
            self.rr.next(view)
        }
    }

    fn intended_timely(&self, _n: usize) -> Vec<ProcId> {
        vec![self.solo]
    }
}

/// Uniformly random runnable process, seeded for reproducibility.
#[derive(Debug)]
pub struct SeededRandom {
    rng: StdRng,
}

impl SeededRandom {
    /// Creates the schedule from a seed.
    pub fn new(seed: u64) -> Self {
        SeededRandom {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Schedule for SeededRandom {
    fn next(&mut self, view: &ScheduleView<'_>) -> ProcId {
        let start = self.rng.random_range(0..view.n);
        view.next_runnable_from(start).unwrap_or(ProcId(0))
    }
}

/// Random process with per-process weights; heavy processes are (very
/// likely) timely, near-zero-weight processes are starved for long
/// stretches.
#[derive(Debug)]
pub struct Weighted {
    weights: Vec<f64>,
    rng: StdRng,
}

impl Weighted {
    /// Creates the schedule. `weights[p]` is proportional to the step rate
    /// of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or contains a negative or non-finite
    /// weight, or if all weights are zero.
    pub fn new(weights: Vec<f64>, seed: u64) -> Self {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|w| w.is_finite() && *w >= 0.0));
        assert!(weights.iter().sum::<f64>() > 0.0);
        Weighted {
            weights,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Schedule for Weighted {
    fn next(&mut self, view: &ScheduleView<'_>) -> ProcId {
        let total: f64 = (0..view.n)
            .filter(|&p| view.runnable[p])
            .map(|p| self.weights.get(p).copied().unwrap_or(0.0))
            .sum();
        if total <= 0.0 {
            return view.next_runnable_from(0).unwrap_or(ProcId(0));
        }
        let mut x = self.rng.random_range(0.0..total);
        for p in 0..view.n {
            if !view.runnable[p] {
                continue;
            }
            let w = self.weights.get(p).copied().unwrap_or(0.0);
            if x < w {
                return ProcId(p);
            }
            x -= w;
        }
        view.next_runnable_from(0).unwrap_or(ProcId(0))
    }
}

/// An explicit step script, repeated cyclically once exhausted.
#[derive(Clone, Debug)]
pub struct Scripted {
    script: Vec<ProcId>,
    cursor: usize,
}

impl Scripted {
    /// Creates the schedule from a non-empty step script.
    ///
    /// # Panics
    ///
    /// Panics if `script` is empty.
    pub fn new(script: Vec<ProcId>) -> Self {
        assert!(!script.is_empty(), "script must be non-empty");
        Scripted { script, cursor: 0 }
    }
}

impl Schedule for Scripted {
    fn next(&mut self, _view: &ScheduleView<'_>) -> ProcId {
        let p = self.script[self.cursor % self.script.len()];
        self.cursor += 1;
        p
    }
}

/// One recorded scheduler decision point: the time, what was runnable,
/// and which process the schedule chose (before any runner fallback).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Global time of the decision.
    pub time: u64,
    /// Runnable set at the decision, as a [`ScheduleView::runnable_mask`].
    pub runnable: u64,
    /// The process the schedule returned.
    pub chosen: ProcId,
}

/// Shared log of scheduler decision points, filled by [`Tapped`].
///
/// This is the model checker's *validation tap*: the checker predicts the
/// runnable set at every decision slot of its enumerated window
/// analytically, and after the run asserts the prediction against what
/// the engine actually saw. Cloning yields another handle to the same
/// log.
#[derive(Clone, Default)]
pub struct DecisionLog {
    inner: Arc<Mutex<Vec<Decision>>>,
}

impl DecisionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no decision has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Copies out all recorded decisions, in decision order.
    pub fn snapshot(&self) -> Vec<Decision> {
        self.inner.lock().clone()
    }

    fn push(&self, d: Decision) {
        self.inner.lock().push(d);
    }
}

/// Wraps a schedule and records every decision point into a
/// [`DecisionLog`] — the decision-point hook of the model checker.
///
/// The wrapper is transparent: it delegates `next` to the inner schedule
/// and records `(time, runnable mask, chosen)` on the way out, so a
/// tapped run is step-for-step identical to an untapped one.
pub struct Tapped<S> {
    inner: S,
    log: DecisionLog,
}

impl<S> Tapped<S> {
    /// Wraps `inner`, recording its decisions into `log`.
    pub fn new(inner: S, log: DecisionLog) -> Self {
        Tapped { inner, log }
    }
}

impl<S: Schedule> Schedule for Tapped<S> {
    fn next(&mut self, view: &ScheduleView<'_>) -> ProcId {
        let p = self.inner.next(view);
        self.log.push(Decision {
            time: view.time,
            runnable: view.runnable_mask(),
            chosen: p,
        });
        p
    }

    fn intended_timely(&self, n: usize) -> Vec<ProcId> {
        self.inner.intended_timely(n)
    }
}

/// Plays an explicit script over a window of decision slots and delegates
/// to an inner schedule everywhere else.
///
/// At times `start ≤ t < start + script.len()` the decision is
/// `script[t - start]`; before and after the window the inner schedule
/// decides. This is how the model checker splices one enumerated decision
/// window into an otherwise deterministic background schedule: the system
/// warms up under `inner`, the window perturbs it, and the effects unfold
/// under `inner` again until the horizon.
pub struct ScriptedWindow<S> {
    start: u64,
    script: Vec<ProcId>,
    inner: S,
}

impl<S> ScriptedWindow<S> {
    /// Creates the schedule; the window covers
    /// `[start, start + script.len())`.
    ///
    /// # Panics
    ///
    /// Panics if `script` is empty.
    pub fn new(start: u64, script: Vec<ProcId>, inner: S) -> Self {
        assert!(!script.is_empty(), "window script must be non-empty");
        ScriptedWindow {
            start,
            script,
            inner,
        }
    }
}

impl<S: Schedule> Schedule for ScriptedWindow<S> {
    fn next(&mut self, view: &ScheduleView<'_>) -> ProcId {
        match view.time.checked_sub(self.start) {
            Some(k) if (k as usize) < self.script.len() => self.script[k as usize],
            _ => self.inner.next(view),
        }
    }

    fn intended_timely(&self, n: usize) -> Vec<ProcId> {
        self.inner.intended_timely(n)
    }
}

#[derive(Default)]
struct CtlState {
    demoted: BTreeSet<usize>,
    flickering: BTreeSet<usize>,
}

/// Shared control handle of a [`NemesisSchedule`].
///
/// Cloning yields another handle to the same state; the nemesis holds
/// one clone and mutates it mid-run while the runner drives the schedule
/// through the other. All mutations happen at the runner's fixed poll
/// points, so they are deterministic.
#[derive(Clone, Default)]
pub struct ScheduleCtl {
    inner: Arc<Mutex<CtlState>>,
}

impl ScheduleCtl {
    /// Creates a control handle with no perturbations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes `p` from the timely set: its step gaps start doubling, so
    /// it stays correct but stops being timely.
    pub fn demote(&self, p: ProcId) {
        self.inner.lock().demoted.insert(p.0);
    }

    /// Undoes [`ScheduleCtl::demote`]: `p` rejoins the round-robin.
    pub fn promote(&self, p: ProcId) {
        self.inner.lock().demoted.remove(&p.0);
    }

    /// Starts flickering `p`: bursts of regular steps separated by
    /// silences that double in length.
    pub fn flicker_start(&self, p: ProcId) {
        self.inner.lock().flickering.insert(p.0);
    }

    /// Stops flickering `p`.
    pub fn flicker_stop(&self, p: ProcId) {
        self.inner.lock().flickering.remove(&p.0);
    }

    /// Snapshot of the currently perturbed (demoted or flickering)
    /// processes.
    pub fn perturbed(&self) -> Vec<ProcId> {
        let st = self.inner.lock();
        st.demoted
            .iter()
            .chain(st.flickering.iter())
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .map(ProcId)
            .collect()
    }
}

/// Per-process pacing state of a demoted process.
#[derive(Clone, Copy, Default)]
struct SlowState {
    active: bool,
    next_due: u64,
    gap: u64,
}

/// Per-process burst/silence state of a flickering process.
#[derive(Clone, Copy, Default)]
struct FlickState {
    active: bool,
    on: bool,
    until: u64,
    quiet: u64,
}

/// Round-robin over a timely set that a [`ScheduleCtl`] can shrink and
/// grow mid-run.
///
/// Processes start timely. A *demoted* process receives steps at times
/// with doubling gaps (correct, not timely); a *flickering* process
/// alternates bursts of round-robin participation with silences that
/// double in length. Everyone else round-robins. The schedule is a pure
/// state machine over `(time, ctl state)`, so runs remain deterministic.
pub struct NemesisSchedule {
    ctl: ScheduleCtl,
    cursor: usize,
    slow: Vec<SlowState>,
    flick: Vec<FlickState>,
}

/// Initial gap of a freshly demoted process (doubles from there).
const DEMOTE_GAP0: u64 = 8;
/// Length of a flicker burst, in global steps.
const FLICKER_BURST: u64 = 32;
/// Initial flicker silence (doubles after each burst).
const FLICKER_QUIET0: u64 = 64;

impl NemesisSchedule {
    /// Creates the schedule; mutate its timely set through `ctl`.
    pub fn new(ctl: ScheduleCtl) -> Self {
        NemesisSchedule {
            ctl,
            cursor: 0,
            slow: Vec::new(),
            flick: Vec::new(),
        }
    }

    fn sync(&mut self, n: usize, t: u64) {
        self.slow.resize(n, SlowState::default());
        self.flick.resize(n, FlickState::default());
        let st = self.ctl.inner.lock();
        for p in 0..n {
            let demoted = st.demoted.contains(&p);
            if demoted && !self.slow[p].active {
                self.slow[p] = SlowState {
                    active: true,
                    next_due: t + DEMOTE_GAP0,
                    gap: DEMOTE_GAP0,
                };
            } else if !demoted {
                self.slow[p].active = false;
            }
            let flickering = st.flickering.contains(&p);
            if flickering && !self.flick[p].active {
                self.flick[p] = FlickState {
                    active: true,
                    on: true,
                    until: t + FLICKER_BURST,
                    quiet: FLICKER_QUIET0,
                };
            } else if !flickering {
                self.flick[p].active = false;
            }
            let f = &mut self.flick[p];
            if f.active && t >= f.until {
                if f.on {
                    f.on = false;
                    f.until = t + f.quiet;
                    f.quiet = (f.quiet * 2).min(1 << 40);
                } else {
                    f.on = true;
                    f.until = t + FLICKER_BURST;
                }
            }
        }
    }
}

impl Schedule for NemesisSchedule {
    fn next(&mut self, view: &ScheduleView<'_>) -> ProcId {
        let (n, t) = (view.n, view.time);
        self.sync(n, t);
        // A demoted process whose gap has elapsed takes priority: it must
        // keep stepping (it is correct!), just ever more rarely.
        for p in 0..n {
            let s = &mut self.slow[p];
            if s.active && view.runnable[p] && t >= s.next_due {
                s.gap = (s.gap * 2).min(1 << 40);
                s.next_due = t + s.gap;
                return ProcId(p);
            }
        }
        // Round-robin over the unperturbed (and currently-bursting) rest.
        for k in 0..n {
            let p = (self.cursor + k) % n;
            let eligible = view.runnable[p]
                && !self.slow[p].active
                && (!self.flick[p].active || self.flick[p].on);
            if eligible {
                self.cursor = p + 1;
                return ProcId(p);
            }
        }
        // Everyone is perturbed or blocked: fall back to any runnable
        // process so the run never stalls.
        view.next_runnable_from(self.cursor % n.max(1))
            .unwrap_or(ProcId(0))
    }

    fn intended_timely(&self, n: usize) -> Vec<ProcId> {
        let perturbed = self.ctl.perturbed();
        (0..n)
            .map(ProcId)
            .filter(|p| !perturbed.contains(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(runnable: &'a [bool], time: u64) -> ScheduleView<'a> {
        ScheduleView {
            n: runnable.len(),
            runnable,
            time,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobin::new();
        let r = [true, true, true];
        let seq: Vec<usize> = (0..6).map(|t| s.next(&view(&r, t)).0).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_crashed() {
        let mut s = RoundRobin::new();
        let r = [true, false, true];
        let seq: Vec<usize> = (0..4).map(|t| s.next(&view(&r, t)).0).collect();
        assert_eq!(seq, vec![0, 2, 0, 2]);
    }

    #[test]
    fn partially_synchronous_growing_gaps() {
        let mut s = PartiallySynchronous::new(vec![ProcId(0), ProcId(1)], 2, true);
        let r = [true, true, true];
        let mut slow_times = Vec::new();
        for t in 0..200 {
            if s.next(&view(&r, t)) == ProcId(2) {
                slow_times.push(t);
            }
        }
        assert!(slow_times.len() >= 3);
        // gaps between slow steps must grow
        let gaps: Vec<u64> = slow_times.windows(2).map(|w| w[1] - w[0]).collect();
        for w in gaps.windows(2) {
            assert!(w[1] > w[0], "gaps must grow: {gaps:?}");
        }
    }

    #[test]
    fn solo_after_switches() {
        let mut s = SoloAfter::new(4, ProcId(2));
        let r = [true, true, true];
        let seq: Vec<usize> = (0..8).map(|t| s.next(&view(&r, t)).0).collect();
        assert_eq!(&seq[4..], &[2, 2, 2, 2]);
    }

    #[test]
    fn scripted_repeats() {
        let mut s = Scripted::new(vec![ProcId(1), ProcId(0)]);
        let r = [true, true];
        let seq: Vec<usize> = (0..5).map(|t| s.next(&view(&r, t)).0).collect();
        assert_eq!(seq, vec![1, 0, 1, 0, 1]);
    }

    #[test]
    fn runnable_set_and_mask() {
        let v = view(&[true, false, true], 0);
        assert_eq!(v.runnable_set(), vec![ProcId(0), ProcId(2)]);
        assert_eq!(v.runnable_mask(), 0b101);
        let none = view(&[false, false], 0);
        assert!(none.runnable_set().is_empty());
        assert_eq!(none.runnable_mask(), 0);
    }

    #[test]
    fn scripted_exhausted_mid_run_repeats_cyclically() {
        // The decision list is shorter than the run: once exhausted it
        // wraps, so a k-entry script denotes the infinite periodic
        // schedule, which is what shrunk repro scripts replay under.
        let mut s = Scripted::new(vec![ProcId(2), ProcId(0), ProcId(1)]);
        let r = [true, true, true];
        let seq: Vec<usize> = (0..8).map(|t| s.next(&view(&r, t)).0).collect();
        assert_eq!(seq, vec![2, 0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn scripted_ignores_runnability() {
        // `Scripted` returns the scripted id even when that process is
        // not runnable; the *runner* applies the id-order fallback (see
        // the runner test `scripted_nonrunnable_decision_falls_back`).
        let mut s = Scripted::new(vec![ProcId(1)]);
        let r = [true, false];
        assert_eq!(s.next(&view(&r, 0)), ProcId(1));
    }

    #[test]
    fn tapped_records_decisions_transparently() {
        let log = DecisionLog::new();
        let mut tapped = Tapped::new(RoundRobin::new(), log.clone());
        let mut plain = RoundRobin::new();
        let r = [true, false, true];
        for t in 0..4 {
            assert_eq!(tapped.next(&view(&r, t)), plain.next(&view(&r, t)));
        }
        let ds = log.snapshot();
        assert_eq!(ds.len(), 4);
        assert_eq!(
            ds[0],
            Decision {
                time: 0,
                runnable: 0b101,
                chosen: ProcId(0),
            }
        );
        assert_eq!(ds[1].chosen, ProcId(2));
        assert!(ds.iter().all(|d| d.runnable == 0b101));
    }

    #[test]
    fn scripted_window_splices_into_inner() {
        let mut s = ScriptedWindow::new(3, vec![ProcId(2), ProcId(2)], RoundRobin::new());
        let r = [true, true, true];
        let seq: Vec<usize> = (0..8).map(|t| s.next(&view(&r, t)).0).collect();
        // Round-robin before the window, the script inside it, and the
        // inner schedule resuming where it left off after it.
        assert_eq!(&seq[..3], &[0, 1, 2]);
        assert_eq!(&seq[3..5], &[2, 2]);
        assert_eq!(&seq[5..], &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "window script must be non-empty")]
    fn scripted_window_rejects_empty_script() {
        let _ = ScriptedWindow::new(0, Vec::new(), RoundRobin::new());
    }

    #[test]
    fn seeded_random_is_deterministic() {
        let r = [true, true, true, true];
        let run = |seed| {
            let mut s = SeededRandom::new(seed);
            (0..50).map(|t| s.next(&view(&r, t)).0).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn weighted_prefers_heavy() {
        let mut s = Weighted::new(vec![100.0, 1.0], 42);
        let r = [true, true];
        let heavy = (0..1000)
            .filter(|&t| s.next(&view(&r, t)) == ProcId(0))
            .count();
        assert!(heavy > 900, "heavy process took {heavy}/1000 steps");
    }

    #[test]
    fn nemesis_schedule_round_robins_unperturbed() {
        let mut s = NemesisSchedule::new(ScheduleCtl::new());
        let r = [true, true, true];
        let seq: Vec<usize> = (0..6).map(|t| s.next(&view(&r, t)).0).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn demoted_process_gets_growing_gaps() {
        let ctl = ScheduleCtl::new();
        let mut s = NemesisSchedule::new(ctl.clone());
        ctl.demote(ProcId(2));
        let r = [true, true, true];
        let mut slow_times = Vec::new();
        for t in 0..2000 {
            if s.next(&view(&r, t)) == ProcId(2) {
                slow_times.push(t);
            }
        }
        assert!(
            slow_times.len() >= 4,
            "demoted process starved: {slow_times:?}"
        );
        let gaps: Vec<u64> = slow_times.windows(2).map(|w| w[1] - w[0]).collect();
        for w in gaps.windows(2) {
            assert!(w[1] > w[0], "gaps must grow: {gaps:?}");
        }
        assert_eq!(s.intended_timely(3), vec![ProcId(0), ProcId(1)]);
    }

    #[test]
    fn promote_restores_regular_steps() {
        let ctl = ScheduleCtl::new();
        let mut s = NemesisSchedule::new(ctl.clone());
        ctl.demote(ProcId(1));
        let r = [true, true];
        for t in 0..500 {
            s.next(&view(&r, t));
        }
        ctl.promote(ProcId(1));
        let late: Vec<usize> = (500..520).map(|t| s.next(&view(&r, t)).0).collect();
        let ones = late.iter().filter(|&&p| p == 1).count();
        assert!(ones >= 8, "promoted process still starved: {late:?}");
    }

    #[test]
    fn flickering_process_has_growing_silences() {
        let ctl = ScheduleCtl::new();
        let mut s = NemesisSchedule::new(ctl.clone());
        ctl.flicker_start(ProcId(0));
        let r = [true, true];
        let mut times = Vec::new();
        for t in 0..4000 {
            if s.next(&view(&r, t)) == ProcId(0) {
                times.push(t);
            }
        }
        assert!(times.len() > 10);
        let gap = |ts: &[u64]| ts.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        let mid = times.len() / 2;
        assert!(gap(&times[mid..]) > gap(&times[..mid.max(2)]));
    }

    #[test]
    fn flicker_has_growing_silences() {
        let mut s = Flicker::new(ProcId(0), 3, 4);
        let r = [true, true, true];
        let mut times = Vec::new();
        for t in 0..500 {
            if s.next(&view(&r, t)) == ProcId(0) {
                times.push(t);
            }
        }
        // find the largest gap in the first half vs second half: must grow
        let gap = |ts: &[u64]| ts.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        let mid = times.len() / 2;
        assert!(gap(&times[mid..]) > gap(&times[..mid.max(2)]));
    }
}
