//! A minimal JSON value type with a writer and a parser.
//!
//! The workspace has no serialization dependency, but the nemesis layer
//! (fault plans, repro artifacts) needs a self-contained on-disk format
//! that other tools can read. This module implements exactly the subset
//! of JSON we emit: objects, arrays, strings, booleans, `null`, and
//! numbers. Integers are kept as `i128` so that `u64` seeds round-trip
//! exactly; anything with a fraction or exponent becomes an `f64`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (wide enough to hold any `u64` or `i64` exactly).
    Int(i128),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// The string if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Serializes the value compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes the value with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_float(out, *f),
            Json::Str(s) => write_string(out, s),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(xs) if !xs.is_empty() => {
                out.push_str("[\n");
                for (i, x) in xs.iter().enumerate() {
                    pad(out, depth + 1);
                    x.write_pretty(out, depth + 1);
                    if i + 1 < xs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a JSON document. Returns an error message with a byte
    /// offset on malformed input.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Guarantee a distinguishable float form (Rust prints integral
        // floats as e.g. "2" otherwise, which would parse back as Int).
        if f == f.trunc() && f.abs() < 1e15 {
            let _ = write!(out, "{f:.1}");
        } else {
            let _ = write!(out, "{f}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let val = parse_value(bytes, pos)?;
                pairs.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut s = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is valid UTF-8: it
                // came in as &str).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                s.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap());
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number {text:?}"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| format!("invalid integer {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj([
            ("seed", Json::Int(u64::MAX as i128)),
            ("name", Json::str("gauntlet \"run\"\n")),
            (
                "events",
                Json::Arr(vec![
                    Json::obj([("at", Json::Int(10)), ("crash", Json::Int(2))]),
                    Json::Null,
                    Json::Bool(true),
                    Json::Float(0.25),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let doc = Json::Int(0xDEAD_BEEF_CAFE_F00D_u64 as i128);
        let back = Json::parse(&doc.to_string_compact()).unwrap();
        assert_eq!(back.as_u64(), Some(0xDEAD_BEEF_CAFE_F00D));
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = Json::Float(2.0).to_string_compact();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(2.0));
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": [1, -2], "b": "x", "c": false}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[1].as_i64(),
            Some(-2)
        );
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("c").unwrap().as_bool(), Some(false));
        assert!(doc.get("d").is_none());
        assert_eq!(doc.get("a").unwrap().get("x"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let s = Json::Str("\u{1}".to_string());
        let text = s.to_string_compact();
        assert_eq!(text, "\"\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), s);
    }
}
