//! The poll-driven step engine: tasks as explicit state machines.
//!
//! The original execution backend runs every task on its own OS thread
//! behind a rendezvous turnstile ([`gate`](crate::Sim)) — two condvar
//! handoffs per simulated step. A [`Stepper`] instead *is* the step: the
//! scheduler calls [`Stepper::step`] directly, so granting a step is a
//! plain (devirtualizable) function call with zero thread traffic. One
//! `step()` call corresponds exactly to the code a blocking task would
//! execute between two consecutive `Env::tick` calls.
//!
//! Both backends coexist in one run and are **step-for-step
//! equivalent**: a blocking closure consumes the step at `tick()`; a
//! stepper consumes it by returning [`Control::Yield`]. Returning
//! [`Control::Done`] corresponds to the closure returning `Ok(())` — the
//! final segment runs but is *not* counted as a step, and the process's
//! next task is tried in the same time slot (exactly the thread
//! backend's `TaskExited` semantics). Because simulated register
//! operations expose an invoke/complete pair from which the blocking
//! forms are derived (see `tbwf-registers`), the tick positions of a
//! ported algorithm are identical by construction on both backends, and
//! a run remains a deterministic function of `(program, schedule,
//! seed)`.

use crate::env::{CrashFlags, Env};
use crate::halt::SimResult;
use crate::ids::ProcId;
use crate::trace::ObsBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a [`Stepper`] tells the scheduler after executing one segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Control {
    /// The segment consumed this step; call `step` again when the
    /// process is next scheduled.
    Yield,
    /// The task is finished (the blocking analogue returned `Ok(())`).
    /// The segment that returned `Done` is *not* counted as a step.
    Done,
}

/// A task written as an explicit state machine, driven by the scheduler.
///
/// Each `step` call runs one *segment*: the code a blocking task would
/// execute between two consecutive `tick`s. Within a segment no other
/// task runs, so process-local state cannot change mid-segment. Register
/// operations must straddle segments via their invoke/complete pair:
/// invoke at the end of one segment, complete at the start of the next —
/// this is what gives operations their two-step (invocation/response)
/// extent in the paper's model.
pub trait Stepper: Send {
    /// Executes one segment. See the trait docs for the contract.
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control;
}

/// The environment handed to [`Stepper::step`].
///
/// A thin view over the backing [`Env`] that forwards `now`/`pid`/
/// `observe` but *panics on `tick`*: a stepper consumes steps by
/// yielding, never by blocking, and the panic catches accidental calls
/// to blocking register operations from stepper code on either backend.
pub struct StepCtx<'a> {
    env: &'a dyn Env,
}

impl<'a> StepCtx<'a> {
    /// Wraps a backing environment for the duration of one (or more)
    /// segments.
    pub fn new(env: &'a dyn Env) -> Self {
        StepCtx { env }
    }

    /// Current global time.
    pub fn now(&self) -> u64 {
        self.env.now()
    }

    /// The process this task belongs to.
    pub fn pid(&self) -> ProcId {
        self.env.pid()
    }

    /// Records an observation (see [`Env::observe`]).
    pub fn observe(&self, key: &'static str, idx: u32, value: i64) {
        self.env.observe(key, idx, value);
    }

    /// The context as an [`Env`], for register invoke/complete calls
    /// (which accept `&dyn Env`). `tick` on the returned env panics.
    pub fn env(&self) -> &dyn Env {
        self
    }
}

impl Env for StepCtx<'_> {
    fn tick(&self) -> SimResult<()> {
        panic!(
            "Env::tick called from stepper code: a Stepper must return \
             Control::Yield to consume a step (blocking register \
             operations are not available inside a Stepper — use the \
             invoke/complete pair)"
        );
    }

    fn now(&self) -> u64 {
        self.env.now()
    }

    fn pid(&self) -> ProcId {
        self.env.pid()
    }

    fn observe(&self, key: &'static str, idx: u32, value: i64) {
        self.env.observe(key, idx, value);
    }

    fn is_crashed(&self, p: ProcId) -> bool {
        self.env.is_crashed(p)
    }
}

/// The runner-internal backing env of a native (poll-driven) stepper
/// task: shares the run's clock and writes observations into the task's
/// buffer. `tick` panics — the scheduler never grants a blocking step to
/// a stepper.
pub(crate) struct StepEnv {
    pub(crate) pid: ProcId,
    pub(crate) clock: Arc<AtomicU64>,
    pub(crate) obs: ObsBuf,
    pub(crate) crashed: Arc<CrashFlags>,
}

impl Env for StepEnv {
    fn tick(&self) -> SimResult<()> {
        panic!(
            "Env::tick called from stepper code: a Stepper must return \
             Control::Yield to consume a step (blocking register \
             operations are not available inside a Stepper — use the \
             invoke/complete pair)"
        );
    }

    fn now(&self) -> u64 {
        // Relaxed: the runner stores the clock on this same thread just
        // before polling the stepper; there is no cross-thread read.
        self.clock.load(Ordering::Relaxed)
    }

    fn pid(&self) -> ProcId {
        self.pid
    }

    fn observe(&self, key: &'static str, idx: u32, value: i64) {
        self.obs.record(self.now(), self.pid, key, idx, value);
    }

    fn is_crashed(&self, p: ProcId) -> bool {
        self.crashed.get(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::FreeRunEnv;

    #[test]
    fn ctx_forwards_now_pid_observe() {
        let env = FreeRunEnv::new(ProcId(4));
        env.tick().unwrap();
        let ctx = StepCtx::new(&env);
        assert_eq!(ctx.now(), 1);
        assert_eq!(ctx.pid(), ProcId(4));
        ctx.observe("k", 2, 9);
        let obs = env.take_obs();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].idx, 2);
    }

    #[test]
    #[should_panic(expected = "must return Control::Yield")]
    fn ctx_tick_panics() {
        let env = FreeRunEnv::new(ProcId(0));
        let ctx = StepCtx::new(&env);
        let _ = ctx.env().tick();
    }
}
