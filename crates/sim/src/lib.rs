//! Deterministic partial-synchrony shared-memory simulator.
//!
//! This crate is the substrate for the reproduction of *"Timeliness-Based
//! Wait-Freedom: A Gracefully Degrading Progress Condition"* (Aguilera &
//! Toueg, PODC 2008). It implements the computational model of Section 3 of
//! the paper:
//!
//! * a system of `n ≥ 2` **processes** `Π = {0, …, n−1}`;
//! * each process is composed of one or more **tasks** (the paper composes
//!   several modules — e.g. the main Ω∆ loop plus one activity-monitor loop
//!   per peer — into a single automaton; we model the composition by
//!   rotating the process's steps round-robin across its tasks);
//! * a global, discrete notion of **time**: at most one step per time unit,
//!   steps are instantaneous;
//! * a **schedule** (the adversary) that decides which process takes the
//!   next step, subject to crashes;
//! * a **trace** of every step and every observed local output variable,
//!   from which *timeliness* (Definitions 1 and 2 of the paper) is
//!   *measured*, never assumed.
//!
//! # The step engine
//!
//! Tasks run on one of two interchangeable backends:
//!
//! * **Steppers** (the fast path): a task is an explicit state machine
//!   implementing [`Stepper`]; the scheduler *polls* it by calling
//!   [`Stepper::step`] directly. Granting a step is a plain function
//!   call — no threads, no locks, no condvar traffic.
//! * **Blocking closures** (the compatibility path): a task is an
//!   ordinary blocking Rust closure consuming steps via [`Env::tick`].
//!   Each such task runs on its own OS thread behind a rendezvous gate
//!   that admits exactly one step at a time.
//!
//! Both kinds coexist within one run (even within one process) and are
//! step-for-step equivalent: one `step()` call runs exactly the code a
//! blocking task would run between two consecutive `tick`s, and
//! [`Control::Yield`] consumes the step exactly where the `tick` would.
//! Since blocking register operations are derived from their
//! invoke/complete pairs (see `tbwf-registers`), the step positions of an
//! algorithm agree on both backends by construction, and every run is a
//! deterministic function of `(program, schedule, seed)` regardless of
//! which backend hosts which task. The [`step`] module documents the
//! contract in detail.
//!
//! # Fault injection
//!
//! Beyond the static crash plan of [`RunConfig`], a run can carry a
//! [`Nemesis`]: a deterministic, trace-aware fault injector. Its
//! [`FaultPlan`] crashes processes when a predicate over the trace fires
//! ("crash the current leader", "crash between invoke and complete"),
//! flips registered switches (candidacy churn), turns registered dials
//! (register fault bursts), and perturbs the timely set of a
//! [`NemesisSchedule`] mid-run. The [`nemesis`] module documents the
//! admissible fault model; repro artifacts serialize through [`json`].
//!
//! # Example
//!
//! ```
//! use tbwf_sim::{SimBuilder, RunConfig, schedule::RoundRobin, Env};
//!
//! let mut b = SimBuilder::new();
//! for p in 0..3 {
//!     let pid = b.add_process(&format!("p{p}"));
//!     b.add_task(pid, "main", move |env| {
//!         for i in 0..10 {
//!             env.observe("i", 0, i);
//!             env.tick()?;
//!         }
//!         Ok(())
//!     });
//! }
//! let report = b.build().run(RunConfig::new(1_000, RoundRobin::new()));
//! assert_eq!(report.trace.obs_series(tbwf_sim::ProcId(0), "i", 0).len(), 10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
mod env;
pub mod executor;
mod gate;
mod halt;
mod ids;
pub mod json;
mod local;
pub mod nemesis;
mod runner;
pub mod schedule;
mod spawner;
pub mod step;
pub mod timeliness;
pub mod trace;

pub use env::{CrashFlags, Env, FreeRunEnv, TaskEnv};
pub use executor::{resolve_jobs, Executor};
pub use halt::{Halted, SimResult};
pub use ids::{ProcId, TaskId};
pub use json::Json;
pub use local::{Local, LocalVec};
pub use nemesis::{FaultAction, FaultEvent, FaultPlan, FaultTarget, Nemesis, Trigger};
pub use runner::{ProcReport, RunConfig, RunReport, Sim, SimBuilder, TaskOutcome};
pub use schedule::{
    Decision, DecisionLog, NemesisSchedule, Schedule, ScheduleCtl, ScheduleView, Scripted,
    ScriptedWindow, Tapped,
};
pub use spawner::{stepper_as_blocking_task, TaskBody, TaskSpawner};
pub use step::{Control, StepCtx, Stepper};
pub use trace::{Obs, Trace};
