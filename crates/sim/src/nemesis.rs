//! The nemesis: trace-aware, deterministic fault injection.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s, each pairing a
//! [`Trigger`] (when to fire) with a [`FaultAction`] (what to do). The
//! runner polls the plan at two fixed points of every time slot — before
//! scheduling and right after the granted step — so an injection lands at
//! exactly the same step on every run of the same `(program, schedule,
//! seed, plan)`, on either task backend.
//!
//! The admissible injections mirror the paper's model (see `DESIGN.md`):
//!
//! * **crashes** — a process stops taking steps forever (no recovery);
//! * **register fault bursts** — temporary abort/effect-policy overrides
//!   on abortable registers, all within the abortable specification;
//! * **schedule perturbation** — demote a process from the timely set or
//!   make it flicker, via a [`ScheduleCtl`];
//! * **candidacy churn** — flip boolean switches (e.g. an Ω∆ candidate
//!   flag) registered as [`Local`] handles.
//!
//! Triggers can be *trace-aware*: [`Trigger::OnObs`] fires on an
//! observation (e.g. "the first `leader` announcement"), and with
//! [`FaultTarget::ObsValue`] the observed value itself names the victim —
//! "crash the current leader" without knowing in advance who wins.
//! [`Trigger::OnGauge`] watches an externally registered gauge such as a
//! register's in-flight-operation counter, which is how a crash lands
//! exactly between `invoke_` and `complete_` of an operation.

use crate::ids::ProcId;
use crate::json::Json;
use crate::local::Local;
use crate::schedule::ScheduleCtl;
use crate::trace::Obs;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Which process an action applies to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultTarget {
    /// A fixed process id.
    Proc(usize),
    /// The process named by the value of the observation that fired the
    /// trigger (only meaningful with [`Trigger::OnObs`]): "whoever is
    /// leader right now".
    ObsValue,
    /// The process that took the step that fired the trigger (only
    /// meaningful with post-step triggers): "whoever just invoked".
    Stepper,
}

/// When a fault event fires. Every event fires at most once.
#[derive(Clone, PartialEq, Debug)]
pub enum Trigger {
    /// At global time `t`, before the step at `t` is scheduled.
    At(u64),
    /// As soon as `proc` has taken `count` steps (checked before each
    /// slot).
    AfterProcSteps {
        /// The process whose steps are counted.
        proc: usize,
        /// The step count that arms the event.
        count: u64,
    },
    /// On the first observation with key `key` recorded at time ≥ `at`.
    /// If the action targets [`FaultTarget::ObsValue`], only observations
    /// with a non-negative value fire (a `leader = ?` announcement names
    /// nobody and leaves the trigger armed).
    OnObs {
        /// Earliest time the trigger may fire.
        at: u64,
        /// Observation key to watch (e.g. `"leader"`).
        key: String,
    },
    /// On the first step after which the registered gauge `gauge` is at
    /// least `min`, checked from time `at` on. With the in-flight gauges
    /// of `tbwf-registers` this fires exactly on an invocation step,
    /// before the matching completion.
    OnGauge {
        /// Earliest time the trigger may fire.
        at: u64,
        /// Name of a gauge registered with [`Nemesis::register_gauge`].
        gauge: String,
        /// Threshold; fires when `gauge ≥ min`.
        min: i64,
    },
}

impl Trigger {
    fn is_post_step(&self) -> bool {
        matches!(self, Trigger::OnObs { .. } | Trigger::OnGauge { .. })
    }
}

/// What a fault event does when it fires.
#[derive(Clone, PartialEq, Debug)]
pub enum FaultAction {
    /// Crash the target process (it is never scheduled again).
    Crash(FaultTarget),
    /// Set a registered boolean switch (e.g. an Ω∆ candidate flag).
    SetSwitch {
        /// Name of a switch registered with [`Nemesis::register_switch`].
        switch: String,
        /// The value to set.
        on: bool,
    },
    /// Set a registered integer dial (e.g. a register policy dial).
    SetDial {
        /// Name of a dial registered with [`Nemesis::register_dial`].
        dial: String,
        /// The value to set.
        value: i64,
    },
    /// Remove the target from the schedule's timely set (its step gaps
    /// start doubling: correct but no longer timely).
    Demote(FaultTarget),
    /// Undo a [`FaultAction::Demote`].
    Promote(FaultTarget),
    /// Start flickering the target: bursts of steps separated by growing
    /// silences.
    FlickerStart(FaultTarget),
    /// Stop flickering the target.
    FlickerStop(FaultTarget),
}

impl FaultAction {
    fn target(&self) -> Option<FaultTarget> {
        match self {
            FaultAction::Crash(t)
            | FaultAction::Demote(t)
            | FaultAction::Promote(t)
            | FaultAction::FlickerStart(t)
            | FaultAction::FlickerStop(t) => Some(*t),
            FaultAction::SetSwitch { .. } | FaultAction::SetDial { .. } => None,
        }
    }

    fn needs_schedule_ctl(&self) -> bool {
        matches!(
            self,
            FaultAction::Demote(_)
                | FaultAction::Promote(_)
                | FaultAction::FlickerStart(_)
                | FaultAction::FlickerStop(_)
        )
    }
}

/// One injection: a trigger and the action it releases.
#[derive(Clone, PartialEq, Debug)]
pub struct FaultEvent {
    /// When to fire.
    pub trigger: Trigger,
    /// What to do.
    pub action: FaultAction,
}

/// An ordered list of fault events; the unit the delta-debugging
/// shrinker minimizes.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FaultPlan {
    /// The events; order is irrelevant to semantics (each fires on its
    /// own trigger) but preserved for reproducibility of artifacts.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Appends an event (builder style).
    #[must_use]
    pub fn with(mut self, trigger: Trigger, action: FaultAction) -> Self {
        self.events.push(FaultEvent { trigger, action });
        self
    }

    /// Serializes the plan to a JSON value (see `DESIGN.md` for the
    /// artifact format).
    pub fn to_json(&self) -> Json {
        Json::Arr(self.events.iter().map(event_to_json).collect())
    }

    /// Parses a plan serialized by [`FaultPlan::to_json`].
    pub fn from_json(v: &Json) -> Result<FaultPlan, String> {
        let arr = v.as_arr().ok_or("fault plan must be an array")?;
        let events = arr.iter().map(event_from_json).collect::<Result<_, _>>()?;
        Ok(FaultPlan { events })
    }
}

fn target_to_json(t: FaultTarget) -> Json {
    match t {
        FaultTarget::Proc(p) => Json::Int(p as i128),
        FaultTarget::ObsValue => Json::str("obs_value"),
        FaultTarget::Stepper => Json::str("stepper"),
    }
}

fn target_from_json(v: &Json) -> Result<FaultTarget, String> {
    if let Some(p) = v.as_u64() {
        return Ok(FaultTarget::Proc(p as usize));
    }
    match v.as_str() {
        Some("obs_value") => Ok(FaultTarget::ObsValue),
        Some("stepper") => Ok(FaultTarget::Stepper),
        _ => Err(format!("bad fault target: {v:?}")),
    }
}

fn event_to_json(e: &FaultEvent) -> Json {
    let trigger = match &e.trigger {
        Trigger::At(t) => Json::obj([("at", Json::Int(*t as i128))]),
        Trigger::AfterProcSteps { proc, count } => Json::obj([(
            "after_proc_steps",
            Json::obj([
                ("proc", Json::Int(*proc as i128)),
                ("count", Json::Int(*count as i128)),
            ]),
        )]),
        Trigger::OnObs { at, key } => Json::obj([(
            "on_obs",
            Json::obj([
                ("at", Json::Int(*at as i128)),
                ("key", Json::str(key.clone())),
            ]),
        )]),
        Trigger::OnGauge { at, gauge, min } => Json::obj([(
            "on_gauge",
            Json::obj([
                ("at", Json::Int(*at as i128)),
                ("gauge", Json::str(gauge.clone())),
                ("min", Json::Int(*min as i128)),
            ]),
        )]),
    };
    let action = match &e.action {
        FaultAction::Crash(t) => Json::obj([("crash", target_to_json(*t))]),
        FaultAction::SetSwitch { switch, on } => Json::obj([(
            "set_switch",
            Json::obj([
                ("switch", Json::str(switch.clone())),
                ("on", Json::Bool(*on)),
            ]),
        )]),
        FaultAction::SetDial { dial, value } => Json::obj([(
            "set_dial",
            Json::obj([
                ("dial", Json::str(dial.clone())),
                ("value", Json::Int(*value as i128)),
            ]),
        )]),
        FaultAction::Demote(t) => Json::obj([("demote", target_to_json(*t))]),
        FaultAction::Promote(t) => Json::obj([("promote", target_to_json(*t))]),
        FaultAction::FlickerStart(t) => Json::obj([("flicker_start", target_to_json(*t))]),
        FaultAction::FlickerStop(t) => Json::obj([("flicker_stop", target_to_json(*t))]),
    };
    Json::obj([("trigger", trigger), ("action", action)])
}

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| format!("key {key:?} must be a u64"))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    Ok(req(v, key)?
        .as_str()
        .ok_or_else(|| format!("key {key:?} must be a string"))?
        .to_string())
}

fn event_from_json(v: &Json) -> Result<FaultEvent, String> {
    let tv = req(v, "trigger")?;
    let trigger = if let Some(at) = tv.get("at") {
        Trigger::At(at.as_u64().ok_or("\"at\" must be a u64")?)
    } else if let Some(aps) = tv.get("after_proc_steps") {
        Trigger::AfterProcSteps {
            proc: req_u64(aps, "proc")? as usize,
            count: req_u64(aps, "count")?,
        }
    } else if let Some(oo) = tv.get("on_obs") {
        Trigger::OnObs {
            at: req_u64(oo, "at")?,
            key: req_str(oo, "key")?,
        }
    } else if let Some(og) = tv.get("on_gauge") {
        Trigger::OnGauge {
            at: req_u64(og, "at")?,
            gauge: req_str(og, "gauge")?,
            min: req(og, "min")?.as_i64().ok_or("\"min\" must be an i64")?,
        }
    } else {
        return Err(format!("unknown trigger: {tv:?}"));
    };
    let av = req(v, "action")?;
    let action = if let Some(t) = av.get("crash") {
        FaultAction::Crash(target_from_json(t)?)
    } else if let Some(ss) = av.get("set_switch") {
        FaultAction::SetSwitch {
            switch: req_str(ss, "switch")?,
            on: req(ss, "on")?.as_bool().ok_or("\"on\" must be a bool")?,
        }
    } else if let Some(sd) = av.get("set_dial") {
        FaultAction::SetDial {
            dial: req_str(sd, "dial")?,
            value: req(sd, "value")?
                .as_i64()
                .ok_or("\"value\" must be an i64")?,
        }
    } else if let Some(t) = av.get("demote") {
        FaultAction::Demote(target_from_json(t)?)
    } else if let Some(t) = av.get("promote") {
        FaultAction::Promote(target_from_json(t)?)
    } else if let Some(t) = av.get("flicker_start") {
        FaultAction::FlickerStart(target_from_json(t)?)
    } else if let Some(t) = av.get("flicker_stop") {
        FaultAction::FlickerStop(target_from_json(t)?)
    } else {
        return Err(format!("unknown action: {av:?}"));
    };
    Ok(FaultEvent { trigger, action })
}

/// One applied injection, recorded into the trace for diagnostics and
/// repro artifacts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InjectionRecord {
    /// Global time of the injection.
    pub time: u64,
    /// Index of the fault event in the plan.
    pub event: usize,
    /// Human-readable description of what was applied.
    pub desc: String,
}

/// The runtime that drives a [`FaultPlan`] during a run.
///
/// Build it from a plan, register every switch/dial/gauge the plan
/// refers to (and attach a [`ScheduleCtl`] if the plan perturbs the
/// schedule), then hand it to
/// [`RunConfig::with_nemesis`](crate::RunConfig::with_nemesis). The
/// runner polls it; user code never calls the poll methods directly.
pub struct Nemesis {
    plan: FaultPlan,
    fired: Vec<bool>,
    switches: BTreeMap<String, Local<bool>>,
    dials: BTreeMap<String, Arc<AtomicI64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    sched: Option<ScheduleCtl>,
    injections: Vec<InjectionRecord>,
    /// Cached: any unfired post-step (OnObs/OnGauge) triggers left?
    post_armed: bool,
}

impl Nemesis {
    /// Creates the runtime for `plan` with no registrations.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = vec![false; plan.events.len()];
        let post_armed = plan.events.iter().any(|e| e.trigger.is_post_step());
        Nemesis {
            plan,
            fired,
            switches: BTreeMap::new(),
            dials: BTreeMap::new(),
            gauges: BTreeMap::new(),
            sched: None,
            injections: Vec::new(),
            post_armed,
        }
    }

    /// The plan this nemesis executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Registers a boolean switch that [`FaultAction::SetSwitch`] can
    /// flip (e.g. the desired-candidacy flag of an Ω∆ driver).
    pub fn register_switch(&mut self, name: &str, switch: Local<bool>) {
        self.switches.insert(name.to_string(), switch);
    }

    /// Registers an integer dial that [`FaultAction::SetDial`] can set
    /// (e.g. a register policy dial).
    pub fn register_dial(&mut self, name: &str, dial: Arc<AtomicI64>) {
        self.dials.insert(name.to_string(), dial);
    }

    /// Registers a read-only gauge that [`Trigger::OnGauge`] can watch
    /// (e.g. a per-process in-flight-operation counter).
    pub fn register_gauge(&mut self, name: &str, gauge: Arc<AtomicI64>) {
        self.gauges.insert(name.to_string(), gauge);
    }

    /// Attaches the control handle of a
    /// [`NemesisSchedule`](crate::schedule::NemesisSchedule), enabling
    /// demote/promote/flicker actions.
    pub fn control_schedule(&mut self, ctl: ScheduleCtl) {
        self.sched = Some(ctl);
    }

    /// Checks the plan against the system size and the registrations.
    /// Called by the runner before the first step.
    pub(crate) fn validate(&self, n: usize) -> Result<(), String> {
        for (i, e) in self.plan.events.iter().enumerate() {
            if let Some(FaultTarget::Proc(p)) = e.action.target() {
                if p >= n {
                    return Err(format!(
                        "event {i}: target process {p} out of range (n={n})"
                    ));
                }
            }
            match e.action.target() {
                Some(FaultTarget::ObsValue) if !matches!(e.trigger, Trigger::OnObs { .. }) => {
                    return Err(format!(
                        "event {i}: ObsValue target requires an OnObs trigger"
                    ));
                }
                Some(FaultTarget::Stepper) if !e.trigger.is_post_step() => {
                    return Err(format!(
                        "event {i}: Stepper target requires a post-step trigger"
                    ));
                }
                _ => {}
            }
            match &e.action {
                FaultAction::SetSwitch { switch, .. } if !self.switches.contains_key(switch) => {
                    return Err(format!("event {i}: switch {switch:?} not registered"));
                }
                FaultAction::SetDial { dial, .. } if !self.dials.contains_key(dial) => {
                    return Err(format!("event {i}: dial {dial:?} not registered"));
                }
                a if a.needs_schedule_ctl() && self.sched.is_none() => {
                    return Err(format!(
                        "event {i}: schedule action without a ScheduleCtl attached"
                    ));
                }
                _ => {}
            }
            if let Trigger::OnGauge { gauge, .. } = &e.trigger {
                if !self.gauges.contains_key(gauge) {
                    return Err(format!("event {i}: gauge {gauge:?} not registered"));
                }
            }
        }
        Ok(())
    }

    /// Whether an unfired [`Trigger::OnObs`] remains: only then does the
    /// runner pay for collecting the granted step's observations.
    pub(crate) fn wants_obs(&self) -> bool {
        self.plan
            .events
            .iter()
            .zip(&self.fired)
            .any(|(e, f)| !f && matches!(e.trigger, Trigger::OnObs { .. }))
    }

    /// Pre-step poll: fires [`Trigger::At`] / [`Trigger::AfterProcSteps`]
    /// events. Non-crash actions are applied internally; requested
    /// crashes are returned for the runner to apply.
    pub(crate) fn poll_pre(&mut self, t: u64, step_counts: &[u64]) -> Vec<ProcId> {
        let mut crashes = Vec::new();
        for i in 0..self.plan.events.len() {
            if self.fired[i] {
                continue;
            }
            let due = match &self.plan.events[i].trigger {
                Trigger::At(at) => *at <= t,
                Trigger::AfterProcSteps { proc, count } => {
                    step_counts.get(*proc).copied().unwrap_or(0) >= *count
                }
                _ => false,
            };
            if due {
                self.fire(i, t, None, &mut crashes);
            }
        }
        crashes
    }

    /// Post-step poll: fires [`Trigger::OnObs`] / [`Trigger::OnGauge`]
    /// events after `stepper` took the step at time `t`, with the
    /// observations that step recorded. Returns requested crashes.
    pub(crate) fn poll_post(&mut self, t: u64, stepper: ProcId, new_obs: &[Obs]) -> Vec<ProcId> {
        let mut crashes = Vec::new();
        if !self.post_armed {
            return crashes;
        }
        for i in 0..self.plan.events.len() {
            if self.fired[i] {
                continue;
            }
            let ev = &self.plan.events[i];
            match &ev.trigger {
                Trigger::OnObs { at, key } => {
                    let wants_value = ev.action.target() == Some(FaultTarget::ObsValue);
                    let hit = new_obs
                        .iter()
                        .find(|o| o.time >= *at && o.key == key && (!wants_value || o.value >= 0));
                    if let Some(o) = hit {
                        let named = usize::try_from(o.value).ok();
                        self.fire_with(i, t, Some(stepper), named, &mut crashes);
                    }
                }
                Trigger::OnGauge { at, gauge, min } => {
                    let val = self.gauges.get(gauge).map(|g| g.load(Ordering::SeqCst));
                    if t >= *at && val.is_some_and(|v| v >= *min) {
                        self.fire(i, t, Some(stepper), &mut crashes);
                    }
                }
                _ => {}
            }
        }
        self.post_armed = self
            .plan
            .events
            .iter()
            .zip(&self.fired)
            .any(|(e, f)| !f && e.trigger.is_post_step());
        crashes
    }

    fn fire(&mut self, i: usize, t: u64, stepper: Option<ProcId>, crashes: &mut Vec<ProcId>) {
        self.fire_with(i, t, stepper, None, crashes);
    }

    fn fire_with(
        &mut self,
        i: usize,
        t: u64,
        stepper: Option<ProcId>,
        obs_value: Option<usize>,
        crashes: &mut Vec<ProcId>,
    ) {
        self.fired[i] = true;
        let action = self.plan.events[i].action.clone();
        let resolve = |target: FaultTarget| -> Option<ProcId> {
            match target {
                FaultTarget::Proc(p) => Some(ProcId(p)),
                FaultTarget::ObsValue => obs_value.map(ProcId),
                FaultTarget::Stepper => stepper,
            }
        };
        let desc = match &action {
            FaultAction::Crash(tgt) => {
                if let Some(p) = resolve(*tgt) {
                    crashes.push(p);
                    format!("crash p{}", p.0)
                } else {
                    "crash <unresolved>".to_string()
                }
            }
            FaultAction::SetSwitch { switch, on } => {
                self.switches[switch].set(*on);
                format!("switch {switch} := {on}")
            }
            FaultAction::SetDial { dial, value } => {
                self.dials[dial].store(*value, Ordering::SeqCst);
                format!("dial {dial} := {value}")
            }
            FaultAction::Demote(tgt) => {
                if let (Some(p), Some(s)) = (resolve(*tgt), self.sched.as_ref()) {
                    s.demote(p);
                    format!("demote p{}", p.0)
                } else {
                    "demote <unresolved>".to_string()
                }
            }
            FaultAction::Promote(tgt) => {
                if let (Some(p), Some(s)) = (resolve(*tgt), self.sched.as_ref()) {
                    s.promote(p);
                    format!("promote p{}", p.0)
                } else {
                    "promote <unresolved>".to_string()
                }
            }
            FaultAction::FlickerStart(tgt) => {
                if let (Some(p), Some(s)) = (resolve(*tgt), self.sched.as_ref()) {
                    s.flicker_start(p);
                    format!("flicker-start p{}", p.0)
                } else {
                    "flicker-start <unresolved>".to_string()
                }
            }
            FaultAction::FlickerStop(tgt) => {
                if let (Some(p), Some(s)) = (resolve(*tgt), self.sched.as_ref()) {
                    s.flicker_stop(p);
                    format!("flicker-stop p{}", p.0)
                } else {
                    "flicker-stop <unresolved>".to_string()
                }
            }
        };
        self.injections.push(InjectionRecord {
            time: t,
            event: i,
            desc,
        });
    }

    /// Consumes the record of applied injections (called at teardown).
    pub(crate) fn take_injections(&mut self) -> Vec<InjectionRecord> {
        std::mem::take(&mut self.injections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan::new()
            .with(Trigger::At(100), FaultAction::Crash(FaultTarget::Proc(2)))
            .with(
                Trigger::OnObs {
                    at: 50,
                    key: "leader".to_string(),
                },
                FaultAction::Crash(FaultTarget::ObsValue),
            )
            .with(
                Trigger::OnGauge {
                    at: 0,
                    gauge: "inflight[1]".to_string(),
                    min: 1,
                },
                FaultAction::Crash(FaultTarget::Stepper),
            )
            .with(
                Trigger::AfterProcSteps { proc: 0, count: 7 },
                FaultAction::SetSwitch {
                    switch: "cand[0]".to_string(),
                    on: false,
                },
            )
            .with(
                Trigger::At(10),
                FaultAction::SetDial {
                    dial: "registers".to_string(),
                    value: 2,
                },
            )
            .with(Trigger::At(20), FaultAction::Demote(FaultTarget::Proc(1)))
            .with(
                Trigger::At(30),
                FaultAction::FlickerStart(FaultTarget::Proc(0)),
            )
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = sample_plan();
        let text = plan.to_json().to_string_pretty();
        let back = FaultPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn validate_rejects_out_of_range_target() {
        let plan = FaultPlan::new().with(Trigger::At(0), FaultAction::Crash(FaultTarget::Proc(5)));
        let nem = Nemesis::new(plan);
        let err = nem.validate(3).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn validate_rejects_unregistered_names() {
        let plan = FaultPlan::new().with(
            Trigger::At(0),
            FaultAction::SetSwitch {
                switch: "nope".to_string(),
                on: true,
            },
        );
        assert!(Nemesis::new(plan)
            .validate(2)
            .unwrap_err()
            .contains("not registered"));

        let plan = FaultPlan::new().with(
            Trigger::OnGauge {
                at: 0,
                gauge: "nope".to_string(),
                min: 1,
            },
            FaultAction::Crash(FaultTarget::Stepper),
        );
        assert!(Nemesis::new(plan)
            .validate(2)
            .unwrap_err()
            .contains("not registered"));
    }

    #[test]
    fn validate_rejects_obs_value_without_on_obs() {
        let plan = FaultPlan::new().with(Trigger::At(0), FaultAction::Crash(FaultTarget::ObsValue));
        let err = Nemesis::new(plan).validate(2).unwrap_err();
        assert!(err.contains("OnObs"), "{err}");
    }

    #[test]
    fn validate_rejects_schedule_actions_without_ctl() {
        let plan = FaultPlan::new().with(Trigger::At(0), FaultAction::Demote(FaultTarget::Proc(0)));
        let err = Nemesis::new(plan).validate(2).unwrap_err();
        assert!(err.contains("ScheduleCtl"), "{err}");
    }

    #[test]
    fn pre_poll_fires_time_and_step_triggers_once() {
        let plan = FaultPlan::new()
            .with(Trigger::At(5), FaultAction::Crash(FaultTarget::Proc(1)))
            .with(
                Trigger::AfterProcSteps { proc: 0, count: 3 },
                FaultAction::Crash(FaultTarget::Proc(0)),
            );
        let mut nem = Nemesis::new(plan);
        nem.validate(2).unwrap();
        assert!(nem.poll_pre(4, &[0, 0]).is_empty());
        assert_eq!(nem.poll_pre(5, &[0, 0]), vec![ProcId(1)]);
        assert!(
            nem.poll_pre(6, &[2, 0]).is_empty(),
            "fired events stay fired"
        );
        assert_eq!(nem.poll_pre(7, &[3, 0]), vec![ProcId(0)]);
        assert_eq!(nem.take_injections().len(), 2);
    }

    #[test]
    fn on_obs_crashes_the_named_process() {
        let plan = sample_plan();
        let mut nem = Nemesis::new(plan);
        let obs = |time, value| Obs {
            time,
            proc: ProcId(0),
            key: "leader",
            idx: 0,
            value,
        };
        // Too early, and `?` (-1) never names a victim.
        assert!(nem.poll_post(40, ProcId(0), &[obs(40, 1)]).is_empty());
        assert!(nem.poll_post(60, ProcId(0), &[obs(60, -1)]).is_empty());
        // A real announcement names the victim.
        assert_eq!(nem.poll_post(70, ProcId(0), &[obs(70, 1)]), vec![ProcId(1)]);
    }

    #[test]
    fn on_gauge_crashes_the_stepper() {
        let plan = FaultPlan::new().with(
            Trigger::OnGauge {
                at: 0,
                gauge: "g".to_string(),
                min: 1,
            },
            FaultAction::Crash(FaultTarget::Stepper),
        );
        let mut nem = Nemesis::new(plan);
        let g = Arc::new(AtomicI64::new(0));
        nem.register_gauge("g", Arc::clone(&g));
        nem.validate(3).unwrap();
        assert!(nem.poll_post(1, ProcId(2), &[]).is_empty());
        g.store(1, Ordering::SeqCst);
        assert_eq!(nem.poll_post(2, ProcId(2), &[]), vec![ProcId(2)]);
        let inj = nem.take_injections();
        assert_eq!(inj.len(), 1);
        assert_eq!(inj[0].desc, "crash p2");
    }

    #[test]
    fn switch_and_dial_actions_apply() {
        let plan = FaultPlan::new()
            .with(
                Trigger::At(0),
                FaultAction::SetSwitch {
                    switch: "s".to_string(),
                    on: false,
                },
            )
            .with(
                Trigger::At(0),
                FaultAction::SetDial {
                    dial: "d".to_string(),
                    value: 7,
                },
            );
        let mut nem = Nemesis::new(plan);
        let s = Local::new(true);
        let d = Arc::new(AtomicI64::new(0));
        nem.register_switch("s", s.clone());
        nem.register_dial("d", Arc::clone(&d));
        nem.validate(1).unwrap();
        assert!(nem.poll_pre(0, &[0]).is_empty());
        assert!(!s.get());
        assert_eq!(d.load(Ordering::SeqCst), 7);
    }
}
