//! Work-sharded parallel execution of independent seeded runs.
//!
//! Every experiment in the workspace is a *campaign grid*: a list of
//! fully self-contained run descriptions (seed, system kind, schedule,
//! fault plan) whose executions share no state — the simulator threads
//! nothing between runs, every `RegisterFactory`/`Nemesis`/`ScheduleCtl`
//! is per-run, and each run is a deterministic function of its inputs.
//! That makes the grid embarrassingly parallel: the only thing a
//! parallel driver must preserve is the *presentation order* of results.
//!
//! [`Executor::run`] shards the index space `0..count` across a fixed
//! pool of `std::thread` workers (no external dependencies) pulling
//! indices from one atomic counter, and collects results **by index**,
//! not by completion order. A caller that renders results in index order
//! therefore produces byte-identical output for any worker count — the
//! property the E12 determinism test pins down.
//!
//! Worker count resolution (first match wins):
//!
//! 1. an explicit `--jobs N` CLI value, passed as `Some(n)` to
//!    [`resolve_jobs`];
//! 2. the `TBWF_JOBS` environment variable;
//! 3. [`std::thread::available_parallelism`] (all cores).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "TBWF_JOBS";

/// Resolves the worker count: `explicit` (a `--jobs` flag), else
/// [`JOBS_ENV`], else all available cores. Always at least 1; zero or
/// unparsable overrides are ignored.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&j| j >= 1)
        .or_else(|| {
            std::env::var(JOBS_ENV)
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .filter(|&j| j >= 1)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// A fixed-width pool for executing independent jobs across cores.
///
/// See the [module docs](self) for the sharding and determinism story.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor with exactly `jobs` workers.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is 0.
    pub fn new(jobs: usize) -> Self {
        assert!(jobs >= 1, "an executor needs at least one worker");
        Executor { jobs }
    }

    /// An executor sized by [`resolve_jobs`] (env override, else cores).
    pub fn auto() -> Self {
        Executor::new(resolve_jobs(None))
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes `job(i)` for every `i` in `0..count` and returns the
    /// results **in index order**, regardless of which worker finished
    /// which index when.
    ///
    /// With one worker (or one job) everything runs inline on the caller
    /// thread — no pool, no channels — so `Executor::new(1)` is the
    /// serial baseline, not a degenerate parallel mode.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic is propagated to the caller once the
    /// remaining workers have drained (via [`std::thread::scope`]'s join).
    pub fn run<T, F>(&self, count: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let workers = self.jobs.min(count);
        if workers <= 1 {
            return (0..count).map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|s| {
            for w in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let job = &job;
                std::thread::Builder::new()
                    .name(format!("tbwf-exec-{w}"))
                    .spawn_scoped(s, move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        // A send can only fail if the collector side is
                        // gone, i.e. the scope is already unwinding from
                        // another worker's panic; stop quietly.
                        if tx.send((i, job(i))).is_err() {
                            break;
                        }
                    })
                    .expect("failed to spawn executor worker");
            }
            drop(tx);
            // Collect on the caller thread; the loop ends when every
            // worker has dropped its sender.
            for (i, result) in rx {
                slots[i] = Some(result);
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("executor worker dropped a job result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let ex = Executor::new(4);
        // Jitter completion order: later indices finish sooner.
        let out = ex.run(16, |i| {
            std::thread::sleep(std::time::Duration::from_micros((16 - i) as u64 * 50));
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let job = |i: usize| {
            (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(7)
        };
        let serial = Executor::new(1).run(100, job);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(Executor::new(jobs).run(100, job), serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let hits: Vec<AtomicU32> = (0..97).map(|_| AtomicU32::new(0)).collect();
        Executor::new(8).run(97, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        assert_eq!(Executor::new(32).run(3, |i| i), vec![0, 1, 2]);
        assert_eq!(Executor::new(32).run(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        let _ = Executor::new(0);
    }

    #[test]
    fn resolve_jobs_prefers_explicit_value() {
        assert_eq!(resolve_jobs(Some(5)), 5);
        // `Some(0)` is ignored, falling through to env/cores — at least 1.
        assert!(resolve_jobs(Some(0)) >= 1);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            Executor::new(4).run(8, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
