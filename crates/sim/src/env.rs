//! The environment through which algorithm code consumes steps.

use crate::gate::Gate;
use crate::halt::SimResult;
use crate::ids::{ProcId, TaskId};
use crate::trace::{ObsBuf, TraceSink};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared crash flags: one bit per process, set by the runner the moment
/// a crash (from the static plan or a nemesis injection) takes effect.
///
/// Registers consult these through [`Env::is_crashed`]: a crashed
/// process takes no further steps, so its pending operations can no
/// longer interfere with operations invoked after the crash (see
/// `RegCore` in `tbwf-registers`). Out-of-range ids read as not crashed.
#[derive(Debug, Default)]
pub struct CrashFlags {
    bits: Vec<AtomicBool>,
}

impl CrashFlags {
    /// Creates flags for `n` processes, all alive.
    pub fn new(n: usize) -> Self {
        CrashFlags {
            bits: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Marks `p` as crashed (idempotent).
    pub fn set(&self, p: ProcId) {
        if let Some(b) = self.bits.get(p.0) {
            b.store(true, Ordering::SeqCst);
        }
    }

    /// Whether `p` has crashed.
    pub fn get(&self, p: ProcId) -> bool {
        self.bits.get(p.0).is_some_and(|b| b.load(Ordering::SeqCst))
    }
}

/// The interface between algorithm code and its runtime.
///
/// All the algorithms of the paper (Figures 2–7) are written against this
/// trait, so the same code runs on the deterministic simulator
/// ([`TaskEnv`]) and on a real-thread backend (the `native` module of
/// `tbwf-registers`).
///
/// A *step* in the sense of Section 3 of the paper is consumed by every
/// call to [`Env::tick`]; register operations consume one step for the
/// invocation and one for the response by calling `tick` internally.
pub trait Env: Send + Sync {
    /// Consume one step of this process.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](crate::Halted) when the run is over (or the
    /// process has crashed and the run is being torn down); the task must
    /// propagate it and return.
    fn tick(&self) -> SimResult<()>;

    /// Current global time (number of steps taken by all processes so far).
    fn now(&self) -> u64;

    /// The process this task belongs to.
    fn pid(&self) -> ProcId;

    /// Record an observation of a local output variable into the trace.
    ///
    /// `key` names the variable (e.g. `"leader"`), `idx` disambiguates
    /// vector variables (e.g. `status[q]` uses `idx = q`), and `value` is
    /// the observed value (conventions such as `? == -1` are documented at
    /// the observation sites).
    fn observe(&self, key: &'static str, idx: u32, value: i64);

    /// Whether process `p` has crashed in this run.
    ///
    /// Simulator environments report the runner's [`CrashFlags`];
    /// environments with no crash model (free-running tests, the native
    /// thread backend) use this default and report every process alive.
    fn is_crashed(&self, _p: ProcId) -> bool {
        false
    }
}

/// Simulator-backed environment handed to each task closure.
#[derive(Clone)]
pub struct TaskEnv {
    pub(crate) tid: TaskId,
    pub(crate) gate: Arc<Gate>,
    pub(crate) clock: Arc<AtomicU64>,
    pub(crate) obs: ObsBuf,
    pub(crate) crashed: Arc<CrashFlags>,
}

impl Env for TaskEnv {
    fn tick(&self) -> SimResult<()> {
        self.gate.tick()
    }

    fn now(&self) -> u64 {
        // Relaxed: the runner stores the clock before granting the step,
        // and the grant itself is a gate rendezvous whose mutex provides
        // the happens-before edge to this task thread.
        self.clock.load(Ordering::Relaxed)
    }

    fn pid(&self) -> ProcId {
        self.tid.proc
    }

    fn observe(&self, key: &'static str, idx: u32, value: i64) {
        self.obs.record(self.now(), self.tid.proc, key, idx, value);
    }

    fn is_crashed(&self, p: ProcId) -> bool {
        self.crashed.get(p)
    }
}

impl TaskEnv {
    /// The full task identifier (process + task index).
    pub fn task_id(&self) -> TaskId {
        self.tid
    }
}

/// A free-running environment for unit tests and micro-benchmarks.
///
/// `tick` always succeeds and advances a private clock; observations are
/// recorded into an internal sink that can be drained with
/// [`FreeRunEnv::take_obs`]. There is no scheduler, no determinism
/// guarantee across threads, and no halt signal — use the real simulator
/// for anything that needs the model semantics.
pub struct FreeRunEnv {
    pid: ProcId,
    clock: AtomicU64,
    sink: TraceSink,
}

impl FreeRunEnv {
    /// Creates a free-running environment acting as process `pid`.
    pub fn new(pid: ProcId) -> Self {
        FreeRunEnv {
            pid,
            clock: AtomicU64::new(0),
            sink: TraceSink::new(),
        }
    }

    /// Drains and returns all recorded observations.
    pub fn take_obs(&self) -> Vec<crate::trace::Obs> {
        self.sink.drain()
    }
}

impl Env for FreeRunEnv {
    fn tick(&self) -> SimResult<()> {
        self.clock.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    fn pid(&self) -> ProcId {
        self.pid
    }

    fn observe(&self, key: &'static str, idx: u32, value: i64) {
        self.sink.record(self.now(), self.pid, key, idx, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_run_env_ticks_and_observes() {
        let env = FreeRunEnv::new(ProcId(3));
        assert_eq!(env.now(), 0);
        env.tick().unwrap();
        env.tick().unwrap();
        assert_eq!(env.now(), 2);
        env.observe("x", 1, 42);
        let obs = env.take_obs();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].value, 42);
        assert_eq!(obs[0].proc, ProcId(3));
        assert_eq!(obs[0].idx, 1);
    }
}
