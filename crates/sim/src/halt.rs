//! The halt signal used to tear down infinite task loops.

use std::error::Error;
use std::fmt;

/// Signal that the simulation has ended and the task must unwind.
///
/// The algorithms of the paper are written as `repeat forever` loops; a run
/// of the simulator executes a finite number of steps and then delivers
/// `Halted` from the next [`Env::tick`](crate::Env::tick) (or register
/// operation) of every task. Task bodies propagate it with `?` and return,
/// letting their threads be joined.
///
/// `Halted` is also used to tear down the tasks of a *crashed* process: in
/// the model a crashed process simply stops taking steps, which the
/// scheduler implements by never granting it another step; at the end of
/// the run its blocked tasks are released with `Halted`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Halted;

impl fmt::Display for Halted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation halted")
    }
}

impl Error for Halted {}

/// Result of any step-consuming simulator operation.
pub type SimResult<T> = Result<T, Halted>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halted_displays() {
        assert_eq!(Halted.to_string(), "simulation halted");
    }

    #[test]
    fn question_mark_propagates() {
        fn inner() -> SimResult<u32> {
            Err(Halted)
        }
        fn outer() -> SimResult<u32> {
            let v = inner()?;
            Ok(v + 1)
        }
        assert_eq!(outer(), Err(Halted));
    }
}
