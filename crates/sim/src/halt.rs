//! The halt signal used to tear down infinite task loops.

use std::error::Error;
use std::fmt;

/// Signal that the simulation has ended and the task must unwind.
///
/// The algorithms of the paper are written as `repeat forever` loops; a
/// run of the simulator executes a finite number of steps and then stops
/// granting steps. How a task experiences that depends on its backend:
///
/// * A poll-driven [`Stepper`](crate::Stepper) task simply never has its
///   `step` called again — it needs no halt signal at all, and `Halted`
///   never reaches it.
/// * A blocking-closure task is parked inside
///   [`Env::tick`](crate::Env::tick) (or a register operation) on its
///   rendezvous gate; at teardown the gate is switched to halt mode, the
///   `tick` returns `Err(Halted)`, and the body propagates it with `?`
///   so its thread can be joined.
///
/// A *crashed* process is handled the same way: in the model a crashed
/// process simply stops taking steps, which the runner implements by
/// never scheduling it again; at the end of the run any of its tasks
/// still parked on a gate are released with `Halted`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Halted;

impl fmt::Display for Halted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation halted")
    }
}

impl Error for Halted {}

/// Result of any step-consuming simulator operation.
pub type SimResult<T> = Result<T, Halted>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halted_displays() {
        assert_eq!(Halted.to_string(), "simulation halted");
    }

    #[test]
    fn question_mark_propagates() {
        fn inner() -> SimResult<u32> {
            Err(Halted)
        }
        fn outer() -> SimResult<u32> {
            let v = inner()?;
            Ok(v + 1)
        }
        assert_eq!(outer(), Err(Halted));
    }
}
