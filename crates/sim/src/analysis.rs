//! Temporal predicates over observation series.
//!
//! The paper's specifications are stated with "there is a time after
//! which C holds", "C holds infinitely often", and "v increases without
//! bound" (Section 3). On the finite traces the simulator produces these
//! become stabilization tests: the helpers here report *from when* and
//! *for what fraction of the run* a predicate held, and the callers (the
//! property checkers in `tbwf-monitor`/`tbwf-omega`) assert generous
//! stabilization margins.
//!
//! A series is the step function induced by observations: the value at
//! time `t` is the value of the latest observation at or before `t`.

/// The earliest time from which `pred` holds for every later observation
/// (i.e. the start of the final `pred`-true streak), or `None` if the
/// series is empty or the last observation fails `pred`.
pub fn holds_from(series: &[(u64, i64)], pred: impl Fn(i64) -> bool) -> Option<u64> {
    let last = series.last()?;
    if !pred(last.1) {
        return None;
    }
    let mut start = last.0;
    for (t, v) in series.iter().rev() {
        if pred(*v) {
            start = *t;
        } else {
            break;
        }
    }
    Some(start)
}

/// Fraction of the run `[0, total_time)` covered by the final streak in
/// which `pred` holds. Returns 0.0 if the streak is empty.
///
/// ```
/// use tbwf_sim::analysis::stable_fraction;
///
/// // leader became p2 at t=400 and stayed: stable for 60% of the run.
/// let leader = vec![(0, -1), (100, 0), (400, 2)];
/// let f = stable_fraction(&leader, 1_000, |v| v == 2);
/// assert!((f - 0.6).abs() < 1e-9);
/// ```
///
/// "There is a time after which C holds" is asserted in tests as
/// `stable_fraction(...) ≥ margin` for a generous margin (usually 0.2–0.5),
/// chosen per experiment so that the stabilization phase of the algorithm
/// fits comfortably in the complement.
pub fn stable_fraction(series: &[(u64, i64)], total_time: u64, pred: impl Fn(i64) -> bool) -> f64 {
    if total_time == 0 {
        return 0.0;
    }
    match holds_from(series, pred) {
        Some(t0) => (total_time.saturating_sub(t0)) as f64 / total_time as f64,
        None => 0.0,
    }
}

/// Whether `pred` holds at least `k` separate times spread over the whole
/// run: the observations are split into `k` equal time windows and each
/// window must contain a `pred`-true observation. This is the finite-trace
/// version of "C holds infinitely often".
pub fn holds_infinitely_often(
    series: &[(u64, i64)],
    total_time: u64,
    k: usize,
    pred: impl Fn(i64) -> bool,
) -> bool {
    if total_time == 0 || k == 0 {
        return false;
    }
    let w = total_time.div_ceil(k as u64);
    (0..k as u64).all(|i| {
        let lo = i * w;
        let hi = ((i + 1) * w).min(total_time);
        series.iter().any(|(t, v)| *t >= lo && *t < hi && pred(*v))
    })
}

/// Whether the series value is *bounded* in the finite-trace sense: it
/// never changes during the last `frac` fraction of the run.
pub fn bounded_suffix(series: &[(u64, i64)], total_time: u64, frac: f64) -> bool {
    let cutoff = (total_time as f64 * (1.0 - frac)) as u64;
    let suffix: Vec<i64> = series
        .iter()
        .filter(|(t, _)| *t >= cutoff)
        .map(|(_, v)| *v)
        .collect();
    match (suffix.first(), series.last()) {
        (Some(first), _) => suffix.iter().all(|v| v == first),
        // no observation in the suffix at all: the value did not change
        (None, Some(_)) => true,
        (None, None) => true,
    }
}

/// Whether the series "increases without bound" in the finite-trace sense:
/// its maximum strictly increases across each of `k` consecutive equal
/// time windows covering the run.
pub fn increases_without_bound(series: &[(u64, i64)], total_time: u64, k: usize) -> bool {
    if total_time == 0 || k < 2 {
        return false;
    }
    let w = total_time.div_ceil(k as u64);
    let mut prev_max: Option<i64> = None;
    let mut running_max = i64::MIN;
    for i in 0..k as u64 {
        let lo = i * w;
        let hi = ((i + 1) * w).min(total_time);
        for (t, v) in series {
            if *t >= lo && *t < hi {
                running_max = running_max.max(*v);
            }
        }
        if running_max == i64::MIN {
            return false; // no observation yet in this window prefix
        }
        if let Some(pm) = prev_max {
            if running_max <= pm {
                return false;
            }
        }
        prev_max = Some(running_max);
    }
    true
}

/// The value of the step function at time `t` (latest observation ≤ `t`).
pub fn value_at(series: &[(u64, i64)], t: u64) -> Option<i64> {
    series
        .iter()
        .take_while(|(ot, _)| *ot <= t)
        .last()
        .map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_from_finds_final_streak() {
        let s = vec![(0, 1), (10, 2), (20, 2), (30, 2)];
        assert_eq!(holds_from(&s, |v| v == 2), Some(10));
        assert_eq!(holds_from(&s, |v| v == 1), None);
        assert_eq!(holds_from(&[], |_| true), None);
    }

    #[test]
    fn stable_fraction_measures_suffix() {
        let s = vec![(0, 1), (50, 2)];
        let f = stable_fraction(&s, 100, |v| v == 2);
        assert!((f - 0.5).abs() < 1e-9);
        assert_eq!(stable_fraction(&s, 100, |v| v == 3), 0.0);
    }

    #[test]
    fn infinitely_often_requires_every_window() {
        let s = vec![(5, 1), (35, 1), (65, 1), (95, 1)];
        assert!(holds_infinitely_often(&s, 100, 4, |v| v == 1));
        let sparse = vec![(5, 1), (95, 1)];
        assert!(!holds_infinitely_often(&sparse, 100, 4, |v| v == 1));
    }

    #[test]
    fn bounded_suffix_detects_quiescence() {
        let s = vec![(0, 1), (10, 2), (20, 3)];
        assert!(bounded_suffix(&s, 100, 0.5)); // nothing changes after t=50
        let busy = vec![(0, 1), (90, 2)];
        assert!(!busy.is_empty());
        assert!(bounded_suffix(&busy, 100, 0.05));
        assert!(!bounded_suffix(&[(0, 1), (60, 2), (99, 3)], 100, 0.5));
    }

    #[test]
    fn increases_without_bound_needs_growth_per_window() {
        let growing: Vec<(u64, i64)> = (0..10).map(|i| (i * 10, i as i64)).collect();
        assert!(increases_without_bound(&growing, 100, 4));
        let flat = vec![(0, 5), (50, 5), (99, 5)];
        assert!(!increases_without_bound(&flat, 100, 4));
        let stalls = vec![(0, 1), (30, 2), (60, 2), (99, 2)];
        assert!(!increases_without_bound(&stalls, 100, 4));
    }

    #[test]
    fn value_at_is_step_function() {
        let s = vec![(10, 1), (20, 2)];
        assert_eq!(value_at(&s, 5), None);
        assert_eq!(value_at(&s, 10), Some(1));
        assert_eq!(value_at(&s, 15), Some(1));
        assert_eq!(value_at(&s, 25), Some(2));
    }
}
