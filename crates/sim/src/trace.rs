//! Run traces: step sequences and observations of local output variables.

use crate::ids::ProcId;
use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One observation of a local output variable.
///
/// Conventions used across the workspace:
/// * `leader` observations encode `?` as `-1` and process `q` as `q as i64`;
/// * `status[q]` observations encode `?` as `0`, `active` as `1`,
///   `inactive` as `2` (see `tbwf-monitor`);
/// * counters are recorded verbatim.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Obs {
    /// Global time of the observation.
    pub time: u64,
    /// Observing process.
    pub proc: ProcId,
    /// Variable name.
    pub key: &'static str,
    /// Vector index (e.g. the `q` of `status[q]`), `0` for scalars.
    pub idx: u32,
    /// Observed value.
    pub value: i64,
}

/// Non-atomic run-global stamp counter for runs whose every task is a
/// poll-driven stepper.
///
/// Such runs are single-threaded by construction: the scheduler calls
/// `Stepper::step` directly from `Sim::run`, so every `record` and every
/// runner-side read happens on the one thread driving the run. The
/// `Sync` assertion below exists only because [`crate::Env`] (which the
/// poll backend's `StepEnv` implements) is a `Send + Sync` trait; it is
/// never exercised across threads.
///
/// # Safety
///
/// Constructed only by `SimBuilder::build` for all-stepper systems, and
/// only ever touched from the thread executing `Sim::run`. Nothing hands
/// a poll task's env to another thread: `StepCtx` borrows it for the
/// duration of one synchronous `step` call.
pub(crate) struct PollSeq(Cell<u64>);

// SAFETY: see the type-level invariant above — all access is confined to
// the thread driving `Sim::run`.
unsafe impl Sync for PollSeq {}

impl PollSeq {
    fn next(&self) -> u64 {
        let v = self.0.get();
        self.0.set(v + 1);
        v
    }
}

/// The poll-backend observation store: a plain `Vec` behind a `RefCell`.
/// Same confinement invariant (and the same reason for the `Sync`
/// assertion) as [`PollSeq`]; the `RefCell` turns any future violation of
/// the aliasing discipline into a deterministic panic instead of UB.
pub(crate) struct PollBuf(RefCell<Vec<(u64, Obs)>>);

// SAFETY: see `PollSeq` — all access is confined to the runner thread.
unsafe impl Sync for PollBuf {}

/// The stamp source shared by all observation buffers of one run.
///
/// `Shared` is the thread-compat path (tasks record from their own OS
/// threads, serialized by the gate rendezvous but still cross-thread);
/// `Poll` is the single-threaded fast path used when every task of the
/// system is a stepper.
pub(crate) enum ObsSeq {
    Shared(Arc<AtomicU64>),
    Poll(Arc<PollSeq>),
}

impl ObsSeq {
    /// A stamp counter for a run containing at least one thread task.
    pub(crate) fn shared() -> Self {
        ObsSeq::Shared(Arc::new(AtomicU64::new(0)))
    }

    /// A stamp counter for an all-stepper run (no atomics needed).
    pub(crate) fn poll() -> Self {
        ObsSeq::Poll(Arc::new(PollSeq(Cell::new(0))))
    }

    /// A fresh per-task buffer drawing stamps from this counter.
    pub(crate) fn new_buf(&self) -> ObsBuf {
        match self {
            ObsSeq::Shared(seq) => ObsBuf::Shared {
                seq: Arc::clone(seq),
                items: Arc::new(Mutex::new(Vec::new())),
            },
            ObsSeq::Poll(seq) => ObsBuf::Poll {
                seq: Arc::clone(seq),
                items: Arc::new(PollBuf(RefCell::new(Vec::new()))),
            },
        }
    }
}

/// Per-task observation buffer with a run-global sequence stamp.
///
/// Each task appends into its own buffer (no contention with other
/// tasks), but every record draws a stamp from one counter shared by all
/// buffers of a run; merging the buffers sorted by stamp reproduces the
/// exact global recording order. The stamp (not `Obs::time`) is what
/// orders observations: several tasks can observe at the same time `t`
/// when an exiting task's final segment and its successor run in the
/// same slot.
///
/// Two variants, chosen per *run* at build time (see [`ObsSeq`]):
///
/// * `Shared` — the thread-compat path. Buffers are written from task
///   threads and read by the runner, so they pay an `Arc<Mutex>` lock and
///   an atomic stamp per record.
/// * `Poll` — the specialized path for all-stepper runs: a plain `Vec`
///   with a non-atomic stamp. Everything runs on the scheduler thread, so
///   the per-observation cost is a counter bump and a `Vec` push.
#[derive(Clone)]
pub(crate) enum ObsBuf {
    Shared {
        seq: Arc<AtomicU64>,
        items: Arc<Mutex<Vec<(u64, Obs)>>>,
    },
    Poll {
        seq: Arc<PollSeq>,
        items: Arc<PollBuf>,
    },
}

impl ObsBuf {
    pub(crate) fn record(&self, time: u64, proc: ProcId, key: &'static str, idx: u32, value: i64) {
        let obs = Obs {
            time,
            proc,
            key,
            idx,
            value,
        };
        match self {
            ObsBuf::Shared { seq, items } => {
                let stamp = seq.fetch_add(1, Ordering::Relaxed);
                items.lock().push((stamp, obs));
            }
            ObsBuf::Poll { seq, items } => {
                items.0.borrow_mut().push((seq.next(), obs));
            }
        }
    }

    /// Grows the buffer's capacity ahead of the run (sized from the step
    /// budget by the runner, so steady-state records never reallocate).
    pub(crate) fn reserve(&self, additional: usize) {
        match self {
            ObsBuf::Shared { items, .. } => items.lock().reserve(additional),
            ObsBuf::Poll { items, .. } => items.0.borrow_mut().reserve(additional),
        }
    }

    pub(crate) fn take_items(&self) -> Vec<(u64, Obs)> {
        match self {
            ObsBuf::Shared { items, .. } => std::mem::take(&mut items.lock()),
            ObsBuf::Poll { items, .. } => std::mem::take(&mut items.0.borrow_mut()),
        }
    }

    /// Number of observations recorded so far (used by the runner to
    /// mark a position before granting a step).
    pub(crate) fn mark(&self) -> usize {
        match self {
            ObsBuf::Shared { items, .. } => items.lock().len(),
            ObsBuf::Poll { items, .. } => items.0.borrow().len(),
        }
    }

    /// Appends the observations recorded since `mark` into `out` (what
    /// one granted step observed; fed to the nemesis for trace-aware
    /// triggers). `out` is a runner-owned scratch buffer reused across
    /// steps.
    pub(crate) fn since_into(&self, mark: usize, out: &mut Vec<Obs>) {
        match self {
            ObsBuf::Shared { items, .. } => {
                out.extend(items.lock()[mark..].iter().map(|(_, o)| *o));
            }
            ObsBuf::Poll { items, .. } => {
                out.extend(items.0.borrow()[mark..].iter().map(|(_, o)| *o));
            }
        }
    }

    /// Merges buffers into one observation list in global recording order.
    pub(crate) fn merge(bufs: impl IntoIterator<Item = ObsBuf>) -> Vec<Obs> {
        let mut all: Vec<(u64, Obs)> = Vec::new();
        for buf in bufs {
            all.extend(buf.take_items());
        }
        all.sort_by_key(|(stamp, _)| *stamp);
        all.into_iter().map(|(_, o)| o).collect()
    }
}

/// Thread-safe sink the tasks append observations to while running.
pub(crate) struct TraceSink {
    obs: Mutex<Vec<Obs>>,
}

impl TraceSink {
    pub(crate) fn new() -> Self {
        TraceSink {
            obs: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn record(&self, time: u64, proc: ProcId, key: &'static str, idx: u32, value: i64) {
        self.obs.lock().push(Obs {
            time,
            proc,
            key,
            idx,
            value,
        });
    }

    pub(crate) fn drain(&self) -> Vec<Obs> {
        std::mem::take(&mut self.obs.lock())
    }
}

/// The complete record of a run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// `steps[t]` is the process that took the step at time `t`.
    pub steps: Vec<ProcId>,
    /// All observations, in recording order (which is also time order).
    pub obs: Vec<Obs>,
    /// Crash events `(time, process)` that were applied during the run
    /// (from the static crash plan and from nemesis injections alike).
    pub crashes: Vec<(u64, ProcId)>,
    /// Nemesis injections applied during the run, in firing order.
    pub injections: Vec<crate::nemesis::InjectionRecord>,
}

impl Trace {
    /// Total number of steps in the run.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the run took no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The time at which `p` crashed, if it did.
    pub fn crash_time(&self, p: ProcId) -> Option<u64> {
        self.crashes.iter().find(|(_, q)| *q == p).map(|(t, _)| *t)
    }

    /// Whether `p` is *correct* in this run (never crashed).
    pub fn is_correct(&self, p: ProcId) -> bool {
        self.crash_time(p).is_none()
    }

    /// The time series of observations of `(proc, key, idx)`.
    pub fn obs_series(&self, proc: ProcId, key: &'static str, idx: u32) -> Vec<(u64, i64)> {
        self.obs
            .iter()
            .filter(|o| o.proc == proc && o.key == key && o.idx == idx)
            .map(|o| (o.time, o.value))
            .collect()
    }

    /// The last observed value of `(proc, key, idx)`, if any.
    pub fn last_value(&self, proc: ProcId, key: &'static str, idx: u32) -> Option<i64> {
        self.obs
            .iter()
            .rev()
            .find(|o| o.proc == proc && o.key == key && o.idx == idx)
            .map(|o| o.value)
    }

    /// Number of steps each process took, indexed by process id.
    pub fn step_counts(&self, n: usize) -> Vec<u64> {
        let mut counts = vec![0u64; n];
        for p in &self.steps {
            counts[p.0] += 1;
        }
        counts
    }

    /// The distinct `(key, idx)` pairs observed by `proc` (diagnostics).
    pub fn observed_keys(&self, proc: ProcId) -> Vec<(&'static str, u32)> {
        let mut set = BTreeMap::new();
        for o in self.obs.iter().filter(|o| o.proc == proc) {
            set.insert((o.key, o.idx), ());
        }
        set.into_keys().collect()
    }

    /// Renders an ASCII timeline of the run: one row per process, one
    /// column per bucket of `bucket` steps; each cell shows how busy the
    /// process was in that bucket (` `, `.`, `:`, `#` for 0 %, <25 %,
    /// <75 %, ≥75 % of an even share) with `X` marking the crash bucket.
    /// A debugging aid for schedules and starvation questions.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is 0.
    pub fn ascii_timeline(&self, n: usize, bucket: u64) -> String {
        assert!(bucket > 0, "bucket must be positive");
        let total = self.len() as u64;
        let cols = total.div_ceil(bucket) as usize;
        let mut counts = vec![vec![0u64; cols]; n];
        for (t, p) in self.steps.iter().enumerate() {
            counts[p.0][t / bucket as usize] += 1;
        }
        let fair = bucket as f64 / n as f64;
        let mut out = String::new();
        for (p, row) in counts.iter().enumerate() {
            out.push_str(&format!("p{p:<2} |"));
            let crash_col = self.crash_time(ProcId(p)).map(|t| (t / bucket) as usize);
            for (c, &k) in row.iter().enumerate() {
                let ch = if crash_col == Some(c) {
                    'X'
                } else if k == 0 {
                    ' '
                } else if (k as f64) < fair * 0.25 {
                    '.'
                } else if (k as f64) < fair * 0.75 {
                    ':'
                } else {
                    '#'
                };
                out.push(ch);
            }
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_trace() -> Trace {
        Trace {
            steps: vec![ProcId(0), ProcId(1), ProcId(0), ProcId(1), ProcId(1)],
            obs: vec![
                Obs {
                    time: 0,
                    proc: ProcId(0),
                    key: "x",
                    idx: 0,
                    value: 1,
                },
                Obs {
                    time: 2,
                    proc: ProcId(0),
                    key: "x",
                    idx: 0,
                    value: 2,
                },
                Obs {
                    time: 3,
                    proc: ProcId(1),
                    key: "x",
                    idx: 0,
                    value: 9,
                },
                Obs {
                    time: 4,
                    proc: ProcId(1),
                    key: "y",
                    idx: 3,
                    value: 7,
                },
            ],
            crashes: vec![(4, ProcId(1))],
            injections: vec![],
        }
    }

    #[test]
    fn obs_buf_merge_restores_recording_order() {
        for seq in [ObsSeq::shared(), ObsSeq::poll()] {
            let a = seq.new_buf();
            let b = seq.new_buf();
            // Interleave records across buffers; same `time` throughout,
            // so only the stamp can restore the order.
            a.record(5, ProcId(0), "x", 0, 1);
            b.record(5, ProcId(1), "x", 0, 2);
            a.record(5, ProcId(0), "x", 0, 3);
            let merged = ObsBuf::merge([b, a]);
            let values: Vec<i64> = merged.iter().map(|o| o.value).collect();
            assert_eq!(values, vec![1, 2, 3]);
        }
    }

    #[test]
    fn obs_buf_mark_and_since_into_agree_across_variants() {
        for seq in [ObsSeq::shared(), ObsSeq::poll()] {
            let buf = seq.new_buf();
            buf.record(0, ProcId(0), "x", 0, 1);
            let mark = buf.mark();
            assert_eq!(mark, 1);
            buf.record(1, ProcId(0), "x", 0, 2);
            buf.record(2, ProcId(0), "y", 1, 3);
            let mut out = Vec::new();
            buf.since_into(mark, &mut out);
            let vals: Vec<i64> = out.iter().map(|o| o.value).collect();
            assert_eq!(vals, vec![2, 3]);
        }
    }

    #[test]
    fn series_filters_by_proc_key_idx() {
        let t = mk_trace();
        assert_eq!(t.obs_series(ProcId(0), "x", 0), vec![(0, 1), (2, 2)]);
        assert_eq!(t.obs_series(ProcId(1), "y", 3), vec![(4, 7)]);
        assert!(t.obs_series(ProcId(1), "y", 0).is_empty());
    }

    #[test]
    fn last_value_works() {
        let t = mk_trace();
        assert_eq!(t.last_value(ProcId(0), "x", 0), Some(2));
        assert_eq!(t.last_value(ProcId(0), "z", 0), None);
    }

    #[test]
    fn step_counts_and_crash() {
        let t = mk_trace();
        assert_eq!(t.step_counts(2), vec![2, 3]);
        assert_eq!(t.crash_time(ProcId(1)), Some(4));
        assert!(t.is_correct(ProcId(0)));
        assert!(!t.is_correct(ProcId(1)));
    }

    #[test]
    fn observed_keys_sorted_unique() {
        let t = mk_trace();
        assert_eq!(t.observed_keys(ProcId(1)), vec![("x", 0), ("y", 3)]);
    }

    #[test]
    fn ascii_timeline_shapes() {
        let mut steps = vec![ProcId(0); 10];
        steps.extend(vec![ProcId(1); 10]);
        let t = Trace {
            steps,
            obs: vec![],
            crashes: vec![(15, ProcId(1))],
            injections: vec![],
        };
        let art = t.ascii_timeline(2, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        // p0 fully busy in bucket 0, idle in bucket 1.
        assert!(lines[0].contains("|# |"), "got {art}");
        // p1 idle then crashed-in-bucket-1.
        assert!(lines[1].contains("| X|"), "got {art}");
    }

    #[test]
    #[should_panic(expected = "bucket must be positive")]
    fn ascii_timeline_rejects_zero_bucket() {
        let t = mk_trace();
        let _ = t.ascii_timeline(2, 0);
    }
}
