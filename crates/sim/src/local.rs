//! Process-local variables shared between the tasks of one process.
//!
//! The paper's algorithms communicate between co-located modules through
//! *local* input/output variables: `candidate_p`, `leader_p`,
//! `monitoring_p[q]`, `active-for_q[p]`, `status_p[q]`, `faultCntr_p[q]`.
//! These are not shared registers — reading or writing them costs no step
//! by itself (the enclosing loop iteration pays the step) — but they are
//! read and written by different tasks of the same process, so they need
//! interior mutability. [`Local`] is a tiny `Arc<Mutex<T>>` wrapper with
//! value semantics for get/set.

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A process-local variable shared by the tasks of one process.
///
/// Cloning a `Local` clones the *handle*; all clones see the same value.
///
/// ```
/// use tbwf_sim::Local;
///
/// let candidate = Local::new(false);
/// let omega_view = candidate.clone(); // another task's handle
/// candidate.set(true);
/// assert!(omega_view.get());
/// ```
pub struct Local<T> {
    inner: Arc<Mutex<T>>,
}

impl<T> Clone for Local<T> {
    fn clone(&self) -> Self {
        Local {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone> Local<T> {
    /// Creates a new local variable with the given initial value.
    pub fn new(value: T) -> Self {
        Local {
            inner: Arc::new(Mutex::new(value)),
        }
    }

    /// Reads the current value.
    pub fn get(&self) -> T {
        self.inner.lock().clone()
    }

    /// Writes a new value.
    pub fn set(&self, value: T) {
        *self.inner.lock() = value;
    }

    /// Applies `f` to the value under the lock and returns its result.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

impl<T: Clone + Default> Default for Local<T> {
    fn default() -> Self {
        Local::new(T::default())
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for Local<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Local({:?})", self.get())
    }
}

/// A vector of local variables indexed by process id, convenient for the
/// paper's `var[q]`-style vectors.
#[derive(Clone)]
pub struct LocalVec<T> {
    cells: Vec<Local<T>>,
}

impl<T: Clone> LocalVec<T> {
    /// Creates `n` local variables, all initialized to `init`.
    pub fn new(n: usize, init: T) -> Self {
        LocalVec {
            cells: (0..n).map(|_| Local::new(init.clone())).collect(),
        }
    }

    /// The cell for process `q`.
    pub fn cell(&self, q: crate::ProcId) -> &Local<T> {
        &self.cells[q.0]
    }

    /// Reads `var[q]`.
    pub fn get(&self, q: crate::ProcId) -> T {
        self.cells[q.0].get()
    }

    /// Writes `var[q]`.
    pub fn set(&self, q: crate::ProcId, value: T) {
        self.cells[q.0].set(value);
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for LocalVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.cells.iter().map(|c| c.get()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcId;

    #[test]
    fn get_set_roundtrip() {
        let v = Local::new(5);
        assert_eq!(v.get(), 5);
        v.set(9);
        assert_eq!(v.get(), 9);
    }

    #[test]
    fn clones_share_state() {
        let a = Local::new("x".to_string());
        let b = a.clone();
        b.set("y".to_string());
        assert_eq!(a.get(), "y");
    }

    #[test]
    fn update_returns_result() {
        let v = Local::new(10);
        let old = v.update(|x| {
            let old = *x;
            *x += 1;
            old
        });
        assert_eq!(old, 10);
        assert_eq!(v.get(), 11);
    }

    #[test]
    fn local_vec_indexing() {
        let v = LocalVec::new(4, 0i64);
        v.set(ProcId(2), 7);
        assert_eq!(v.get(ProcId(2)), 7);
        assert_eq!(v.get(ProcId(0)), 0);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
    }
}
