//! Identifiers for processes and tasks.

use std::fmt;

/// Identifier of a process in `Π = {0, …, n−1}`.
///
/// Matches the paper's process naming: processes are totally ordered by
/// their id, and several algorithms break ties by picking the process with
/// the *smallest* id (e.g. line 14 of Figure 3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub usize);

impl ProcId {
    /// Returns the underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcId {
    fn from(v: usize) -> Self {
        ProcId(v)
    }
}

/// Identifier of a task within the simulation.
///
/// A task is one cooperating loop of a process (the paper composes modules
/// such as the Ω∆ main loop and the activity-monitor loops into a single
/// automaton; each module is one task here). The process's steps rotate
/// round-robin over its live tasks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId {
    /// The owning process.
    pub proc: ProcId,
    /// Index of the task within the process (creation order).
    pub index: usize,
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.proc, self.index)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.proc, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_ordering_matches_index() {
        assert!(ProcId(0) < ProcId(1));
        assert!(ProcId(3) > ProcId(2));
        assert_eq!(ProcId(5).index(), 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProcId(2).to_string(), "p2");
        let t = TaskId {
            proc: ProcId(1),
            index: 4,
        };
        assert_eq!(t.to_string(), "p1#4");
    }

    #[test]
    fn from_usize() {
        let p: ProcId = 7usize.into();
        assert_eq!(p, ProcId(7));
    }
}
