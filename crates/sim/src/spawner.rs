//! The [`TaskSpawner`] abstraction: where algorithm tasks get attached.
//!
//! The paper's algorithms are written as task bodies over
//! [`Env`](crate::Env); *who runs them* is orthogonal. The deterministic
//! simulator attaches them to [`SimBuilder`] processes; the native
//! harness (in the `tbwf` crate) spawns one OS thread per task. Mesh and
//! Ω∆ installers accept `&mut dyn TaskSpawner` and therefore work on
//! both backends unchanged.

use crate::env::Env;
use crate::halt::SimResult;
use crate::ids::ProcId;
use crate::runner::SimBuilder;
use crate::step::{Control, StepCtx, Stepper};

/// A task body: runs forever against an [`Env`], returning on halt.
pub type TaskBody = Box<dyn FnOnce(&dyn Env) -> SimResult<()> + Send + 'static>;

/// Something that can host algorithm tasks for processes `0..n`.
pub trait TaskSpawner {
    /// Attaches `body` as a task of process `pid`.
    fn spawn_task(&mut self, pid: ProcId, name: &str, body: TaskBody);

    /// Attaches a poll-driven [`Stepper`] as a task of process `pid`.
    ///
    /// The default implementation wraps the stepper in a blocking task
    /// body (each `Yield` becomes an `Env::tick`), so any spawner that
    /// can host blocking tasks can host steppers. Backends with a native
    /// poll loop — [`SimBuilder`] — override this to skip the thread
    /// entirely.
    fn spawn_stepper(&mut self, pid: ProcId, name: &str, stepper: Box<dyn Stepper>) {
        self.spawn_task(pid, name, stepper_as_blocking_task(stepper));
    }
}

/// Adapts a [`Stepper`] to a blocking [`TaskBody`]: runs one segment per
/// `tick`. The tick sits *after* the segment, exactly where the poll
/// backend counts the `Yield`, so both backends consume steps at
/// identical points.
pub fn stepper_as_blocking_task(mut stepper: Box<dyn Stepper>) -> TaskBody {
    Box::new(move |env| loop {
        match stepper.step(&mut StepCtx::new(env)) {
            Control::Yield => env.tick()?,
            Control::Done => return Ok(()),
        }
    })
}

impl TaskSpawner for SimBuilder {
    fn spawn_task(&mut self, pid: ProcId, name: &str, body: TaskBody) {
        self.add_task(pid, name, move |env| body(&env));
    }

    fn spawn_stepper(&mut self, pid: ProcId, name: &str, stepper: Box<dyn Stepper>) {
        self.add_stepper(pid, name, stepper);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::RoundRobin;
    use crate::RunConfig;

    fn generic_install(spawner: &mut dyn TaskSpawner, pid: ProcId) {
        spawner.spawn_task(
            pid,
            "generic",
            Box::new(|env| {
                for i in 0..5 {
                    env.observe("i", 0, i);
                    env.tick()?;
                }
                Ok(())
            }),
        );
    }

    #[test]
    fn sim_builder_hosts_generic_tasks() {
        let mut b = SimBuilder::new();
        let p = b.add_process("p0");
        generic_install(&mut b, p);
        let report = b.build().run(RunConfig::new(100, RoundRobin::new()));
        report.assert_no_panics();
        assert_eq!(report.trace.obs_series(p, "i", 0).len(), 5);
    }

    struct FiveSteps {
        i: i64,
    }

    impl Stepper for FiveSteps {
        fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control {
            if self.i < 5 {
                ctx.observe("i", 0, self.i);
                self.i += 1;
                Control::Yield
            } else {
                Control::Done
            }
        }
    }

    /// A spawner relying on the default (blocking-adapter) impl of
    /// `spawn_stepper`: the stepper runs on a gate-backed thread but
    /// behaves identically to the poll backend.
    struct DefaultOnly<'a>(&'a mut SimBuilder);

    impl TaskSpawner for DefaultOnly<'_> {
        fn spawn_task(&mut self, pid: ProcId, name: &str, body: TaskBody) {
            self.0.spawn_task(pid, name, body);
        }
    }

    #[test]
    fn default_spawn_stepper_adapts_to_blocking() {
        let run = |native: bool| {
            let mut b = SimBuilder::new();
            let p = b.add_process("p0");
            if native {
                b.spawn_stepper(p, "s", Box::new(FiveSteps { i: 0 }));
            } else {
                DefaultOnly(&mut b).spawn_stepper(p, "s", Box::new(FiveSteps { i: 0 }));
            }
            b.build().run(RunConfig::new(100, RoundRobin::new()))
        };
        let rn = run(true);
        let rt = run(false);
        rn.assert_no_panics();
        rt.assert_no_panics();
        assert_eq!(rn.trace.steps, rt.trace.steps);
        assert_eq!(rn.trace.obs, rt.trace.obs);
    }
}
