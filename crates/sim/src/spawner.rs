//! The [`TaskSpawner`] abstraction: where algorithm tasks get attached.
//!
//! The paper's algorithms are written as task bodies over
//! [`Env`](crate::Env); *who runs them* is orthogonal. The deterministic
//! simulator attaches them to [`SimBuilder`] processes; the native
//! harness (in the `tbwf` crate) spawns one OS thread per task. Mesh and
//! Ω∆ installers accept `&mut dyn TaskSpawner` and therefore work on
//! both backends unchanged.

use crate::env::Env;
use crate::halt::SimResult;
use crate::ids::ProcId;
use crate::runner::SimBuilder;

/// A task body: runs forever against an [`Env`], returning on halt.
pub type TaskBody = Box<dyn FnOnce(&dyn Env) -> SimResult<()> + Send + 'static>;

/// Something that can host algorithm tasks for processes `0..n`.
pub trait TaskSpawner {
    /// Attaches `body` as a task of process `pid`.
    fn spawn_task(&mut self, pid: ProcId, name: &str, body: TaskBody);
}

impl TaskSpawner for SimBuilder {
    fn spawn_task(&mut self, pid: ProcId, name: &str, body: TaskBody) {
        self.add_task(pid, name, move |env| body(&env));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::RoundRobin;
    use crate::RunConfig;

    fn generic_install(spawner: &mut dyn TaskSpawner, pid: ProcId) {
        spawner.spawn_task(
            pid,
            "generic",
            Box::new(|env| {
                for i in 0..5 {
                    env.observe("i", 0, i);
                    env.tick()?;
                }
                Ok(())
            }),
        );
    }

    #[test]
    fn sim_builder_hosts_generic_tasks() {
        let mut b = SimBuilder::new();
        let p = b.add_process("p0");
        generic_install(&mut b, p);
        let report = b.build().run(RunConfig::new(100, RoundRobin::new()));
        report.assert_no_panics();
        assert_eq!(report.trace.obs_series(p, "i", 0).len(), 5);
    }
}
