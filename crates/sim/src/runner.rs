//! The simulation runner: builds processes/tasks and executes a run.

use crate::env::{CrashFlags, TaskEnv};
use crate::gate::{Gate, Grant};
use crate::halt::SimResult;
use crate::ids::{ProcId, TaskId};
use crate::nemesis::Nemesis;
use crate::schedule::{Schedule, ScheduleView};
use crate::step::{Control, StepCtx, StepEnv, Stepper};
use crate::trace::{ObsBuf, ObsSeq, Trace};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type TaskBody = Box<dyn FnOnce(TaskEnv) -> SimResult<()> + Send + 'static>;

enum TaskSpecKind {
    Thread(TaskBody),
    Stepper(Box<dyn Stepper>),
}

struct TaskSpec {
    name: String,
    kind: TaskSpecKind,
}

struct ProcSpec {
    name: String,
    tasks: Vec<TaskSpec>,
}

/// Builder for a simulated system.
///
/// Add processes, then add one or more tasks to each; `build` spawns the
/// task threads parked on their gates.
#[derive(Default)]
pub struct SimBuilder {
    procs: Vec<ProcSpec>,
}

impl SimBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a process and returns its id (ids are assigned in order).
    pub fn add_process(&mut self, name: &str) -> ProcId {
        self.procs.push(ProcSpec {
            name: name.to_string(),
            tasks: Vec::new(),
        });
        ProcId(self.procs.len() - 1)
    }

    /// Adds a task to process `pid`.
    ///
    /// The task body receives a [`TaskEnv`] and should propagate
    /// [`Halted`](crate::Halted) with `?`. A body that returns `Ok(())`
    /// simply finishes (useful for finite workloads).
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not returned by [`SimBuilder::add_process`].
    pub fn add_task<F>(&mut self, pid: ProcId, name: &str, body: F)
    where
        F: FnOnce(TaskEnv) -> SimResult<()> + Send + 'static,
    {
        self.procs[pid.0].tasks.push(TaskSpec {
            name: name.to_string(),
            kind: TaskSpecKind::Thread(Box::new(body)),
        });
    }

    /// Adds a poll-driven task to process `pid`.
    ///
    /// The stepper is driven by direct [`Stepper::step`] calls from the
    /// scheduler — no thread is spawned for it. Stepper and thread-backed
    /// tasks coexist freely within one process; see the
    /// [`step`](crate::step) module for the equivalence contract.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not returned by [`SimBuilder::add_process`].
    pub fn add_stepper(&mut self, pid: ProcId, name: &str, stepper: Box<dyn Stepper>) {
        self.procs[pid.0].tasks.push(TaskSpec {
            name: name.to_string(),
            kind: TaskSpecKind::Stepper(stepper),
        });
    }

    /// Number of processes added so far.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Spawns all task threads (parked) and returns the runnable system.
    ///
    /// # Panics
    ///
    /// Panics if any process has no tasks.
    pub fn build(self) -> Sim {
        let clock = Arc::new(AtomicU64::new(0));
        // All-stepper systems run entirely on the scheduler thread, so
        // their observation buffers can skip the cross-thread machinery
        // (atomic stamp + mutex) the thread compat backend needs.
        let all_steppers = self.procs.iter().all(|p| {
            p.tasks
                .iter()
                .all(|t| matches!(t.kind, TaskSpecKind::Stepper(_)))
        });
        let obs_seq = if all_steppers {
            ObsSeq::poll()
        } else {
            ObsSeq::shared()
        };
        let crash_flags = Arc::new(CrashFlags::new(self.procs.len()));
        let mut procs = Vec::with_capacity(self.procs.len());
        for (pi, spec) in self.procs.into_iter().enumerate() {
            assert!(!spec.tasks.is_empty(), "process {} has no tasks", spec.name);
            let mut tasks = Vec::with_capacity(spec.tasks.len());
            for (ti, t) in spec.tasks.into_iter().enumerate() {
                let obs = obs_seq.new_buf();
                let backend = match t.kind {
                    TaskSpecKind::Stepper(stepper) => TaskBackend::Stepper {
                        stepper,
                        env: StepEnv {
                            pid: ProcId(pi),
                            clock: Arc::clone(&clock),
                            obs: obs.clone(),
                            crashed: Arc::clone(&crash_flags),
                        },
                    },
                    TaskSpecKind::Thread(body) => {
                        let gate = Arc::new(Gate::new());
                        let tid = TaskId {
                            proc: ProcId(pi),
                            index: ti,
                        };
                        let env = TaskEnv {
                            tid,
                            gate: Arc::clone(&gate),
                            clock: Arc::clone(&clock),
                            obs: obs.clone(),
                            crashed: Arc::clone(&crash_flags),
                        };
                        let g2 = Arc::clone(&gate);
                        let thread_name = format!("{}-{}", spec.name, t.name);
                        let handle = std::thread::Builder::new()
                            .name(thread_name)
                            .stack_size(256 * 1024)
                            .spawn(move || {
                                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    if g2.wait_for_go().is_err() {
                                        return Ok(());
                                    }
                                    body(env)
                                }));
                                g2.exit();
                                match result {
                                    Ok(_) => None,
                                    Err(panic) => Some(panic_message(&*panic)),
                                }
                            })
                            .expect("failed to spawn task thread");
                        TaskBackend::Thread {
                            gate,
                            handle: Some(handle),
                        }
                    }
                };
                tasks.push(TaskRt {
                    name: t.name,
                    obs,
                    backend,
                    exited: false,
                    finished: false,
                    panic: None,
                });
            }
            procs.push(ProcRt {
                name: spec.name,
                tasks,
                cursor: 0,
                crashed: false,
            });
        }
        Sim {
            procs,
            clock,
            crash_flags,
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// The two execution backends a task can run on.
enum TaskBackend {
    /// Original backend: an OS thread parked behind a rendezvous gate;
    /// granting a step costs two condvar handoffs.
    Thread {
        gate: Arc<Gate>,
        handle: Option<JoinHandle<Option<String>>>,
    },
    /// Poll-driven backend: the scheduler calls `Stepper::step` directly;
    /// granting a step is a plain function call.
    Stepper {
        stepper: Box<dyn Stepper>,
        env: StepEnv,
    },
}

struct TaskRt {
    name: String,
    obs: ObsBuf,
    backend: TaskBackend,
    exited: bool,
    /// Exited by completing (vs. by panicking); for thread tasks a panic
    /// discovered at join time overrides this.
    finished: bool,
    panic: Option<String>,
}

struct ProcRt {
    name: String,
    tasks: Vec<TaskRt>,
    cursor: usize,
    crashed: bool,
}

impl ProcRt {
    fn runnable(&self) -> bool {
        !self.crashed && self.tasks.iter().any(|t| !t.exited)
    }
}

/// Configuration of a single run.
pub struct RunConfig {
    /// Maximum number of global steps to execute.
    pub max_steps: u64,
    /// Crash plan: `(time, process)` pairs; at each listed time the process
    /// stops being scheduled forever.
    pub crashes: Vec<(u64, ProcId)>,
    /// The schedule (adversary).
    pub schedule: Box<dyn Schedule>,
    /// Optional nemesis: dynamic, trace-aware fault injection (see the
    /// [`nemesis`](crate::nemesis) module).
    pub nemesis: Option<Nemesis>,
}

impl RunConfig {
    /// Creates a run configuration with no crashes.
    pub fn new(max_steps: u64, schedule: impl Schedule + 'static) -> Self {
        RunConfig {
            max_steps,
            crashes: Vec::new(),
            schedule: Box::new(schedule),
            nemesis: None,
        }
    }

    /// Adds a crash of `p` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if the crash plan already crashes `p`: a process crashes at
    /// most once in the paper's model (no crash-recovery), and a silent
    /// duplicate would hide a misconfigured experiment. Out-of-range ids
    /// are caught by [`Sim::run`], which knows the system size.
    #[must_use]
    pub fn crash(mut self, t: u64, p: ProcId) -> Self {
        assert!(
            !self.crashes.iter().any(|&(_, q)| q == p),
            "duplicate crash of process {} in the crash plan",
            p.0
        );
        self.crashes.push((t, p));
        self
    }

    /// Attaches a nemesis to the run.
    #[must_use]
    pub fn with_nemesis(mut self, nemesis: Nemesis) -> Self {
        self.nemesis = Some(nemesis);
        self
    }
}

/// How a task ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TaskOutcome {
    /// Still blocked in an infinite loop when the run was halted (normal
    /// for the paper's `repeat forever` algorithms).
    Halted,
    /// The task body returned `Ok(())` before the run ended.
    Finished,
    /// The task panicked; the message is attached.
    Panicked(String),
}

/// Per-process summary of a run.
#[derive(Clone, Debug)]
pub struct ProcReport {
    /// Process name given at build time.
    pub name: String,
    /// Whether the crash plan crashed this process.
    pub crashed: bool,
    /// Outcome of each task, in creation order.
    pub tasks: Vec<(String, TaskOutcome)>,
}

/// The result of a run: the trace plus per-process outcomes.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The recorded trace.
    pub trace: Trace,
    /// Per-process reports, indexed by process id.
    pub procs: Vec<ProcReport>,
}

impl RunReport {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Panics if any task panicked, reporting all panic messages.
    pub fn assert_no_panics(&self) {
        let mut msgs = Vec::new();
        for (p, pr) in self.procs.iter().enumerate() {
            for (tname, out) in &pr.tasks {
                if let TaskOutcome::Panicked(m) = out {
                    msgs.push(format!("p{p}/{tname}: {m}"));
                }
            }
        }
        assert!(msgs.is_empty(), "task panics: {msgs:?}");
    }
}

/// A built system, ready to run once.
pub struct Sim {
    procs: Vec<ProcRt>,
    clock: Arc<AtomicU64>,
    /// Shared with every task env so registers can tell that a process
    /// has crashed (see [`crate::Env::is_crashed`]).
    crash_flags: Arc<CrashFlags>,
}

impl Sim {
    /// Executes the run to completion and returns the report.
    ///
    /// The run ends when `max_steps` steps have been taken or no process is
    /// runnable. All task threads are then halted and joined.
    ///
    /// # Panics
    ///
    /// Panics before the first step if the crash plan names a process id
    /// outside the system, crashes the same process twice, or if an
    /// attached nemesis has an invalid fault plan (out-of-range targets,
    /// unregistered switch/dial/gauge names, schedule actions without a
    /// [`ScheduleCtl`](crate::schedule::ScheduleCtl)).
    pub fn run(mut self, mut config: RunConfig) -> RunReport {
        let n = self.procs.len();
        let mut crash_seen = vec![false; n];
        for &(_, cp) in &config.crashes {
            assert!(
                cp.0 < n,
                "crash plan names process {} but the system has {n} processes",
                cp.0
            );
            assert!(
                !crash_seen[cp.0],
                "duplicate crash of process {} in the crash plan",
                cp.0
            );
            crash_seen[cp.0] = true;
        }
        if let Some(nem) = &config.nemesis {
            if let Err(e) = nem.validate(n) {
                panic!("invalid fault plan: {e}");
            }
        }
        // Pre-size the trace buffers from the step budget so steady-state
        // recording never reallocates. Both reserves are capped: huge
        // budgets (the E11 n = 64 sweep asks for ~1.6e8 steps) would
        // otherwise pre-commit gigabytes before the first step runs.
        let steps_cap = (config.max_steps as usize).min(1 << 22);
        let total_tasks: usize = self.procs.iter().map(|p| p.tasks.len()).sum();
        let per_task = ((config.max_steps as usize) / total_tasks.max(1)).min(1 << 16);
        for proc in &self.procs {
            for task in &proc.tasks {
                task.obs.reserve(per_task);
            }
        }
        let mut steps: Vec<ProcId> = Vec::with_capacity(steps_cap);
        let mut step_counts = vec![0u64; n];
        let mut crashes_applied: Vec<(u64, ProcId)> = Vec::new();
        config.crashes.sort_by_key(|(t, _)| *t);
        let mut crash_iter = config.crashes.iter().peekable();
        // Scratch buffers reused across steps (the hot loop allocates
        // nothing per iteration).
        let mut runnable = vec![false; n];
        let mut step_obs: Vec<crate::trace::Obs> = Vec::new();

        for t in 0..config.max_steps {
            while let Some(&&(ct, cp)) = crash_iter.peek() {
                if ct <= t {
                    if !self.procs[cp.0].crashed {
                        self.procs[cp.0].crashed = true;
                        self.crash_flags.set(cp);
                        crashes_applied.push((t, cp));
                    }
                    crash_iter.next();
                } else {
                    break;
                }
            }
            if let Some(nem) = config.nemesis.as_mut() {
                for cp in nem.poll_pre(t, &step_counts) {
                    if cp.0 < n && !self.procs[cp.0].crashed {
                        self.procs[cp.0].crashed = true;
                        self.crash_flags.set(cp);
                        crashes_applied.push((t, cp));
                    }
                }
            }
            for (flag, proc) in runnable.iter_mut().zip(&self.procs) {
                *flag = proc.runnable();
            }
            let view = ScheduleView {
                n,
                runnable: &runnable,
                time: t,
            };
            if !view.any_runnable() {
                break;
            }
            let mut p = config.schedule.next(&view);
            if p.0 >= n || !runnable[p.0] {
                p = view
                    .next_runnable_from(p.0 % n)
                    .expect("some process runnable");
            }
            // Rotate to the process's next live task and grant one step.
            let watch_obs = config.nemesis.as_ref().is_some_and(|nm| nm.wants_obs());
            let proc = &mut self.procs[p.0];
            let ntasks = proc.tasks.len();
            let mut granted = false;
            step_obs.clear();
            for k in 0..ntasks {
                let ti = (proc.cursor + k) % ntasks;
                if proc.tasks[ti].exited {
                    continue;
                }
                // Relaxed is enough for the clock: steppers read it from
                // this very thread, and a thread task only reads it after
                // the gate rendezvous, whose mutex provides the
                // happens-before edge.
                self.clock.store(t, Ordering::Relaxed);
                let task = &mut proc.tasks[ti];
                let obs_mark = if watch_obs { task.obs.mark() } else { 0 };
                // `finished`/`panic` only apply on `TaskExited`.
                let (grant, finished, panic) = match &mut task.backend {
                    TaskBackend::Thread { gate, .. } => (gate.grant(), true, None),
                    TaskBackend::Stepper { stepper, env } => {
                        let step = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            stepper.step(&mut StepCtx::new(&*env))
                        }));
                        match step {
                            Ok(Control::Yield) => (Grant::StepDone, false, None),
                            Ok(Control::Done) => (Grant::TaskExited, true, None),
                            Err(p) => (Grant::TaskExited, false, Some(panic_message(&*p))),
                        }
                    }
                };
                match grant {
                    Grant::StepDone => {
                        proc.cursor = ti + 1;
                        granted = true;
                        if watch_obs {
                            task.obs.since_into(obs_mark, &mut step_obs);
                        }
                        break;
                    }
                    Grant::TaskExited => {
                        task.exited = true;
                        task.finished = finished;
                        task.panic = panic;
                    }
                }
            }
            if granted {
                steps.push(p);
                step_counts[p.0] += 1;
                if let Some(nem) = config.nemesis.as_mut() {
                    for cp in nem.poll_post(t, p, &step_obs) {
                        if cp.0 < n && !self.procs[cp.0].crashed {
                            self.procs[cp.0].crashed = true;
                            self.crash_flags.set(cp);
                            crashes_applied.push((t, cp));
                        }
                    }
                }
            }
            // If no task of p could take a step (all just exited), the time
            // slot is simply skipped; the next iteration re-evaluates
            // runnability.
        }

        // Tear down: halt all gates, join all task threads (stepper tasks
        // have no thread to stop — they simply never get polled again).
        for proc in &self.procs {
            for task in &proc.tasks {
                if let TaskBackend::Thread { gate, .. } = &task.backend {
                    gate.halt();
                }
            }
        }
        let mut reports = Vec::with_capacity(n);
        for proc in &mut self.procs {
            let mut touts = Vec::new();
            for task in &mut proc.tasks {
                if let TaskBackend::Thread { handle, .. } = &mut task.backend {
                    if let Some(panic) = handle.take().and_then(|h| h.join().unwrap_or(None)) {
                        task.panic = Some(panic);
                    }
                }
                let outcome = if let Some(m) = &task.panic {
                    TaskOutcome::Panicked(m.clone())
                } else if task.exited && task.finished {
                    TaskOutcome::Finished
                } else {
                    TaskOutcome::Halted
                };
                touts.push((task.name.clone(), outcome));
            }
            reports.push(ProcReport {
                name: proc.name.clone(),
                crashed: proc.crashed,
                tasks: touts,
            });
        }

        // Merge the per-task observation buffers back into one global
        // sequence (the shared stamp counter makes the order exact).
        let obs = ObsBuf::merge(
            self.procs
                .iter()
                .flat_map(|p| p.tasks.iter().map(|t| t.obs.clone())),
        );
        let trace = Trace {
            steps,
            obs,
            crashes: crashes_applied,
            injections: config
                .nemesis
                .as_mut()
                .map(|nm| nm.take_injections())
                .unwrap_or_default(),
        };
        RunReport {
            trace,
            procs: reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{RoundRobin, Scripted};
    use crate::Env;

    #[test]
    fn round_robin_run_is_deterministic() {
        let build = || {
            let mut b = SimBuilder::new();
            for p in 0..3 {
                let pid = b.add_process(&format!("p{p}"));
                b.add_task(pid, "main", move |env| loop {
                    env.observe("t", 0, env.now() as i64);
                    env.tick()?;
                });
            }
            b.build()
        };
        let r1 = build().run(RunConfig::new(300, RoundRobin::new()));
        let r2 = build().run(RunConfig::new(300, RoundRobin::new()));
        r1.assert_no_panics();
        assert_eq!(r1.trace.steps, r2.trace.steps);
        assert_eq!(r1.trace.obs.len(), r2.trace.obs.len());
        assert_eq!(r1.trace.step_counts(3), vec![100, 100, 100]);
    }

    #[test]
    fn crash_stops_scheduling() {
        let mut b = SimBuilder::new();
        for p in 0..2 {
            let pid = b.add_process(&format!("p{p}"));
            b.add_task(pid, "main", move |env| loop {
                env.tick()?;
            });
        }
        let report = b
            .build()
            .run(RunConfig::new(100, RoundRobin::new()).crash(10, ProcId(1)));
        report.assert_no_panics();
        let counts = report.trace.step_counts(2);
        assert!(counts[1] <= 6, "crashed process kept stepping: {counts:?}");
        assert!(counts[0] >= 90);
        assert!(report.procs[1].crashed);
        assert_eq!(report.trace.crash_time(ProcId(1)), Some(10));
    }

    #[test]
    fn finished_tasks_are_skipped() {
        let mut b = SimBuilder::new();
        let p0 = b.add_process("p0");
        b.add_task(p0, "short", |env| {
            env.tick()?;
            Ok(())
        });
        b.add_task(p0, "long", |env| loop {
            env.tick()?;
        });
        let report = b.build().run(RunConfig::new(50, RoundRobin::new()));
        report.assert_no_panics();
        assert_eq!(report.procs[0].tasks[0].1, TaskOutcome::Finished);
        assert_eq!(report.procs[0].tasks[1].1, TaskOutcome::Halted);
        // All 50 steps were taken by p0 (its long task keeps running).
        assert_eq!(report.trace.step_counts(1), vec![50]);
    }

    #[test]
    fn tasks_of_one_process_rotate() {
        let mut b = SimBuilder::new();
        let p0 = b.add_process("p0");
        for t in 0..2 {
            b.add_task(p0, &format!("t{t}"), move |env| loop {
                env.observe("task", 0, t as i64);
                env.tick()?;
            });
        }
        let report = b.build().run(RunConfig::new(10, RoundRobin::new()));
        report.assert_no_panics();
        let series = report.trace.obs_series(ProcId(0), "task", 0);
        let vals: Vec<i64> = series.iter().map(|(_, v)| *v).collect();
        // strict alternation 0,1,0,1,...
        for w in vals.windows(2) {
            assert_ne!(w[0], w[1], "tasks must alternate: {vals:?}");
        }
    }

    #[test]
    fn panic_is_reported_not_propagated() {
        let mut b = SimBuilder::new();
        let p0 = b.add_process("p0");
        b.add_task(p0, "bad", |env| {
            env.tick()?;
            panic!("boom");
        });
        let p1 = b.add_process("p1");
        b.add_task(p1, "good", |env| loop {
            env.tick()?;
        });
        let report = b.build().run(RunConfig::new(30, RoundRobin::new()));
        match &report.procs[0].tasks[0].1 {
            TaskOutcome::Panicked(m) => assert!(m.contains("boom")),
            o => panic!("expected panic outcome, got {o:?}"),
        }
        assert_eq!(report.procs[1].tasks[0].1, TaskOutcome::Halted);
    }

    #[test]
    fn scripted_schedule_is_followed() {
        let mut b = SimBuilder::new();
        for p in 0..2 {
            let pid = b.add_process(&format!("p{p}"));
            b.add_task(pid, "main", move |env| loop {
                env.tick()?;
            });
        }
        let script = vec![ProcId(1), ProcId(1), ProcId(0)];
        let report = b.build().run(RunConfig::new(9, Scripted::new(script)));
        let got: Vec<usize> = report.trace.steps.iter().map(|p| p.0).collect();
        assert_eq!(got, vec![1, 1, 0, 1, 1, 0, 1, 1, 0]);
    }

    #[test]
    fn scripted_nonrunnable_decision_falls_back() {
        // A script naming a crashed process: the runner falls back to the
        // next runnable process at or after the named id, wrapping.
        let mut b = SimBuilder::new();
        for p in 0..3 {
            let pid = b.add_process(&format!("p{p}"));
            b.add_task(pid, "main", move |env| loop {
                env.tick()?;
            });
        }
        let report = b
            .build()
            .run(RunConfig::new(6, Scripted::new(vec![ProcId(1)])).crash(0, ProcId(1)));
        report.assert_no_panics();
        let got: Vec<usize> = report.trace.steps.iter().map(|p| p.0).collect();
        // Fallback from id 1 finds p2 first (1 is crashed), every slot.
        assert_eq!(got, vec![2, 2, 2, 2, 2, 2]);
    }

    /// Observes the step index, yields `yields` times, then finishes.
    struct CountingStepper {
        yields: u64,
        done: u64,
    }

    impl Stepper for CountingStepper {
        fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control {
            if self.done < self.yields {
                ctx.observe("i", 0, self.done as i64);
                self.done += 1;
                Control::Yield
            } else {
                ctx.observe("final", 0, -1);
                Control::Done
            }
        }
    }

    #[test]
    fn stepper_tasks_run_without_threads() {
        let mut b = SimBuilder::new();
        let p0 = b.add_process("p0");
        b.add_stepper(
            p0,
            "count",
            Box::new(CountingStepper { yields: 5, done: 0 }),
        );
        let report = b.build().run(RunConfig::new(100, RoundRobin::new()));
        report.assert_no_panics();
        assert_eq!(report.procs[0].tasks[0].1, TaskOutcome::Finished);
        // 5 yields = 5 counted steps; the Done segment is not counted.
        assert_eq!(report.trace.len(), 5);
        assert_eq!(report.trace.obs_series(p0, "i", 0).len(), 5);
        // The final (Done) segment still gets to observe.
        assert_eq!(report.trace.last_value(p0, "final", 0), Some(-1));
    }

    #[test]
    fn stepper_matches_blocking_task_exactly() {
        // The same program on both backends: identical steps and
        // identical observation sequences.
        let run_stepper = || {
            let mut b = SimBuilder::new();
            let p0 = b.add_process("p0");
            b.add_stepper(p0, "m", Box::new(CountingStepper { yields: 7, done: 0 }));
            let p1 = b.add_process("p1");
            b.add_task(p1, "spin", |env| loop {
                env.tick()?;
            });
            b.build().run(RunConfig::new(40, RoundRobin::new()))
        };
        let run_blocking = || {
            let mut b = SimBuilder::new();
            let p0 = b.add_process("p0");
            b.add_task(p0, "m", |env| {
                for i in 0..7 {
                    env.observe("i", 0, i);
                    env.tick()?;
                }
                env.observe("final", 0, -1);
                Ok(())
            });
            let p1 = b.add_process("p1");
            b.add_task(p1, "spin", |env| loop {
                env.tick()?;
            });
            b.build().run(RunConfig::new(40, RoundRobin::new()))
        };
        let rs = run_stepper();
        let rb = run_blocking();
        rs.assert_no_panics();
        rb.assert_no_panics();
        assert_eq!(rs.trace.steps, rb.trace.steps);
        assert_eq!(rs.trace.obs, rb.trace.obs);
        assert_eq!(rs.procs[0].tasks[0].1, rb.procs[0].tasks[0].1);
    }

    #[test]
    fn stepper_and_thread_tasks_rotate_within_a_process() {
        struct Tagger;
        impl Stepper for Tagger {
            fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control {
                ctx.observe("task", 0, 0);
                Control::Yield
            }
        }
        let mut b = SimBuilder::new();
        let p0 = b.add_process("p0");
        b.add_stepper(p0, "poll", Box::new(Tagger));
        b.add_task(p0, "thread", |env| loop {
            env.observe("task", 0, 1);
            env.tick()?;
        });
        let report = b.build().run(RunConfig::new(10, RoundRobin::new()));
        report.assert_no_panics();
        let vals: Vec<i64> = report
            .trace
            .obs_series(ProcId(0), "task", 0)
            .iter()
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(vals.len(), 10);
        for w in vals.windows(2) {
            assert_ne!(w[0], w[1], "backends must interleave: {vals:?}");
        }
    }

    #[test]
    fn stepper_panic_is_reported_not_propagated() {
        struct Bomb;
        impl Stepper for Bomb {
            fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Control {
                panic!("fizzle");
            }
        }
        let mut b = SimBuilder::new();
        let p0 = b.add_process("p0");
        b.add_stepper(p0, "bomb", Box::new(Bomb));
        let p1 = b.add_process("p1");
        b.add_task(p1, "good", |env| loop {
            env.tick()?;
        });
        let report = b.build().run(RunConfig::new(30, RoundRobin::new()));
        match &report.procs[0].tasks[0].1 {
            TaskOutcome::Panicked(m) => assert!(m.contains("fizzle")),
            o => panic!("expected panic outcome, got {o:?}"),
        }
        assert_eq!(report.procs[1].tasks[0].1, TaskOutcome::Halted);
    }

    #[test]
    fn run_ends_when_everyone_finishes() {
        let mut b = SimBuilder::new();
        for p in 0..2 {
            let pid = b.add_process(&format!("p{p}"));
            b.add_task(pid, "main", move |env| {
                for _ in 0..5 {
                    env.tick()?;
                }
                Ok(())
            });
        }
        let report = b.build().run(RunConfig::new(10_000, RoundRobin::new()));
        report.assert_no_panics();
        assert!(report.trace.len() <= 12);
        for pr in &report.procs {
            assert_eq!(pr.tasks[0].1, TaskOutcome::Finished);
        }
    }
}
