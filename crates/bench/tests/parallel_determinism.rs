//! The parallel campaign executor is a pure performance feature: the
//! gauntlet report — verdicts, violation lists, shrunk repro plans —
//! must be byte-identical to a serial run for every worker count.
//!
//! The campaign list mixes passing random campaigns with the ablation
//! scenario, which violates quiescence by construction, so the
//! comparison also covers the ddmin shrink + re-run that happens inside
//! a violating campaign's job.

use tbwf_bench::gauntlet::{ablation_scenario, campaign_list, report_json, run_campaigns};
use tbwf_sim::Executor;

#[test]
fn gauntlet_report_identical_across_worker_counts() {
    let mut scenarios = campaign_list(4);
    scenarios.push(ablation_scenario(0xAB1A));

    let reports: Vec<String> = [1usize, 2, 8]
        .into_iter()
        .map(|jobs| {
            let results = run_campaigns(&scenarios, &Executor::new(jobs));
            assert_eq!(results.len(), scenarios.len());
            report_json(&results).to_string_compact()
        })
        .collect();

    assert!(
        reports[0].contains("\"shrunk\":{"),
        "the ablation campaign should carry a shrunk repro plan"
    );
    assert_eq!(reports[0], reports[1], "jobs=2 report differs from serial");
    assert_eq!(reports[0], reports[2], "jobs=8 report differs from serial");
}
