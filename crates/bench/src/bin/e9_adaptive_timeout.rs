//! **E9 — Ablation: adaptive vs. fixed timeouts in Figure 2** (DESIGN.md
//! §8).
//!
//! The paper's monitor grows `hbTimeout` by one on every suspicion ("we
//! use adaptive timeouts that increase over time"). The timeliness bound
//! of a timely process is *unknown and run-dependent*, so any fixed
//! timeout is wrong for some run: a timely-but-coarse `q` is suspected
//! forever and `faultCntr` grows without bound — violating Property 5(a)
//! and (through Figure 3's punishments) dethroning a perfectly timely
//! leader.
//!
//! We monitor a timely process that takes 1 step per `gap` system steps
//! (a *constant* gap: `q` is timely with bound ≈ gap) and compare the
//! final `faultCntr` and its growth under adaptive vs. fixed timeouts.

use tbwf_bench::print_table;
use tbwf_monitor::fig2::{activity_monitor, OBS_FAULT};
use tbwf_registers::RegisterFactory;
use tbwf_sim::analysis::increases_without_bound;
use tbwf_sim::schedule::{GapGrowth, PartiallySynchronous};
use tbwf_sim::{ProcId, RunConfig, SimBuilder};

fn run_monitor(adaptive: bool, gap: u64, steps: u64) -> (u64, bool) {
    let factory = RegisterFactory::default();
    let mut pair = activity_monitor(&factory, ProcId(0), ProcId(1));
    pair.monitoring_side.adaptive_timeout = adaptive;
    pair.monitoring_side.monitoring.set(true);
    pair.monitored_side.active_for.set(true);
    let fault = pair.monitoring_side.fault_cntr.clone();

    let mut b = SimBuilder::new();
    let p0 = b.add_process("p0");
    let ms = pair.monitoring_side;
    b.add_task(p0, "monitoring", move |env| ms.run(&env));
    let p1 = b.add_process("p1");
    let md = pair.monitored_side;
    b.add_task(p1, "monitored", move |env| md.run(&env));

    // q (= p1) is *timely*: constant gap ⇒ a bound exists (≈ gap).
    let schedule = PartiallySynchronous::with_growth(vec![ProcId(0)], gap, GapGrowth::Constant);
    let report = b.build().run(RunConfig::new(steps, schedule));
    report.assert_no_panics();
    let series = report.trace.obs_series(ProcId(0), OBS_FAULT, 1);
    let unbounded = increases_without_bound(&series, steps, 4);
    (fault.get(), unbounded)
}

fn main() {
    let steps = 120_000;
    println!("E9: Fig. 2 timeout ablation — monitored process is TIMELY (constant gap)");
    println!("    Property 5(a) demands a bounded faultCntr in every row\n");
    let mut rows = Vec::new();
    let mut fixed_failures = 0;
    let mut adaptive_failures = 0;
    for gap in [2u64, 4, 8, 16] {
        for adaptive in [true, false] {
            let (fault, unbounded) = run_monitor(adaptive, gap, steps);
            let verdict = if unbounded {
                "UNBOUNDED (P5 violated)"
            } else {
                "bounded ok"
            };
            if unbounded {
                if adaptive {
                    adaptive_failures += 1;
                } else {
                    fixed_failures += 1;
                }
            }
            rows.push(vec![
                gap.to_string(),
                if adaptive {
                    "adaptive (paper)"
                } else {
                    "fixed"
                }
                .to_string(),
                fault.to_string(),
                verdict.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "q step gap",
            "timeout",
            "final faultCntr",
            "faultCntr growth",
        ],
        &rows,
    );
    println!();
    println!(
        "adaptive violations: {adaptive_failures} (paper predicts 0); \
         fixed violations: {fixed_failures} (expected > 0 for coarse q)"
    );
    assert_eq!(
        adaptive_failures, 0,
        "the paper's adaptive rule must satisfy P5(a)"
    );
    assert!(
        fixed_failures > 0,
        "the ablation should demonstrate why fixed timeouts fail"
    );
}
