//! **E11 — Scaling with the number of processes** (synthetic figure; the
//! paper has no evaluation section, see EXPERIMENTS.md).
//!
//! Two series as n grows:
//!
//! 1. **Election convergence** — global steps until the last leader-output
//!    change, for both Ω∆ implementations, all processes permanent timely
//!    candidates. Expected shape: grows with n (the atomic backend pays
//!    the monitor mesh — each process hosts 2(n−1) monitor tasks, so a
//!    full Figure 3 iteration takes Θ(n) of the process's steps and each
//!    process gets 1/n of the global steps ⇒ ≳ quadratic growth; the
//!    abortable backend pays per-pair channels similarly).
//! 2. **TBWF throughput** — total and per-process completed increments in
//!    a fixed budget of global steps. Expected shape: total throughput
//!    falls with n (each completed operation pays a canonical leadership
//!    rotation whose cost grows with n), while fairness holds: the
//!    minimum per-process count stays positive.
//!
//! Every cell of both series is an independent seeded run, so the grid
//! executes on the work-sharded executor (all cores, `TBWF_JOBS`
//! override); rows are collected by grid index, keeping the tables
//! byte-identical to a serial sweep.

use std::process::ExitCode;
use tbwf::prelude::*;
use tbwf_bench::print_table;
use tbwf_omega::spec::convergence_time;
use tbwf_sim::{resolve_jobs, Executor};

const NS: [usize; 8] = [2, 3, 4, 6, 8, 16, 32, 64];

const USAGE: &str = "\
usage: e11_scaling [--jobs N]

  --jobs N    worker threads (default: TBWF_JOBS env, else all cores;
              must be at least 1)";

fn parse_args(args: &[String]) -> Result<Option<usize>, String> {
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                let raw = args
                    .get(i + 1)
                    .ok_or_else(|| "--jobs needs a number".to_string())?;
                let v: usize = raw
                    .parse()
                    .map_err(|_| format!("--jobs: {raw:?} is not a number"))?;
                if v == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                jobs = Some(v);
                i += 1;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    Ok(jobs)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = match parse_args(&args) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("e11_scaling: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let executor = Executor::new(resolve_jobs(jobs));
    println!(
        "E11: scaling with n (all processes timely, round-robin), {} worker(s)\n",
        executor.jobs()
    );

    println!("Series 1: election convergence (steps until last leader change)");
    // One job per (n, kind) cell, row-major so chunking by 2 restores rows.
    let cells: Vec<(usize, OmegaKind)> = NS
        .iter()
        .flat_map(|&n| [(n, OmegaKind::Atomic), (n, OmegaKind::Abortable)])
        .collect();
    let conv = executor.run(cells.len(), |i| {
        let (n, kind) = cells[i];
        let steps = 120_000 * n as u64;
        let cfg = OmegaSystemConfig {
            n,
            kind,
            scripts: vec![CandidateScript::Always; n],
            ..Default::default()
        };
        let out = run_omega_system(&cfg, RunConfig::new(steps, RoundRobin::new()));
        out.report.assert_no_panics();
        assert!(
            out.handles[0].leader.get().is_some(),
            "n={n} {kind:?}: no leader elected"
        );
        convergence_time(&out.report.trace, n).to_string()
    });
    let rows: Vec<Vec<String>> = NS
        .iter()
        .zip(conv.chunks(2))
        .map(|(&n, pair)| vec![n.to_string(), pair[0].clone(), pair[1].clone()])
        .collect();
    print_table(&["n", "atomic conv@", "abortable conv@"], &rows);

    // Each completed operation pays a canonical leadership rotation: the
    // leader's Ω∆ iteration is Θ(n) of its own steps and the leader gets
    // 1/n of the global steps, so one operation costs Θ(n²) global steps
    // and all n processes completing at least once needs Θ(n³). Scale the
    // budget accordingly so fairness is measurable at every n.
    println!("\nSeries 2: TBWF counter throughput, step budget max(300k, 600·n³)");
    let rows = executor.run(NS.len(), |i| {
        let n = NS[i];
        let steps = 300_000u64.max(600 * (n as u64).pow(3));
        let run = TbwfSystemBuilder::new(Counter)
            .processes(n)
            .omega(OmegaKind::Abortable)
            .seed(0xE11)
            .workload_all(Workload::Unlimited(CounterOp::Inc))
            .run(RunConfig::new(steps, RoundRobin::new()));
        run.report.assert_no_panics();
        let total: u64 = run.completed.iter().sum();
        let min = *run.completed.iter().min().unwrap();
        assert!(
            min > 0,
            "n={n}: a timely process starved: {:?}",
            run.completed
        );
        vec![
            n.to_string(),
            steps.to_string(),
            total.to_string(),
            min.to_string(),
            format!("{:.0}", steps as f64 / total as f64),
        ]
    });
    print_table(
        &["n", "steps", "total ops", "min per proc", "steps per op"],
        &rows,
    );
    println!("\nshape: convergence grows with n; steps per op grow with n;");
    println!("fairness (min per proc > 0) holds at every n ok");
    ExitCode::SUCCESS
}
