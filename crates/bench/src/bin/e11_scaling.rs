//! **E11 — Scaling with the number of processes** (synthetic figure; the
//! paper has no evaluation section, see EXPERIMENTS.md).
//!
//! Two series as n grows:
//!
//! 1. **Election convergence** — global steps until the last leader-output
//!    change, for both Ω∆ implementations, all processes permanent timely
//!    candidates. Expected shape: grows with n (the atomic backend pays
//!    the monitor mesh — each process hosts 2(n−1) monitor tasks, so a
//!    full Figure 3 iteration takes Θ(n) of the process's steps and each
//!    process gets 1/n of the global steps ⇒ ≳ quadratic growth; the
//!    abortable backend pays per-pair channels similarly).
//! 2. **TBWF throughput** — total and per-process completed increments in
//!    a fixed budget of global steps. Expected shape: total throughput
//!    falls with n (each completed operation pays a canonical leadership
//!    rotation whose cost grows with n), while fairness holds: the
//!    minimum per-process count stays positive.

use tbwf::prelude::*;
use tbwf_bench::print_table;
use tbwf_omega::spec::convergence_time;

fn main() {
    println!("E11: scaling with n (all processes timely, round-robin)\n");

    println!("Series 1: election convergence (steps until last leader change)");
    let mut rows = Vec::new();
    for n in [2usize, 3, 4, 6, 8, 16, 32, 64] {
        let steps = 120_000 * n as u64;
        let mut cells = vec![n.to_string()];
        for kind in [OmegaKind::Atomic, OmegaKind::Abortable] {
            let cfg = OmegaSystemConfig {
                n,
                kind,
                scripts: vec![CandidateScript::Always; n],
                ..Default::default()
            };
            let out = run_omega_system(&cfg, RunConfig::new(steps, RoundRobin::new()));
            out.report.assert_no_panics();
            assert!(
                out.handles[0].leader.get().is_some(),
                "n={n} {kind:?}: no leader elected"
            );
            cells.push(convergence_time(&out.report.trace, n).to_string());
        }
        rows.push(cells);
    }
    print_table(&["n", "atomic conv@", "abortable conv@"], &rows);

    // Each completed operation pays a canonical leadership rotation: the
    // leader's Ω∆ iteration is Θ(n) of its own steps and the leader gets
    // 1/n of the global steps, so one operation costs Θ(n²) global steps
    // and all n processes completing at least once needs Θ(n³). Scale the
    // budget accordingly so fairness is measurable at every n.
    println!("\nSeries 2: TBWF counter throughput, step budget max(300k, 600·n³)");
    let mut rows = Vec::new();
    for n in [2usize, 3, 4, 6, 8, 16, 32, 64] {
        let steps = 300_000u64.max(600 * (n as u64).pow(3));
        let run = TbwfSystemBuilder::new(Counter)
            .processes(n)
            .omega(OmegaKind::Abortable)
            .seed(0xE11)
            .workload_all(Workload::Unlimited(CounterOp::Inc))
            .run(RunConfig::new(steps, RoundRobin::new()));
        run.report.assert_no_panics();
        let total: u64 = run.completed.iter().sum();
        let min = *run.completed.iter().min().unwrap();
        assert!(
            min > 0,
            "n={n}: a timely process starved: {:?}",
            run.completed
        );
        rows.push(vec![
            n.to_string(),
            steps.to_string(),
            total.to_string(),
            min.to_string(),
            format!("{:.0}", steps as f64 / total as f64),
        ]);
    }
    print_table(
        &["n", "steps", "total ops", "min per proc", "steps per op"],
        &rows,
    );
    println!("\nshape: convergence grows with n; steps per op grow with n;");
    println!("fairness (min per proc > 0) holds at every n ok");
}
