//! **E3 — Ω∆ from abortable registers** (Figures 4–6, Theorem 13).
//!
//! Same specification grid as E2, but over the SWSR **abortable**-register
//! implementation, swept across register-adversary policies: every
//! overlapping operation aborts (strongest), 50 % abort, never abort
//! (atomic behavior, as a control). The election must satisfy
//! Definition 5 under every policy; convergence slows as the adversary
//! strengthens (the read-backoff of Figure 4 has to find the writers'
//! cadence).

use tbwf_bench::print_table;
use tbwf_omega::{
    check_spec, run_omega_system, CandidateScript, OmegaKind, OmegaRunData, OmegaSystemConfig,
    SpecParams,
};
use tbwf_registers::{AbortPolicy, EffectPolicy, RegisterFactoryConfig};
use tbwf_sim::schedule::{GapGrowth, PartiallySynchronous, RoundRobin, Schedule};
use tbwf_sim::{ProcId, RunConfig};

fn main() {
    println!("E3: Omega-Delta from SWSR abortable registers (Figs. 4-6)");
    println!("    checking Definition 5 under three register adversaries\n");
    let policies: [(&str, AbortPolicy); 3] = [
        ("always-abort", AbortPolicy::AlwaysOnOverlap),
        ("p=0.5", AbortPolicy::Seeded { p_abort: 0.5 }),
        ("never", AbortPolicy::Never),
    ];
    let mut rows = Vec::new();
    let mut failures = 0;
    for n in [2usize, 3, 4] {
        for (pname, policy) in policies {
            for (sname, timely_k, crash) in [
                ("all P timely", n, None),
                ("one non-timely", n - 1, None),
                ("leader crash", n, Some((60_000u64, ProcId(0)))),
            ] {
                let steps: u64 = 120_000 * n as u64;
                let cfg = OmegaSystemConfig {
                    n,
                    kind: OmegaKind::Abortable,
                    scripts: vec![CandidateScript::Always; n],
                    factory: RegisterFactoryConfig {
                        seed: 0xE3,
                        abort_policy: policy,
                        effect_policy: EffectPolicy::Seeded { p_effect: 0.5 },
                    },
                };
                let schedule: Box<dyn Schedule> = if timely_k == n {
                    Box::new(RoundRobin::new())
                } else {
                    Box::new(PartiallySynchronous::with_growth(
                        (0..timely_k).map(ProcId).collect(),
                        4,
                        GapGrowth::Linear(4),
                    ))
                };
                let mut run = RunConfig {
                    max_steps: steps,
                    crashes: Vec::new(),
                    schedule,
                    nemesis: None,
                };
                if let Some((t, p)) = crash {
                    run = run.crash(t, p);
                }
                let out = run_omega_system(&cfg, run);
                out.report.assert_no_panics();
                let timely: Vec<ProcId> = (0..n)
                    .map(ProcId)
                    .filter(|p| p.0 < timely_k && Some(*p) != crash.map(|(_, c)| c))
                    .collect();
                let data = OmegaRunData::from_trace(&out.report.trace, n, &timely);
                let v = check_spec(&data, SpecParams::default(), false);
                if !v.ok {
                    failures += 1;
                }
                let converged = tbwf_omega::spec::convergence_time(&out.report.trace, n);
                let (_, overlapped, aborted) = out.log.abort_stats();
                rows.push(vec![
                    n.to_string(),
                    pname.to_string(),
                    sname.to_string(),
                    v.elected
                        .map(|p| p.to_string())
                        .unwrap_or_else(|| "-".into()),
                    converged.to_string(),
                    format!("{overlapped}/{aborted}"),
                    if v.ok {
                        "ok".into()
                    } else {
                        format!("FAIL {:?}", v.failures)
                    },
                ]);
            }
        }
    }
    print_table(
        &[
            "n",
            "abort policy",
            "scenario",
            "leader",
            "converged@",
            "ovl/abrt",
            "Def.5",
        ],
        &rows,
    );
    println!("\n{failures} spec failure(s) (paper predicts 0)");
    assert_eq!(failures, 0);
}
