//! **E12 — the degradation gauntlet** (robustness of the whole
//! reproduction; Sections 1.1 and 3, Definitions 5 and 9, Figure 7).
//!
//! Seeded randomized fault campaigns — crashes (timed, leader-aimed,
//! mid-register-operation), temporary demotions and flickers, candidacy
//! churn, register-adversary dial bursts — against four systems: the
//! activity-monitor mesh, both Ω∆ implementations, and the full TBWF
//! transform. After each campaign the paper's invariants are checked
//! post-stabilization; any violation is shrunk to a 1-minimal fault plan
//! (ddmin) and written to `results/` as a self-contained repro artifact.
//!
//! The run ends with the *ablation* demonstration: self-punishment
//! (Figure 3 lines 7–8) disabled plus post-settle candidacy churn
//! produces a quiescence violation, whose shrunken artifact lands in
//! `results/e12_ablation_repro.json` — the shrinker proven on a real
//! violation, not just asserted idle.
//!
//! ```text
//! e12_gauntlet [--campaigns N] [--skip-ablation] [--repro FILE]
//! ```

use std::path::Path;
use std::process::ExitCode;
use tbwf_bench::gauntlet::{
    ablation_scenario, artifact_json, random_scenario, run_scenario, scenario_from_artifact,
    shrink, write_artifact, SystemKind,
};
use tbwf_bench::print_table;

const RESULTS_DIR: &str = "results";

fn repro(path: &str) -> ExitCode {
    let sc = match scenario_from_artifact(Path::new(path)) {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("cannot load artifact: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replaying {}: kind = {}, seed = {}, n = {}, {} fault events",
        path,
        sc.kind.name(),
        sc.seed,
        sc.n,
        sc.plan.events.len()
    );
    let out = run_scenario(&sc);
    for inj in &out.injections {
        println!("  injected: {inj}");
    }
    if out.violations.is_empty() {
        println!("no violations — the artifact does not reproduce here");
        ExitCode::FAILURE
    } else {
        for v in &out.violations {
            println!("  violation [{}]: {}", v.invariant, v.detail);
        }
        ExitCode::SUCCESS
    }
}

fn campaigns(total: usize) -> usize {
    let per_kind = total.div_ceil(SystemKind::ALL.len());
    println!(
        "E12: degradation gauntlet, {} campaigns per system kind ({} total)\n",
        per_kind,
        per_kind * SystemKind::ALL.len()
    );
    let mut rows = Vec::new();
    let mut failures = 0usize;
    for kind in SystemKind::ALL {
        let mut injected = 0usize;
        let mut events = 0usize;
        let mut violated = 0usize;
        for i in 0..per_kind {
            let sc = random_scenario(kind, 0xE12_000 + i as u64);
            let out = run_scenario(&sc);
            injected += out.injections.len();
            events += sc.plan.events.len();
            if !out.violations.is_empty() {
                violated += 1;
                failures += 1;
                eprintln!(
                    "VIOLATION in {} seed {}: {:?}",
                    kind.name(),
                    sc.seed,
                    out.violations
                        .iter()
                        .map(|v| v.invariant.as_str())
                        .collect::<Vec<_>>()
                );
                // Shrink and persist a repro artifact for the failure.
                let min = shrink(&sc);
                let min_out = run_scenario(&min);
                let stem = format!("e12_violation_{}_{}", kind.name(), sc.seed);
                match write_artifact(
                    Path::new(RESULTS_DIR),
                    &stem,
                    &artifact_json(&min, &min_out),
                ) {
                    Ok(p) => eprintln!(
                        "  shrunk {} -> {} events, artifact: {}",
                        sc.plan.events.len(),
                        min.plan.events.len(),
                        p.display()
                    ),
                    Err(e) => eprintln!("  cannot write artifact: {e}"),
                }
            }
        }
        rows.push(vec![
            kind.name().to_string(),
            per_kind.to_string(),
            events.to_string(),
            injected.to_string(),
            violated.to_string(),
        ]);
    }
    print_table(
        &["system", "campaigns", "planned", "fired", "violations"],
        &rows,
    );
    failures
}

fn ablation() -> Result<(), String> {
    println!("\nablation: self-punishment disabled + post-settle candidacy churn");
    let sc = ablation_scenario(0xAB1A);
    let out = run_scenario(&sc);
    if out.violations.is_empty() {
        return Err("ablation produced no violation — the gauntlet is blind".into());
    }
    for v in &out.violations {
        println!("  violation [{}]: {}", v.invariant, v.detail);
    }
    let min = shrink(&sc);
    let min_out = run_scenario(&min);
    println!(
        "  shrunk fault plan: {} -> {} events",
        sc.plan.events.len(),
        min.plan.events.len()
    );
    if min.plan.events.is_empty() || min.plan.events.len() > 5 {
        return Err(format!(
            "shrunken plan has {} events, expected 1..=5",
            min.plan.events.len()
        ));
    }
    if min_out.violations.is_empty() {
        return Err("shrunken plan no longer reproduces".into());
    }
    let path = write_artifact(
        Path::new(RESULTS_DIR),
        "e12_ablation_repro",
        &artifact_json(&min, &min_out),
    )
    .map_err(|e| format!("cannot write artifact: {e}"))?;
    println!("  repro artifact: {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut total = 240usize;
    let mut run_ablation = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--campaigns" => {
                i += 1;
                total = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--campaigns needs a number");
            }
            "--skip-ablation" => run_ablation = false,
            "--repro" => {
                i += 1;
                let path = args.get(i).expect("--repro needs a file");
                return repro(path);
            }
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let failures = campaigns(total);
    let mut ok = failures == 0;
    if failures > 0 {
        eprintln!("\n{failures} campaign(s) violated an invariant");
    } else {
        println!("\nall campaigns passed");
    }
    if run_ablation {
        match ablation() {
            Ok(()) => println!("ablation detected and shrunk as expected"),
            Err(e) => {
                eprintln!("ablation FAILED: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
