//! **E12 — the degradation gauntlet** (robustness of the whole
//! reproduction; Sections 1.1 and 3, Definitions 5 and 9, Figure 7).
//!
//! Seeded randomized fault campaigns — crashes (timed, leader-aimed,
//! mid-register-operation), temporary demotions and flickers, candidacy
//! churn, register-adversary dial bursts — against four systems: the
//! activity-monitor mesh, both Ω∆ implementations, and the full TBWF
//! transform. After each campaign the paper's invariants are checked
//! post-stabilization; any violation is shrunk to a 1-minimal fault plan
//! (ddmin) and written to `results/` as a self-contained repro artifact.
//!
//! Campaigns are independent seeded runs, so they execute on a
//! work-sharded thread pool (`--jobs`, default all cores); results are
//! collected and reported in campaign order, making the output
//! byte-identical for every worker count.
//!
//! The run ends with the *ablation* demonstration: self-punishment
//! (Figure 3 lines 7–8) disabled plus post-settle candidacy churn
//! produces a quiescence violation, whose shrunken artifact lands in
//! `results/e12_ablation_repro.json` — the shrinker proven on a real
//! violation, not just asserted idle.

use std::path::Path;
use std::process::ExitCode;
use tbwf_bench::gauntlet::{
    ablation_scenario, artifact_json, campaign_list, run_campaigns, run_scenario,
    scenario_from_artifact, shrink, write_artifact, SystemKind,
};
use tbwf_bench::print_table;
use tbwf_sim::{resolve_jobs, Executor};

const RESULTS_DIR: &str = "results";

const USAGE: &str = "\
usage: e12_gauntlet [--campaigns N] [--jobs N] [--skip-ablation] [--repro FILE]

  --campaigns N    total campaigns across the four system kinds
                   (default 240; must be at least 1)
  --jobs N         worker threads (default: TBWF_JOBS env, else all cores;
                   must be at least 1)
  --skip-ablation  skip the self-punishment ablation demonstration
  --repro FILE     replay a repro artifact instead of running campaigns";

struct Cli {
    total: usize,
    jobs: Option<usize>,
    run_ablation: bool,
    repro: Option<String>,
}

fn positive_arg(args: &[String], i: usize, flag: &str) -> Result<usize, String> {
    let raw = args
        .get(i)
        .ok_or_else(|| format!("{flag} needs a number"))?;
    let v: usize = raw
        .parse()
        .map_err(|_| format!("{flag}: {raw:?} is not a number"))?;
    if v == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(v)
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        total: 240,
        jobs: None,
        run_ablation: true,
        repro: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--campaigns" => {
                cli.total = positive_arg(args, i + 1, "--campaigns")?;
                i += 1;
            }
            "--jobs" => {
                cli.jobs = Some(positive_arg(args, i + 1, "--jobs")?);
                i += 1;
            }
            "--skip-ablation" => cli.run_ablation = false,
            "--repro" => {
                cli.repro = Some(
                    args.get(i + 1)
                        .ok_or_else(|| "--repro needs a file".to_string())?
                        .clone(),
                );
                i += 1;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    Ok(cli)
}

fn repro(path: &str) -> ExitCode {
    let sc = match scenario_from_artifact(Path::new(path)) {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("cannot load artifact: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "replaying {}: kind = {}, seed = {}, n = {}, {} fault events",
        path,
        sc.kind.name(),
        sc.seed,
        sc.n,
        sc.plan.events.len()
    );
    let out = run_scenario(&sc);
    for inj in &out.injections {
        println!("  injected: {inj}");
    }
    if out.violations.is_empty() {
        println!("no violations — the artifact does not reproduce here");
        ExitCode::FAILURE
    } else {
        for v in &out.violations {
            println!("  violation [{}]: {}", v.invariant, v.detail);
        }
        ExitCode::SUCCESS
    }
}

fn campaigns(total: usize, executor: &Executor) -> usize {
    let scenarios = campaign_list(total);
    let per_kind = scenarios.len() / SystemKind::ALL.len();
    println!(
        "E12: degradation gauntlet, {} campaigns per system kind ({} total), {} worker(s)\n",
        per_kind,
        scenarios.len(),
        executor.jobs()
    );
    let results = run_campaigns(&scenarios, executor);

    // Campaigns ran sharded across workers; everything below iterates the
    // index-ordered result list, so the report (and any artifact writes)
    // is byte-identical to a serial run.
    let mut rows = Vec::new();
    let mut failures = 0usize;
    for (k, kind) in SystemKind::ALL.into_iter().enumerate() {
        let mut injected = 0usize;
        let mut events = 0usize;
        let mut violated = 0usize;
        for res in &results[k * per_kind..(k + 1) * per_kind] {
            injected += res.outcome.injections.len();
            events += res.scenario.plan.events.len();
            if let Some((min, min_out)) = &res.shrunk {
                violated += 1;
                failures += 1;
                eprintln!(
                    "VIOLATION in {} seed {}: {:?}",
                    kind.name(),
                    res.scenario.seed,
                    res.outcome
                        .violations
                        .iter()
                        .map(|v| v.invariant.as_str())
                        .collect::<Vec<_>>()
                );
                let stem = format!("e12_violation_{}_{}", kind.name(), res.scenario.seed);
                match write_artifact(Path::new(RESULTS_DIR), &stem, &artifact_json(min, min_out)) {
                    Ok(p) => eprintln!(
                        "  shrunk {} -> {} events, artifact: {}",
                        res.scenario.plan.events.len(),
                        min.plan.events.len(),
                        p.display()
                    ),
                    Err(e) => eprintln!("  cannot write artifact: {e}"),
                }
            }
        }
        rows.push(vec![
            kind.name().to_string(),
            per_kind.to_string(),
            events.to_string(),
            injected.to_string(),
            violated.to_string(),
        ]);
    }
    print_table(
        &["system", "campaigns", "planned", "fired", "violations"],
        &rows,
    );
    failures
}

fn ablation() -> Result<(), String> {
    println!("\nablation: self-punishment disabled + post-settle candidacy churn");
    let sc = ablation_scenario(0xAB1A);
    let out = run_scenario(&sc);
    if out.violations.is_empty() {
        return Err("ablation produced no violation — the gauntlet is blind".into());
    }
    for v in &out.violations {
        println!("  violation [{}]: {}", v.invariant, v.detail);
    }
    let min = shrink(&sc);
    let min_out = run_scenario(&min);
    println!(
        "  shrunk fault plan: {} -> {} events",
        sc.plan.events.len(),
        min.plan.events.len()
    );
    if min.plan.events.is_empty() || min.plan.events.len() > 5 {
        return Err(format!(
            "shrunken plan has {} events, expected 1..=5",
            min.plan.events.len()
        ));
    }
    if min_out.violations.is_empty() {
        return Err("shrunken plan no longer reproduces".into());
    }
    let path = write_artifact(
        Path::new(RESULTS_DIR),
        "e12_ablation_repro",
        &artifact_json(&min, &min_out),
    )
    .map_err(|e| format!("cannot write artifact: {e}"))?;
    println!("  repro artifact: {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("e12_gauntlet: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &cli.repro {
        return repro(path);
    }

    let executor = Executor::new(resolve_jobs(cli.jobs));
    let failures = campaigns(cli.total, &executor);
    let mut ok = failures == 0;
    if failures > 0 {
        eprintln!("\n{failures} campaign(s) violated an invariant");
    } else {
        println!("\nall campaigns passed");
    }
    if cli.run_ablation {
        match ablation() {
            Ok(()) => println!("ablation detected and shrunk as expected"),
            Err(e) => {
                eprintln!("ablation FAILED: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
