//! **E10 — Ablation: self-punishment on re-candidacy in Figure 3**
//! (DESIGN.md §8).
//!
//! The paper: "Every time p stops and starts being a candidate for
//! leadership, p increments its own `CounterRegister[p]` as a
//! 'self-punishment'. […] Without this self-punishment, it is easy to
//! find a scenario where r has the smallest CounterRegister and
//! leadership oscillates forever between r and another process."
//!
//! We build that scenario: p0 (the lowest id, so it wins every counter
//! tie) blinks in and out of candidacy forever; p1 is a permanent timely
//! candidate. With self-punishment p0's counter outgrows p1's after a
//! couple of blinks and p1 rules permanently; without it, every time p0
//! returns it snatches leadership back — oscillation forever.

use tbwf_bench::print_table;
use tbwf_omega::harness::{install_omega_with, OmegaOptions};
use tbwf_omega::{add_candidate_driver, CandidateScript, OmegaKind, OBS_LEADER};
use tbwf_registers::RegisterFactory;
use tbwf_sim::schedule::RoundRobin;
use tbwf_sim::{ProcId, RunConfig, SimBuilder};

fn run_blinker(self_punish: bool, steps: u64) -> (usize, Vec<i64>) {
    let factory = RegisterFactory::default();
    let mut b = SimBuilder::new();
    for p in 0..2 {
        b.add_process(&format!("p{p}"));
    }
    let handles = install_omega_with(
        &mut b,
        &factory,
        2,
        OmegaKind::Atomic,
        OmegaOptions { self_punish },
    );
    add_candidate_driver(
        &mut b,
        ProcId(0),
        &handles[0],
        CandidateScript::Blink {
            on: 8_000,
            off: 8_000,
        },
    );
    add_candidate_driver(&mut b, ProcId(1), &handles[1], CandidateScript::Always);
    let report = b.build().run(RunConfig::new(steps, RoundRobin::new()));
    report.assert_no_panics();

    // Count p1's leadership changes during the second half of the run
    // and record the distinct leader values it saw there.
    let series = report.trace.obs_series(ProcId(1), OBS_LEADER, 0);
    let late: Vec<i64> = series
        .iter()
        .filter(|(t, _)| *t >= steps / 2)
        .map(|(_, v)| *v)
        .collect();
    (late.len(), late)
}

fn main() {
    let steps = 400_000;
    println!("E10: Fig. 3 self-punishment ablation");
    println!("     p0 = blinking R-candidate (lowest id), p1 = permanent timely candidate");
    println!("     measured: p1's leader changes during the second half of {steps} steps\n");

    let mut rows = Vec::new();
    let (with_changes, _) = run_blinker(true, steps);
    rows.push(vec![
        "with self-punishment (paper)".to_string(),
        with_changes.to_string(),
        "stable leader".to_string(),
    ]);
    let (without_changes, late) = run_blinker(false, steps);
    rows.push(vec![
        "without self-punishment".to_string(),
        without_changes.to_string(),
        format!("oscillates ({} flips)", without_changes),
    ]);
    print_table(&["variant", "late leader changes at p1", "behavior"], &rows);

    println!();
    assert_eq!(
        with_changes, 0,
        "with self-punishment leadership must stabilize (got {with_changes} changes)"
    );
    assert!(
        without_changes >= 4,
        "without self-punishment leadership should keep oscillating \
         (got only {without_changes} changes: {late:?})"
    );
    println!(
        "self-punishment is necessary: 0 late changes with it, \
         {without_changes} without ok"
    );
}
