//! **E4 — Graceful degradation** (the headline claim, Section 1.1;
//! Theorems 14–15).
//!
//! n processes hammer one TBWF counter while the schedule keeps only `k`
//! of them timely (the rest step with exponentially growing gaps —
//! correct but not timely). Reported per `k`, for both Ω∆ backends:
//!
//! * operations completed by the *least productive* timely process — the
//!   wait-freedom-for-the-timely guarantee (must be > 0 for every k ≥ 1);
//! * total timely / non-timely throughput — the gradual
//!   obstruction-freedom → lock-freedom → wait-freedom bridge.
//!
//! The paper has no empirical section; this experiment renders its
//! Section 1.1 narrative as a measurable curve (see EXPERIMENTS.md).

use tbwf::prelude::*;
use tbwf_bench::{print_table, summarize};

fn main() {
    let n = 6;
    let steps: u64 = 400_000;
    println!("E4: graceful degradation of a TBWF counter, n = {n}, {steps} steps");
    println!("    k = number of timely processes (rest: growing step gaps)\n");

    let mut rows = Vec::new();
    let mut starved = 0;
    for kind in [OmegaKind::Atomic, OmegaKind::Abortable] {
        for k in 1..=n {
            let timely: Vec<ProcId> = (0..k).map(ProcId).collect();
            let schedule = PartiallySynchronous::new(timely.clone(), 4, true);
            let run = TbwfSystemBuilder::new(Counter)
                .processes(n)
                .omega(kind)
                .seed(0xE4 + k as u64)
                .workload_all(Workload::Unlimited(CounterOp::Inc))
                .run(RunConfig::new(steps, schedule));
            run.report.assert_no_panics();
            let timely_ops: Vec<u64> = (0..k).map(|p| run.completed[p]).collect();
            let slow_ops: Vec<u64> = (k..n).map(|p| run.completed[p]).collect();
            let min_timely = *timely_ops.iter().min().unwrap();
            if min_timely == 0 {
                starved += 1;
            }
            // Linearizability invariant on the side.
            let mut resp: Vec<i64> = run.results.iter().flatten().map(|r| r.resp).collect();
            let total = resp.len();
            resp.sort_unstable();
            resp.dedup();
            assert_eq!(resp.len(), total, "duplicate counter responses");
            rows.push(vec![
                format!("{kind:?}"),
                k.to_string(),
                min_timely.to_string(),
                summarize(&timely_ops),
                summarize(&slow_ops),
            ]);
        }
    }
    print_table(
        &[
            "omega",
            "k timely",
            "min timely ops",
            "timely ops",
            "non-timely ops",
        ],
        &rows,
    );
    println!("\nstarved timely processes across all cells: {starved} (paper predicts 0)");
    println!("all responses distinct in every run (linearizable) ok");
    assert_eq!(starved, 0, "a timely process starved: TBWF violated");
}
