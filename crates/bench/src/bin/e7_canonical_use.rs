//! **E7 — Why the canonical use of Ω∆ matters** (Definition 6, Theorem 7,
//! and the discussion after Figure 7).
//!
//! The TBWF transform's line 2 (`while leader_p = p do skip`) enforces
//! the canonical use of Ω∆. The paper warns that without it "a timely
//! process would be able to monopolize the access to the implemented
//! object […] thereby preventing all the other timely processes from
//! executing their operations."
//!
//! We run the same all-timely workload with and without the wait and
//! report the per-process completion counts and a Jain fairness index.

use tbwf_bench::print_table;
use tbwf_omega::OmegaKind;
use tbwf_sim::schedule::RoundRobin;
use tbwf_sim::RunConfig;
use tbwf_universal::harness::{run_counter_workload, Engine, WorkloadConfig};

fn jain(xs: &[u64]) -> f64 {
    let sum: f64 = xs.iter().map(|&x| x as f64).sum();
    let sumsq: f64 = xs.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sumsq == 0.0 {
        return 0.0;
    }
    sum * sum / (xs.len() as f64 * sumsq)
}

fn main() {
    let n = 3;
    let steps: u64 = 300_000;
    println!("E7: canonical vs non-canonical use of Omega-Delta in Fig. 7");
    println!("    n = {n}, {steps} steps, all timely (round-robin)\n");

    let variants: [(&str, Engine); 2] = [
        ("canonical (Fig. 7)", Engine::Tbwf(OmegaKind::Atomic)),
        ("non-canonical", Engine::TbwfNonCanonical(OmegaKind::Atomic)),
    ];
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (name, engine) in variants {
        let cfg = WorkloadConfig {
            n,
            engine,
            ops_per_proc: u64::MAX,
            ..Default::default()
        };
        let out = run_counter_workload(&cfg, RunConfig::new(steps, RoundRobin::new()));
        out.report.assert_no_panics();
        out.assert_distinct_responses();
        let f = jain(&out.completed);
        rows.push(vec![
            name.to_string(),
            format!("{:?}", out.completed),
            (*out.completed.iter().min().unwrap()).to_string(),
            format!("{f:.3}"),
        ]);
        results.push((name, out.completed.clone(), f));
    }
    print_table(
        &["variant", "ops per process", "min", "Jain fairness"],
        &rows,
    );

    let (_, canonical, f_canon) = &results[0];
    let (_, noncanon, _) = &results[1];
    assert!(
        canonical.iter().all(|&c| c > 0),
        "canonical: every timely process must progress: {canonical:?}"
    );
    assert!(*f_canon > 0.5, "canonical use should be reasonably fair");
    let starved = noncanon.iter().filter(|&&c| c == 0).count();
    println!(
        "\nnon-canonical run starves {starved} of {n} timely processes \
         (paper predicts monopolization: n-1 starved)"
    );
    assert!(
        starved >= 1,
        "expected monopolization without the canonical wait: {noncanon:?}"
    );
}
