//! `explore` — an interactive-ish CLI for poking at TBWF runs.
//!
//! Runs a counter workload under a chosen schedule and prints the
//! per-process completions, the leader timeline, and an ASCII step
//! timeline — the quickest way to *see* partial synchrony and graceful
//! degradation.
//!
//! ```text
//! cargo run --release -p tbwf-bench --bin explore -- \
//!     [n] [steps] [schedule] [omega]
//!
//! n         number of processes            (default 4)
//! steps     run length in global steps     (default 200000)
//! schedule  rr | partial:<k> | flicker | random:<seed> | solo:<p>
//!                                          (default rr)
//! omega     atomic | abortable             (default atomic)
//! ```

use tbwf::prelude::*;
use tbwf_omega::OBS_LEADER;

fn parse_schedule(spec: &str, n: usize, steps: u64) -> Box<dyn Schedule> {
    if let Some(k) = spec.strip_prefix("partial:") {
        let k: usize = k.parse().expect("partial:<k> needs a number");
        assert!(k >= 1 && k <= n, "k must be in 1..=n");
        Box::new(PartiallySynchronous::new(
            (0..k).map(ProcId).collect(),
            4,
            true,
        ))
    } else if let Some(seed) = spec.strip_prefix("random:") {
        Box::new(SeededRandom::new(
            seed.parse().expect("random:<seed> needs a number"),
        ))
    } else if let Some(p) = spec.strip_prefix("solo:") {
        let p: usize = p.parse().expect("solo:<p> needs a process id");
        Box::new(SoloAfter::new(steps / 4, ProcId(p)))
    } else {
        match spec {
            "rr" => Box::new(RoundRobin::new()),
            "flicker" => Box::new(Flicker::new(ProcId(n - 1), 64, 2_000)),
            other => panic!(
                "unknown schedule '{other}' (want rr | partial:<k> | flicker | \
                 random:<seed> | solo:<p>)"
            ),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args
        .first()
        .map_or(4, |s| s.parse().expect("n must be a number"));
    let steps: u64 = args
        .get(1)
        .map_or(200_000, |s| s.parse().expect("steps must be a number"));
    let sched_spec = args.get(2).map_or("rr", |s| s.as_str());
    let omega = match args.get(3).map(|s| s.as_str()) {
        None | Some("atomic") => OmegaKind::Atomic,
        Some("abortable") => OmegaKind::Abortable,
        Some(other) => panic!("unknown omega '{other}' (want atomic | abortable)"),
    };

    println!("explore: n={n} steps={steps} schedule={sched_spec} omega={omega:?}\n");
    let schedule = parse_schedule(sched_spec, n, steps);
    let run = TbwfSystemBuilder::new(Counter)
        .processes(n)
        .omega(omega)
        .workload_all(Workload::Unlimited(CounterOp::Inc))
        .run(RunConfig {
            max_steps: steps,
            crashes: Vec::new(),
            schedule,
            nemesis: None,
        });
    run.report.assert_no_panics();

    println!("completed operations per process: {:?}", run.completed);
    let measured = tbwf_sim::timeliness::measured_timely_set(&run.report.trace.steps, n, &[]);
    println!("measured timely set:              {measured:?}\n");

    println!(
        "step timeline (one column ≈ {} steps; ' .:#' = share of steps):",
        steps / 64
    );
    print!(
        "{}",
        run.report.trace.ascii_timeline(n, (steps / 64).max(1))
    );

    println!("\nleader timeline at p0 (last 8 changes):");
    let series = run.report.trace.obs_series(ProcId(0), OBS_LEADER, 0);
    for (t, v) in series.iter().rev().take(8).rev() {
        let who = if *v < 0 { "?".into() } else { format!("p{v}") };
        println!("  t={t:<8} leader = {who}");
    }
    assert_run_linearizable(&Counter, &run);
    println!("\nhistory linearizable ok");
}
