//! `explore` — an interactive-ish CLI for poking at TBWF runs.
//!
//! Runs a counter workload under a chosen schedule and prints the
//! per-process completions, the leader timeline, and an ASCII step
//! timeline — the quickest way to *see* partial synchrony and graceful
//! degradation.

use std::process::ExitCode;
use tbwf::prelude::*;
use tbwf_omega::OBS_LEADER;

const USAGE: &str = "\
usage: explore [n] [steps] [schedule] [omega]

  n         number of processes            (default 4; at least 2)
  steps     run length in global steps     (default 200000; at least 1)
  schedule  rr | partial:<k> | flicker | random:<seed> | solo:<p>
                                           (default rr)
  omega     atomic | abortable             (default atomic)";

struct Cli {
    n: usize,
    steps: u64,
    sched_spec: String,
    omega: OmegaKind,
}

fn positive<T: std::str::FromStr + PartialEq + Default>(
    raw: &str,
    what: &str,
) -> Result<T, String> {
    let v: T = raw
        .parse()
        .map_err(|_| format!("{what}: {raw:?} is not a number"))?;
    if v == T::default() {
        return Err(format!("{what} must be at least 1"));
    }
    Ok(v)
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    if args.len() > 4 {
        return Err(format!("unexpected argument {:?}", args[4]));
    }
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        return Err(format!("unknown flag {flag:?}"));
    }
    let n: usize = match args.first() {
        Some(raw) => positive(raw, "n")?,
        None => 4,
    };
    if n < 2 {
        return Err("n must be at least 2".into());
    }
    let steps: u64 = match args.get(1) {
        Some(raw) => positive(raw, "steps")?,
        None => 200_000,
    };
    let omega = match args.get(3).map(|s| s.as_str()) {
        None | Some("atomic") => OmegaKind::Atomic,
        Some("abortable") => OmegaKind::Abortable,
        Some(other) => return Err(format!("unknown omega {other:?} (want atomic | abortable)")),
    };
    Ok(Cli {
        n,
        steps,
        sched_spec: args.get(2).map_or("rr", |s| s.as_str()).to_string(),
        omega,
    })
}

fn parse_schedule(spec: &str, n: usize, steps: u64) -> Result<Box<dyn Schedule>, String> {
    if let Some(k) = spec.strip_prefix("partial:") {
        let k: usize = positive(k, "partial:<k>")?;
        if k > n {
            return Err(format!("partial:<k>: k = {k} exceeds n = {n}"));
        }
        Ok(Box::new(PartiallySynchronous::new(
            (0..k).map(ProcId).collect(),
            4,
            true,
        )))
    } else if let Some(seed) = spec.strip_prefix("random:") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("random:<seed>: {seed:?} is not a number"))?;
        Ok(Box::new(SeededRandom::new(seed)))
    } else if let Some(p) = spec.strip_prefix("solo:") {
        let p: usize = p
            .parse()
            .map_err(|_| format!("solo:<p>: {p:?} is not a process id"))?;
        if p >= n {
            return Err(format!("solo:<p>: p{p} out of range (n = {n})"));
        }
        Ok(Box::new(SoloAfter::new(steps / 4, ProcId(p))))
    } else {
        match spec {
            "rr" => Ok(Box::new(RoundRobin::new())),
            "flicker" => Ok(Box::new(Flicker::new(ProcId(n - 1), 64, 2_000))),
            other => Err(format!(
                "unknown schedule {other:?} (want rr | partial:<k> | flicker | \
                 random:<seed> | solo:<p>)"
            )),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cli, schedule) = match parse_args(&args)
        .and_then(|cli| Ok((parse_schedule(&cli.sched_spec, cli.n, cli.steps)?, cli)))
    {
        Ok((schedule, cli)) => (cli, schedule),
        Err(e) => {
            eprintln!("explore: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let (n, steps) = (cli.n, cli.steps);

    println!(
        "explore: n={n} steps={steps} schedule={} omega={:?}\n",
        cli.sched_spec, cli.omega
    );
    let run = TbwfSystemBuilder::new(Counter)
        .processes(n)
        .omega(cli.omega)
        .workload_all(Workload::Unlimited(CounterOp::Inc))
        .run(RunConfig {
            max_steps: steps,
            crashes: Vec::new(),
            schedule,
            nemesis: None,
        });
    run.report.assert_no_panics();

    println!("completed operations per process: {:?}", run.completed);
    let measured = tbwf_sim::timeliness::measured_timely_set(&run.report.trace.steps, n, &[]);
    println!("measured timely set:              {measured:?}\n");

    println!(
        "step timeline (one column ≈ {} steps; ' .:#' = share of steps):",
        steps / 64
    );
    print!(
        "{}",
        run.report.trace.ascii_timeline(n, (steps / 64).max(1))
    );

    println!("\nleader timeline at p0 (last 8 changes):");
    let series = run.report.trace.obs_series(ProcId(0), OBS_LEADER, 0);
    for (t, v) in series.iter().rev().take(8).rev() {
        let who = if *v < 0 { "?".into() } else { format!("p{v}") };
        println!("  t={t:<8} leader = {who}");
    }
    assert_run_linearizable(&Counter, &run);
    println!("\nhistory linearizable ok");
    ExitCode::SUCCESS
}
