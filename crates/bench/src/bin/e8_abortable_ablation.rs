//! **E8 — Abortable-register ablations** (Section 6).
//!
//! Part A: abort rates on a shared abortable register — solo operations
//! never abort; the abort rate under contention grows with the number of
//! hammering processes (this is the weakness the Figure 4/5 mechanisms
//! are designed around).
//!
//! Part B: **why the heartbeat of Figure 5 needs two registers.** With a
//! single heartbeat register, an aborted read only proves the writer is
//! *alive*; a slow writer that is perpetually mid-write makes every read
//! abort and is judged timely forever. With two alternating registers, a
//! slow writer is caught: while it dawdles on one register, reads of the
//! other neither abort nor return anything new. We measure the fraction
//! of reader polls that judge the writer timely, for a timely and for a
//! slow writer, under both detector rules.

use std::sync::Arc;
use tbwf_bench::print_table;
use tbwf_registers::{ReadOutcome, RegisterFactory, SharedAbortable};
use tbwf_sim::schedule::{RoundRobin, Weighted};
use tbwf_sim::{Env, ProcId, RunConfig, Schedule, SimBuilder};

/// Part A: n processes hammer one MWMR abortable register.
fn abort_rate(n: usize, steps: u64) -> (u64, u64, u64) {
    let factory = RegisterFactory::default();
    let reg = factory.abortable("R", 0i64);
    let mut b = SimBuilder::new();
    for p in 0..n {
        let pid = b.add_process(&format!("p{p}"));
        let reg = Arc::clone(&reg);
        b.add_task(pid, "hammer", move |env| {
            let mut i = 0i64;
            loop {
                i += 1;
                let _ = reg.write(&env, i)?;
                let _ = reg.read(&env)?;
            }
        });
    }
    let report = b.build().run(RunConfig::new(steps, RoundRobin::new()));
    report.assert_no_panics();
    factory.log().abort_stats()
}

/// Part B: a writer heartbeats through `regs` (alternating); the reader
/// judges timeliness with the k-register rule (all registers must abort
/// or change). Returns (timely_verdicts, polls).
fn heartbeat_detector(slow_writer: bool, two_regs: bool, steps: u64) -> (u64, u64) {
    let factory = RegisterFactory::default();
    let regs: Vec<SharedAbortable<i64>> = (0..if two_regs { 2 } else { 1 })
        .map(|i| factory.abortable_swsr(&format!("Hb{i}"), 0i64, ProcId(1), ProcId(0)))
        .collect();

    let mut b = SimBuilder::new();
    let reader = b.add_process("reader");
    let writer = b.add_process("writer");

    {
        let regs = regs.clone();
        b.add_task(writer, "hb", move |env| {
            let mut c = 0i64;
            loop {
                c += 1;
                for r in &regs {
                    let _ = r.write(&env, c)?;
                }
            }
        });
    }
    {
        let regs = regs.clone();
        b.add_task(reader, "detect", move |env| {
            let mut prev: Vec<Option<i64>> = vec![Some(0); regs.len()];
            let mut timely = 0i64;
            let mut polls = 0i64;
            loop {
                // Poll every 8 own steps (a fixed timeout: the ablation
                // isolates the register-count question from adaptivity).
                for _ in 0..8 {
                    env.tick()?;
                }
                let mut fresh_all = true;
                for (i, r) in regs.iter().enumerate() {
                    let cur = match r.read(&env)? {
                        ReadOutcome::Aborted => None,
                        ReadOutcome::Value(v) => Some(v),
                    };
                    let fresh = cur.is_none() || cur != prev[i];
                    fresh_all &= fresh;
                    prev[i] = cur;
                }
                polls += 1;
                if fresh_all {
                    timely += 1;
                }
                env.observe("timely_verdicts", 0, timely);
                env.observe("polls", 0, polls);
            }
        });
    }

    let schedule: Box<dyn Schedule> = if slow_writer {
        // The writer gets a step ~once per 400 reader steps: its writes
        // stay in flight for long stretches.
        Box::new(Weighted::new(vec![400.0, 1.0], 0xE8))
    } else {
        Box::new(RoundRobin::new())
    };
    let report = b.build().run(RunConfig {
        max_steps: steps,
        crashes: Vec::new(),
        schedule,
        nemesis: None,
    });
    report.assert_no_panics();
    let timely = report
        .trace
        .last_value(ProcId(0), "timely_verdicts", 0)
        .unwrap_or(0) as u64;
    let polls = report.trace.last_value(ProcId(0), "polls", 0).unwrap_or(0) as u64;
    (timely, polls)
}

fn main() {
    println!("E8: abortable-register ablations (Section 6)\n");

    println!("Part A: abort rate on one shared abortable register");
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let (total, overlapped, aborted) = abort_rate(n, 40_000);
        rows.push(vec![
            n.to_string(),
            total.to_string(),
            overlapped.to_string(),
            aborted.to_string(),
            format!("{:.1}%", 100.0 * aborted as f64 / total.max(1) as f64),
        ]);
        if n == 1 {
            assert_eq!(aborted, 0, "solo operations must never abort");
        }
    }
    print_table(
        &["procs", "ops", "overlapped", "aborted", "abort rate"],
        &rows,
    );
    println!("  solo operations never abort ok\n");

    println!("Part B: heartbeat detector — 1 register vs 2 registers (Fig. 5)");
    let steps = 200_000;
    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for (wname, slow) in [("timely writer", false), ("slow writer", true)] {
        for (dname, two) in [("1 register", false), ("2 registers", true)] {
            let (timely, polls) = heartbeat_detector(slow, two, steps);
            let frac = timely as f64 / polls.max(1) as f64;
            measured.push((slow, two, frac));
            rows.push(vec![
                wname.to_string(),
                dname.to_string(),
                polls.to_string(),
                format!("{:.1}%", frac * 100.0),
            ]);
        }
    }
    print_table(&["writer", "detector", "polls", "judged timely"], &rows);

    let one_reg_slow = measured.iter().find(|(s, t, _)| *s && !t).unwrap().2;
    let two_reg_slow = measured.iter().find(|(s, t, _)| *s && *t).unwrap().2;
    let two_reg_timely = measured.iter().find(|(s, t, _)| !s && *t).unwrap().2;
    println!();
    println!(
        "  slow writer judged timely: {:.0}% with one register vs {:.0}% with two",
        one_reg_slow * 100.0,
        two_reg_slow * 100.0
    );
    assert!(
        one_reg_slow > two_reg_slow + 0.3,
        "two registers must sharply reduce false-timely verdicts \
         ({one_reg_slow:.2} vs {two_reg_slow:.2})"
    );
    assert!(
        two_reg_timely > 0.9,
        "a timely writer must still be judged timely ({two_reg_timely:.2})"
    );
    println!("  the Figure 5 two-register scheme is necessary and sufficient ok");
}
