//! **E2 — Ω∆ from atomic registers** (Figure 3, Theorems 11–12).
//!
//! Runs the register-based Ω∆ over a grid of system sizes and candidacy /
//! synchrony scenarios and checks the Definition 5 specification on every
//! trace. Also reports the election convergence time (the last leader
//! change at any permanent candidate).

use tbwf_bench::print_table;
use tbwf_omega::{
    check_spec, run_omega_system, CandidateScript, OmegaKind, OmegaRunData, OmegaSystemConfig,
    SpecParams,
};
use tbwf_sim::schedule::{Flicker, GapGrowth, PartiallySynchronous, RoundRobin, Schedule};
use tbwf_sim::{ProcId, RunConfig};

struct Scenario {
    name: &'static str,
    n: usize,
    scripts: Vec<CandidateScript>,
    schedule: Box<dyn FnOnce(usize) -> Box<dyn Schedule>>,
    timely: Box<dyn Fn(usize) -> Vec<ProcId>>,
    crash: Option<(u64, ProcId)>,
}

fn scenarios(n: usize) -> Vec<Scenario> {
    vec![
        Scenario {
            name: "all P, all timely",
            n,
            scripts: vec![CandidateScript::Always; n],
            schedule: Box::new(|_| Box::new(RoundRobin::new())),
            timely: Box::new(|n| (0..n).map(ProcId).collect()),
            crash: None,
        },
        Scenario {
            name: "one N-candidate",
            n,
            scripts: {
                let mut s = vec![CandidateScript::Always; n];
                s[n - 1] = CandidateScript::Never;
                s
            },
            schedule: Box::new(|_| Box::new(RoundRobin::new())),
            timely: Box::new(|n| (0..n).map(ProcId).collect()),
            crash: None,
        },
        Scenario {
            name: "one R-candidate",
            n,
            scripts: {
                let mut s = vec![CandidateScript::Always; n];
                s[n - 1] = CandidateScript::Blink {
                    on: 15_000,
                    off: 15_000,
                };
                s
            },
            schedule: Box::new(|_| Box::new(RoundRobin::new())),
            timely: Box::new(|n| (0..n).map(ProcId).collect()),
            crash: None,
        },
        Scenario {
            name: "one non-timely P",
            n,
            scripts: vec![CandidateScript::Always; n],
            // Linear growth: the last process is not timely but takes
            // enough steps within the prefix to converge (Def. 5 (b)
            // quantifies over infinite runs).
            schedule: Box::new(|n| {
                Box::new(PartiallySynchronous::with_growth(
                    (0..n - 1).map(ProcId).collect(),
                    4,
                    GapGrowth::Linear(4),
                ))
            }),
            timely: Box::new(|n| (0..n - 1).map(ProcId).collect()),
            crash: None,
        },
        Scenario {
            name: "flickering P",
            n,
            scripts: vec![CandidateScript::Always; n],
            schedule: Box::new(move |n| {
                // Long bursts so the flickerer completes whole Ω∆ loop
                // iterations per burst; linearly growing silences keep it
                // non-timely while letting it converge within the prefix.
                Box::new(Flicker::with_quiet_growth(
                    ProcId(n - 1),
                    512,
                    2_000,
                    GapGrowth::Linear(500),
                ))
            }),
            timely: Box::new(|n| (0..n - 1).map(ProcId).collect()),
            crash: None,
        },
        Scenario {
            name: "lowest id crashes",
            n,
            scripts: vec![CandidateScript::Always; n],
            schedule: Box::new(|_| Box::new(RoundRobin::new())),
            timely: Box::new(|n| (1..n).map(ProcId).collect()),
            crash: Some((40_000, ProcId(0))),
        },
    ]
}

fn main() {
    println!("E2: Omega-Delta from atomic registers + activity monitors (Fig. 3)");
    println!("    checking Definition 5 on every run\n");
    let mut rows = Vec::new();
    let mut failures = 0;
    for n in [2usize, 4, 6] {
        let steps: u64 = 60_000 * n as u64;
        for sc in scenarios(n) {
            let cfg = OmegaSystemConfig {
                n: sc.n,
                kind: OmegaKind::Atomic,
                scripts: sc.scripts.clone(),
                ..Default::default()
            };
            let mut run = RunConfig {
                max_steps: steps,
                crashes: Vec::new(),
                schedule: (sc.schedule)(n),
                nemesis: None,
            };
            if let Some((t, p)) = sc.crash {
                run = run.crash(t, p);
            }
            let out = run_omega_system(&cfg, run);
            out.report.assert_no_panics();
            let timely = (sc.timely)(n);
            let data = OmegaRunData::from_trace(&out.report.trace, n, &timely);
            let v = check_spec(&data, SpecParams::default(), false);
            if !v.ok {
                failures += 1;
            }
            let converged = tbwf_omega::spec::convergence_time(&out.report.trace, n);
            rows.push(vec![
                n.to_string(),
                sc.name.to_string(),
                steps.to_string(),
                v.elected
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".into()),
                converged.to_string(),
                if v.ok {
                    "ok".into()
                } else {
                    format!("FAIL {:?}", v.failures)
                },
            ]);
        }
    }
    print_table(
        &["n", "scenario", "steps", "leader", "converged@", "Def.5"],
        &rows,
    );
    println!("\n{failures} spec failure(s) (paper predicts 0)");
    assert_eq!(failures, 0);
}
