//! **E1 — Activity monitor conformance** (Figure 2, Theorem 10).
//!
//! Sweeps the full input grid of `A(p, q)` — each of `monitoring_p[q]`
//! and `active-for_q[p]` eventually-on, eventually-off, or toggling
//! forever — against three behaviors of the monitored process `q`
//! (timely, not timely, crashing), and checks Properties 1–6 of
//! Definition 9 on every run.
//!
//! Expected result: no property is ever violated (`viol` column empty).

use tbwf_bench::print_table;
use tbwf_monitor::fig2::{activity_monitor, OBS_FAULT, OBS_STATUS};
use tbwf_monitor::props::{check_pair, CheckParams, PairRun};
use tbwf_registers::RegisterFactory;
use tbwf_sim::schedule::{GapGrowth, PartiallySynchronous, RoundRobin, Schedule};
use tbwf_sim::{Env, Local, ProcId, RunConfig, SimBuilder};

#[derive(Clone, Copy, Debug)]
enum InputScript {
    On,
    Off,
    Toggle,
}

impl InputScript {
    fn value_at(self, t: u64) -> bool {
        match self {
            InputScript::On => true,
            InputScript::Off => false,
            InputScript::Toggle => (t / 6_000).is_multiple_of(2),
        }
    }

    fn label(self) -> &'static str {
        match self {
            InputScript::On => "on",
            InputScript::Off => "off",
            InputScript::Toggle => "toggle",
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum QBehavior {
    Timely,
    Slow,
    Crash,
}

impl QBehavior {
    fn label(self) -> &'static str {
        match self {
            QBehavior::Timely => "timely",
            QBehavior::Slow => "slow",
            QBehavior::Crash => "crash",
        }
    }
}

fn add_input_driver(
    b: &mut SimBuilder,
    pid: ProcId,
    key: &'static str,
    idx: u32,
    cell: Local<bool>,
    script: InputScript,
) {
    b.add_task(pid, "driver", move |env| {
        env.observe(key, idx, cell.get() as i64);
        loop {
            let v = script.value_at(env.now());
            if cell.get() != v {
                cell.set(v);
                env.observe(key, idx, v as i64);
            }
            env.tick()?;
        }
    });
}

fn run_one(mon: InputScript, act: InputScript, beh: QBehavior, steps: u64) -> PairRun {
    let factory = RegisterFactory::default();
    let pair = activity_monitor(&factory, ProcId(0), ProcId(1));
    let monitoring = pair.monitoring_side.monitoring.clone();
    let active_for = pair.monitored_side.active_for.clone();

    let mut b = SimBuilder::new();
    let p0 = b.add_process("p0");
    let ms = pair.monitoring_side;
    b.add_task(p0, "monitoring", move |env| ms.run(&env));
    add_input_driver(&mut b, p0, "monitoring", 1, monitoring, mon);
    let p1 = b.add_process("p1");
    let md = pair.monitored_side;
    b.add_task(p1, "monitored", move |env| md.run(&env));
    add_input_driver(&mut b, p1, "active_for", 0, active_for, act);

    // Linear gap growth: q is not timely (no fixed bound exists) but its
    // steps stay dense enough that "faultCntr increases without bound"
    // (Property 6) is visible in every window of a finite trace.
    let schedule: Box<dyn Schedule> = match beh {
        QBehavior::Slow => Box::new(PartiallySynchronous::with_growth(
            vec![ProcId(0)],
            4,
            GapGrowth::Linear(4),
        )),
        _ => Box::new(RoundRobin::new()),
    };
    let mut config = RunConfig {
        max_steps: steps,
        crashes: Vec::new(),
        schedule,
        nemesis: None,
    };
    if matches!(beh, QBehavior::Crash) {
        config = config.crash(steps / 4, ProcId(1));
    }
    let report = b.build().run(config);
    report.assert_no_panics();
    let trace = &report.trace;

    PairRun {
        total_time: trace.len() as u64,
        monitoring: trace.obs_series(ProcId(0), "monitoring", 1),
        active_for: trace.obs_series(ProcId(1), "active_for", 0),
        status: trace.obs_series(ProcId(0), OBS_STATUS, 1),
        fault: trace.obs_series(ProcId(0), OBS_FAULT, 1),
        q_crash: trace.crash_time(ProcId(1)),
        q_p_timely: matches!(beh, QBehavior::Timely),
        p_correct: true,
    }
}

fn main() {
    let steps = 60_000;
    let scripts = [InputScript::On, InputScript::Off, InputScript::Toggle];
    let behaviors = [QBehavior::Timely, QBehavior::Slow, QBehavior::Crash];
    println!("E1: A(p,q) specification (Def. 9, Props 1-6) over the full input grid");
    println!("    {steps} steps per run, strongest register adversary\n");

    let mut rows = Vec::new();
    let mut violations = 0;
    for beh in behaviors {
        for mon in scripts {
            for act in scripts {
                let run = run_one(mon, act, beh, steps);
                let rep = check_pair(&run, CheckParams::default());
                let verd = [rep.p1, rep.p2, rep.p3, rep.p4, rep.p5, rep.p6];
                let cells: Vec<String> = verd
                    .iter()
                    .map(|v| {
                        match v {
                            tbwf_monitor::PropVerdict::NotApplicable => "-",
                            tbwf_monitor::PropVerdict::Holds => "ok",
                            tbwf_monitor::PropVerdict::Violated => "VIOL",
                        }
                        .to_string()
                    })
                    .collect();
                if !rep.all_ok() {
                    violations += 1;
                }
                let mut row = vec![
                    beh.label().to_string(),
                    mon.label().to_string(),
                    act.label().to_string(),
                ];
                row.extend(cells);
                row.push(format!("{:?}", rep.violations()));
                rows.push(row);
            }
        }
    }
    print_table(
        &[
            "q is",
            "monitoring",
            "active-for",
            "P1",
            "P2",
            "P3",
            "P4",
            "P5",
            "P6",
            "viol",
        ],
        &rows,
    );
    println!("\n{violations} run(s) with violations (paper predicts 0)");
    assert_eq!(violations, 0, "Definition 9 violated");
}
