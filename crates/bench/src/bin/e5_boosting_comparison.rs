//! **E5 — TBWF vs. boosting vs. obstruction-freedom vs. CAS**
//! (Sections 1.2 and 2).
//!
//! Four engines run the same increment workload under two synchrony
//! regimes:
//!
//! * **all timely** (round-robin): every coordinated engine should let
//!   everyone progress;
//! * **one non-timely** process (growing gaps): the paper's Section 2
//!   claim — boosting à la \[7\]/\[8\] is *not* gracefully degrading: the
//!   non-timely process can stall all the timely ones; TBWF protects the
//!   timely ones; plain obstruction-freedom collapses under contention
//!   either way; Herlihy's CAS construction is immune but needs a strong
//!   primitive.

use tbwf_bench::{print_table, summarize};
use tbwf_omega::OmegaKind;
use tbwf_sim::schedule::{PartiallySynchronous, RoundRobin, Schedule};
use tbwf_sim::{ProcId, RunConfig};
use tbwf_universal::harness::{run_counter_workload, Engine, WorkloadConfig};

fn main() {
    let n = 4;
    let steps: u64 = 500_000;
    println!("E5: progress per engine under full vs. partial synchrony");
    println!("    n = {n}, {steps} steps, unlimited increments per process\n");

    let engines: [(&str, Engine); 4] = [
        ("TBWF (paper)", Engine::Tbwf(OmegaKind::Atomic)),
        ("FLMS-boost [7]", Engine::FlmsBoost),
        ("plain OF", Engine::PlainOf),
        ("Herlihy CAS", Engine::HerlihyCas),
    ];
    let regimes: [(&str, usize); 2] = [("all timely", n), ("one non-timely", n - 1)];

    let mut rows = Vec::new();
    for (rname, k) in regimes {
        for (ename, engine) in engines {
            let cfg = WorkloadConfig {
                n,
                engine,
                ops_per_proc: u64::MAX,
                ..Default::default()
            };
            let schedule: Box<dyn Schedule> = if k == n {
                Box::new(RoundRobin::new())
            } else {
                Box::new(PartiallySynchronous::new(
                    (0..k).map(ProcId).collect(),
                    4,
                    true,
                ))
            };
            let out = run_counter_workload(
                &cfg,
                RunConfig {
                    max_steps: steps,
                    crashes: Vec::new(),
                    schedule,
                    nemesis: None,
                },
            );
            out.report.assert_no_panics();
            out.assert_distinct_responses();
            let timely: Vec<u64> = out.completed[..k].to_vec();
            let slow: Vec<u64> = out.completed[k..].to_vec();
            rows.push(vec![
                rname.to_string(),
                ename.to_string(),
                summarize(&timely),
                summarize(&slow),
                (*timely.iter().min().unwrap()).to_string(),
            ]);
        }
    }
    print_table(
        &[
            "regime",
            "engine",
            "timely ops",
            "non-timely ops",
            "min timely",
        ],
        &rows,
    );
    println!();
    println!("expected shape (paper, Sections 1.2 & 2):");
    println!("  - all timely: TBWF, FLMS and CAS all progress for everyone");
    println!("  - one non-timely: TBWF keeps every timely process > 0;");
    println!("    FLMS lets the slow process stall the timely ones (min ~ 0);");
    println!("    plain OF collapses under contention; CAS is immune (strong primitive)");
}
