//! **E6 — Write efficiency of the register-based Ω∆** (closing remark of
//! Section 5.2).
//!
//! "If Pcandidates ∩ Timely ≠ ∅ then there is a time after which the only
//! processes that write to shared registers are the leader and processes
//! in Rcandidates."
//!
//! We run Figure 3 with (a) all-permanent candidates and (b) one
//! R-candidate blinker, and report which processes wrote to any shared
//! register during the last quarter of the run.

use std::collections::BTreeSet;
use tbwf_bench::print_table;
use tbwf_omega::{run_omega_system, CandidateScript, OmegaKind, OmegaSystemConfig, OBS_LEADER};
use tbwf_sim::schedule::RoundRobin;
use tbwf_sim::{ProcId, RunConfig};

fn main() {
    let n = 4;
    let steps: u64 = 240_000;
    println!("E6: write efficiency of Fig. 3 (who writes after stabilization?)");
    println!("    n = {n}, {steps} steps, writers measured over the last quarter\n");

    let scenarios: [(&str, Vec<CandidateScript>); 2] = [
        ("all P-candidates", vec![CandidateScript::Always; n]),
        ("one R-candidate (p3)", {
            let mut s = vec![CandidateScript::Always; n];
            s[n - 1] = CandidateScript::Blink {
                on: 10_000,
                off: 10_000,
            };
            s
        }),
    ];

    let mut rows = Vec::new();
    for (name, scripts) in scenarios {
        let cfg = OmegaSystemConfig {
            n,
            kind: OmegaKind::Atomic,
            scripts,
            ..Default::default()
        };
        let out = run_omega_system(&cfg, RunConfig::new(steps, RoundRobin::new()));
        out.report.assert_no_panics();
        let leader = out.handles[0].leader.get().expect("a leader is elected");
        let t0 = steps * 3 / 4;
        let writers = out.log.writers_since(t0);
        let writer_set: BTreeSet<ProcId> = writers.keys().copied().collect();
        let allowed: BTreeSet<ProcId> = if name.starts_with("one R") {
            [leader, ProcId(n - 1)].into_iter().collect()
        } else {
            [leader].into_iter().collect()
        };
        let ok = writer_set.is_subset(&allowed);
        rows.push(vec![
            name.to_string(),
            leader.to_string(),
            format!("{writer_set:?}"),
            format!("{allowed:?}"),
            if ok { "ok".into() } else { "FAIL".into() },
        ]);
        assert!(
            ok,
            "{name}: writers {writer_set:?} not within allowed {allowed:?} \
             (writes: {writers:?})"
        );
        // Sanity: the leader is stable over the measured window.
        let changes_late = out
            .report
            .trace
            .obs_series(ProcId(0), OBS_LEADER, 0)
            .iter()
            .filter(|(t, _)| *t >= t0)
            .count();
        assert_eq!(changes_late, 0, "leadership not stable in the window");
    }
    print_table(
        &["scenario", "leader", "writers (last 1/4)", "allowed", "ok"],
        &rows,
    );
    println!("\nwrite-efficiency claim of Section 5.2 holds ok");
}
