//! Shared helpers for the E1–E8 experiment binaries and the Criterion
//! benches. See `EXPERIMENTS.md` at the workspace root for the mapping
//! from experiments to paper claims.

pub mod gauntlet;

/// Prints an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

/// Deterministic seed list for multi-seed experiments.
pub fn seeds(k: usize) -> Vec<u64> {
    (0..k as u64).map(|i| 0xE4B5 + i * 7919).collect()
}

/// Formats a `min..max (sum)` summary of a slice.
pub fn summarize(xs: &[u64]) -> String {
    if xs.is_empty() {
        return "-".to_string();
    }
    format!(
        "{}..{} (S{})",
        xs.iter().min().unwrap(),
        xs.iter().max().unwrap(),
        xs.iter().sum::<u64>()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_formats() {
        assert_eq!(summarize(&[1, 5, 3]), "1..5 (S9)");
        assert_eq!(summarize(&[]), "-");
    }

    #[test]
    fn seeds_are_distinct() {
        let s = seeds(10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), s.len());
    }
}
