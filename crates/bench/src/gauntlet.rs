//! E12 — the degradation gauntlet: seeded randomized fault campaigns
//! over every layer of the reproduction, with shrinking repro artifacts.
//!
//! A campaign is a [`Scenario`]: a system kind (activity-monitor mesh,
//! Ω∆ on atomic or abortable registers, or the full Figure 7 TBWF
//! transform), a process count, a run length, and a [`FaultPlan`] for
//! the nemesis. [`run_scenario`] executes it deterministically and
//! checks the paper's invariants *after stabilization*:
//!
//! * **Monitor** — Properties 1–6 of Definition 9 for every ordered
//!   pair, with timeliness measured from the trace;
//! * **Ω∆ (both implementations)** — the Definition 5 spec
//!   ([`check_spec`]), plus *quiescence*: once the fault plan has played
//!   out and the settle point has passed, no measured-timely unchurned
//!   process may change its `leader` output again;
//! * **Ω∆ (atomic)** — `faultCntr_p[q]` stays bounded whenever `q` is
//!   measured-timely or crashed (Property 5 through the mesh);
//! * **TBWF** — no task panics, the counter history is linearizable,
//!   and every measured-timely process keeps completing operations
//!   after the settle point (timeliness-based wait-freedom).
//!
//! On a violation the caller shrinks the fault plan with [`shrink`]
//! (classic ddmin over the event list; every candidate subset is re-run
//! from the same seed) and serializes a self-contained repro artifact —
//! seed, scenario, minimized plan, violations — via [`artifact_json`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use tbwf::linearize::check_run_linearizable;
use tbwf::prelude::OBS_COMPLETED;
use tbwf::{TbwfSystemBuilder, Workload};
use tbwf_monitor::fig2::{OBS_FAULT, OBS_STATUS};
use tbwf_monitor::props::{check_pair, CheckParams, PairRun};
use tbwf_monitor::MonitorMesh;
use tbwf_omega::harness::{install_omega_with, OmegaOptions};
use tbwf_omega::spec::{check_spec, OmegaRunData, SpecParams};
use tbwf_omega::{add_external_candidate_driver, OmegaKind, OBS_LEADER};
use tbwf_registers::{RegisterFactory, RegisterFactoryConfig};
use tbwf_registers::{DIAL_ABORT_NO_EFFECT, DIAL_ABORT_STORM, DIAL_BASE, DIAL_CALM};
use tbwf_sim::analysis::{bounded_suffix, value_at};
use tbwf_sim::timeliness::measured_timely_set;
use tbwf_sim::{
    Executor, FaultAction, FaultEvent, FaultPlan, FaultTarget, Json, Nemesis, NemesisSchedule,
    ProcId, RunConfig, RunReport, Schedule, ScheduleCtl, SimBuilder, TaskOutcome, Trigger,
};
use tbwf_universal::object::{Counter, CounterOp};

/// Which system a campaign drives through the nemesis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemKind {
    /// A full mesh of Figure 2 activity monitors, all inputs on.
    Monitor,
    /// Figure 3 Ω∆ (atomic registers + monitor mesh).
    OmegaAtomic,
    /// Figures 4–6 Ω∆ (SWSR abortable registers).
    OmegaAbortable,
    /// The Figure 7 transform over a shared counter.
    Tbwf,
}

impl SystemKind {
    /// All kinds, in gauntlet order.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::Monitor,
        SystemKind::OmegaAtomic,
        SystemKind::OmegaAbortable,
        SystemKind::Tbwf,
    ];

    /// Stable name used in JSON artifacts and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Monitor => "monitor",
            SystemKind::OmegaAtomic => "omega_atomic",
            SystemKind::OmegaAbortable => "omega_abortable",
            SystemKind::Tbwf => "tbwf",
        }
    }

    /// Inverse of [`SystemKind::name`].
    pub fn from_name(s: &str) -> Option<SystemKind> {
        SystemKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// One self-contained campaign: everything [`run_scenario`] needs to
/// reproduce a run bit-for-bit.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Register-backend master seed.
    pub seed: u64,
    /// The system under test.
    pub kind: SystemKind,
    /// Number of processes.
    pub n: usize,
    /// Run length in global steps.
    pub steps: u64,
    /// The stabilization point: invariants that speak about "after the
    /// faults have played out" are checked from here on.
    pub settle: u64,
    /// Figure 3 lines 7–8 (self-punishment); `false` only in ablations.
    pub self_punish: bool,
    /// The fault plan the nemesis executes.
    pub plan: FaultPlan,
}

impl Scenario {
    /// Serializes the scenario (the `scenario` object of an artifact).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::Int(self.seed as i128)),
            ("kind", Json::str(self.kind.name())),
            ("n", Json::Int(self.n as i128)),
            ("steps", Json::Int(self.steps as i128)),
            ("settle", Json::Int(self.settle as i128)),
            ("self_punish", Json::Bool(self.self_punish)),
            ("plan", self.plan.to_json()),
        ])
    }

    /// Parses a scenario serialized by [`Scenario::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<Scenario, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("scenario lacks `{k}`"));
        let int = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| format!("`{k}` not an integer"))
        };
        let kind_name = field("kind")?.as_str().ok_or("`kind` not a string")?;
        Ok(Scenario {
            seed: int("seed")?,
            kind: SystemKind::from_name(kind_name)
                .ok_or_else(|| format!("unknown system kind {kind_name:?}"))?,
            n: int("n")? as usize,
            steps: int("steps")?,
            settle: int("settle")?,
            self_punish: field("self_punish")?
                .as_bool()
                .ok_or("`self_punish` not a bool")?,
            plan: FaultPlan::from_json(field("plan")?)?,
        })
    }
}

/// One invariant violation found by [`run_scenario`].
#[derive(Clone, Debug)]
pub struct Violation {
    /// Short machine-readable invariant name (`quiescence`, …).
    pub invariant: String,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl Violation {
    /// Builds a violation record for the named invariant.
    pub fn new(invariant: &str, detail: String) -> Violation {
        Violation {
            invariant: invariant.to_string(),
            detail,
        }
    }
}

/// The outcome of one campaign.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Invariant violations (empty on a passing campaign).
    pub violations: Vec<Violation>,
    /// Descriptions of the fault injections that actually fired, in
    /// firing order (from the trace's injection log).
    pub injections: Vec<String>,
    /// The measured timely set of the run.
    pub measured_timely: Vec<usize>,
}

fn collect_panics(report: &RunReport, out: &mut Vec<Violation>) {
    for (p, pr) in report.procs.iter().enumerate() {
        for (tname, outcome) in &pr.tasks {
            if let TaskOutcome::Panicked(m) = outcome {
                out.push(Violation::new("no-panic", format!("p{p}/{tname}: {m}")));
            }
        }
    }
}

/// The switch name of process `p`'s candidacy flag.
pub fn switch_name(p: usize) -> String {
    format!("cand[{p}]")
}

/// The gauge name of process `p`'s in-flight register-operation count.
pub fn gauge_name(p: usize) -> String {
    format!("inflight[{p}]")
}

/// Name of the factory-wide abort/effect policy dial.
pub const DIAL_NAME: &str = "policy";

/// Builds the nemesis for a scenario: schedule control, the factory's
/// policy dial, and one in-flight gauge per process. Candidacy switches
/// (Ω∆ kinds only) are registered by the caller.
fn base_nemesis(sc: &Scenario, factory: &RegisterFactory, ctl: &ScheduleCtl) -> Nemesis {
    let mut nem = Nemesis::new(sc.plan.clone());
    nem.control_schedule(ctl.clone());
    nem.register_dial(DIAL_NAME, factory.policy_dial().handle());
    for p in 0..sc.n {
        nem.register_gauge(&gauge_name(p), factory.inflight_gauge(ProcId(p)));
    }
    nem
}

fn factory_config(sc: &Scenario) -> RegisterFactoryConfig {
    RegisterFactoryConfig {
        seed: sc.seed,
        ..RegisterFactoryConfig::default()
    }
}

/// Which processes the plan churns via their candidacy switch; those are
/// exempt from the quiescence invariant (an R-candidate's own `leader`
/// output legitimately toggles through `?` on every churn).
pub fn churned(plan: &FaultPlan, n: usize) -> Vec<bool> {
    let mut c = vec![false; n];
    for ev in &plan.events {
        if let FaultAction::SetSwitch { switch, .. } = &ev.action {
            for (p, flag) in c.iter_mut().enumerate() {
                if *switch == switch_name(p) {
                    *flag = true;
                }
            }
        }
    }
    c
}

fn outcome_from_report(report: &RunReport, n: usize) -> (Outcome, Vec<ProcId>, Vec<ProcId>) {
    let crashed: Vec<ProcId> = report.trace.crashes.iter().map(|&(_, p)| p).collect();
    let measured = measured_timely_set(&report.trace.steps, n, &crashed);
    let mut out = Outcome {
        violations: Vec::new(),
        injections: report
            .trace
            .injections
            .iter()
            .map(|i| i.desc.clone())
            .collect(),
        measured_timely: measured.iter().map(|p| p.0).collect(),
    };
    collect_panics(report, &mut out.violations);
    (out, measured, crashed)
}

/// The schedule factory a scenario runs under: given the nemesis's
/// [`ScheduleCtl`] (which the fault plan's demote/flicker actions steer),
/// produce the run's schedule.
pub type MkSchedule<'a> = &'a mut dyn FnMut(ScheduleCtl) -> Box<dyn Schedule>;

/// Runs one campaign deterministically and checks its invariants.
pub fn run_scenario(sc: &Scenario) -> Outcome {
    run_scenario_under(sc, &mut |ctl| Box::new(NemesisSchedule::new(ctl))).0
}

/// Like [`run_scenario`], but the caller supplies the schedule and gets
/// the raw run report back alongside the verdict.
///
/// This is the model checker's seam: `tbwf-check` splices an enumerated
/// decision window into the background [`NemesisSchedule`] (wrapped in a
/// validation tap) and fingerprints the returned trace, while the
/// oracles stay exactly the gauntlet's. The default schedule —
/// `|ctl| Box::new(NemesisSchedule::new(ctl))` — reproduces
/// [`run_scenario`].
pub fn run_scenario_under(sc: &Scenario, mk_schedule: MkSchedule<'_>) -> (Outcome, RunReport) {
    match sc.kind {
        SystemKind::Monitor => run_monitor(sc, mk_schedule),
        SystemKind::OmegaAtomic | SystemKind::OmegaAbortable => run_omega(sc, mk_schedule),
        SystemKind::Tbwf => run_tbwf(sc, mk_schedule),
    }
}

fn run_monitor(sc: &Scenario, mk_schedule: MkSchedule<'_>) -> (Outcome, RunReport) {
    let factory = RegisterFactory::new(factory_config(sc));
    let mut b = SimBuilder::new();
    for p in 0..sc.n {
        b.add_process(&format!("p{p}"));
    }
    let mesh = MonitorMesh::install(&mut b, &factory, sc.n);
    for p in 0..sc.n {
        for q in 0..sc.n {
            if p != q {
                mesh.handles[p].monitoring.cell(ProcId(q)).set(true);
                mesh.handles[p].active_for.cell(ProcId(q)).set(true);
            }
        }
    }
    let ctl = ScheduleCtl::new();
    let nem = base_nemesis(sc, &factory, &ctl);
    let run = RunConfig::new(sc.steps, mk_schedule(ctl)).with_nemesis(nem);
    let report = b.build().run(run);

    let (mut out, measured, _) = outcome_from_report(&report, sc.n);
    let trace = &report.trace;
    let total = trace.len() as u64;
    for p in 0..sc.n {
        for q in 0..sc.n {
            if p == q {
                continue;
            }
            let pair = PairRun {
                total_time: total,
                // Both inputs are held on for the whole run.
                monitoring: vec![(0, 1)],
                active_for: vec![(0, 1)],
                status: trace.obs_series(ProcId(p), OBS_STATUS, q as u32),
                fault: trace.obs_series(ProcId(p), OBS_FAULT, q as u32),
                q_crash: trace.crash_time(ProcId(q)),
                q_p_timely: measured.contains(&ProcId(q)),
                p_correct: trace.is_correct(ProcId(p)),
            };
            let rep = check_pair(&pair, CheckParams::default());
            if !rep.all_ok() {
                out.violations.push(Violation::new(
                    "monitor-props",
                    format!("A(p{p}, p{q}) violates properties {:?}", rep.violations()),
                ));
            }
        }
    }
    (out, report)
}

fn run_omega(sc: &Scenario, mk_schedule: MkSchedule<'_>) -> (Outcome, RunReport) {
    let kind = match sc.kind {
        SystemKind::OmegaAtomic => OmegaKind::Atomic,
        _ => OmegaKind::Abortable,
    };
    let factory = RegisterFactory::new(factory_config(sc));
    let mut b = SimBuilder::new();
    for p in 0..sc.n {
        b.add_process(&format!("p{p}"));
    }
    let handles = install_omega_with(
        &mut b,
        &factory,
        sc.n,
        kind,
        OmegaOptions {
            self_punish: sc.self_punish,
        },
    );
    let ctl = ScheduleCtl::new();
    let mut nem = base_nemesis(sc, &factory, &ctl);
    for (p, h) in handles.iter().enumerate() {
        let desired = add_external_candidate_driver(&mut b, ProcId(p), h, true);
        nem.register_switch(&switch_name(p), desired);
    }
    let run = RunConfig::new(sc.steps, mk_schedule(ctl)).with_nemesis(nem);
    let report = b.build().run(run);

    let (mut out, measured, crashed) = outcome_from_report(&report, sc.n);
    let trace = &report.trace;
    let total = trace.len() as u64;

    // Definition 5 against the measured timely set.
    let data = OmegaRunData::from_trace(trace, sc.n, &measured);
    let verdict = check_spec(&data, SpecParams::default(), false);
    for f in &verdict.failures {
        out.violations.push(Violation::new("omega-spec", f.clone()));
    }

    // Quiescence: after the settle point, no measured-timely unchurned
    // process changes its leader output again.
    let churn = churned(&sc.plan, sc.n);
    for (p, churned_p) in churn.iter().enumerate() {
        if *churned_p || !measured.contains(&ProcId(p)) {
            continue;
        }
        let series = trace.obs_series(ProcId(p), OBS_LEADER, 0);
        if let Some(&(t, v)) = series.last() {
            if t > sc.settle {
                out.violations.push(Violation::new(
                    "quiescence",
                    format!(
                        "leader_p{p} still changed at t = {t} (to {v}), after settle = {}",
                        sc.settle
                    ),
                ));
            }
        }
    }

    // Property 5 through the mesh (atomic implementation only): the
    // fault counter on a timely or crashed peer stays bounded.
    if kind == OmegaKind::Atomic {
        for &p in &measured {
            for q in 0..sc.n {
                if q == p.0 {
                    continue;
                }
                let timely_or_crashed =
                    measured.contains(&ProcId(q)) || crashed.contains(&ProcId(q));
                if !timely_or_crashed {
                    continue;
                }
                let fault = trace.obs_series(p, OBS_FAULT, q as u32);
                if !bounded_suffix(&fault, total, 0.25) {
                    out.violations.push(Violation::new(
                        "fault-bounded",
                        format!(
                            "faultCntr_p{}[p{q}] keeps growing although p{q} is {}",
                            p.0,
                            if crashed.contains(&ProcId(q)) {
                                "crashed"
                            } else {
                                "timely"
                            }
                        ),
                    ));
                }
            }
        }
    }
    (out, report)
}

fn run_tbwf(sc: &Scenario, mk_schedule: MkSchedule<'_>) -> (Outcome, RunReport) {
    let ctl = ScheduleCtl::new();
    let plan = sc.plan.clone();
    let n = sc.n;
    let run = TbwfSystemBuilder::new(Counter)
        .processes(n)
        .omega(OmegaKind::Atomic)
        .seed(sc.seed)
        .workload_all(Workload::Unlimited(CounterOp::Inc))
        .run_wired(
            RunConfig::new(sc.steps, mk_schedule(ctl.clone())),
            |factory, cfg| {
                let mut nem = Nemesis::new(plan);
                nem.control_schedule(ctl.clone());
                nem.register_dial(DIAL_NAME, factory.policy_dial().handle());
                for p in 0..n {
                    nem.register_gauge(&gauge_name(p), factory.inflight_gauge(ProcId(p)));
                }
                cfg.nemesis = Some(nem);
            },
        );

    let (mut out, measured, _) = outcome_from_report(&run.report, sc.n);
    let trace = &run.report.trace;

    // Each increment's response is its rank in the linearization order,
    // so reported responses must be distinct (a duplicate rank means two
    // increments linearized at the same point — a genuine safety
    // violation). The ranks need not be contiguous: a process crashed or
    // halted between an increment taking effect and its response being
    // reported leaves a hole, at most one per process.
    let mut resp: Vec<i64> = run.results.iter().flatten().map(|r| r.resp).collect();
    let total_ops = resp.len();
    resp.sort_unstable();
    if resp.windows(2).any(|w| w[0] == w[1]) {
        out.violations.push(Violation::new(
            "linearizable",
            format!("duplicate increment rank among {total_ops} responses"),
        ));
    }
    let max_resp = resp.last().copied().unwrap_or(0);
    if max_resp - total_ops as i64 > sc.n as i64 {
        out.violations.push(Violation::new(
            "linearizable",
            format!(
                "{} unreported effective increments (max rank {max_resp}, {total_ops} responses) \
                 exceeds one in-flight operation per process (n = {})",
                max_resp - total_ops as i64,
                sc.n
            ),
        ));
    }
    for (p, r) in run.results.iter().enumerate() {
        if r.iter().any(|op| op.time < op.invoked) {
            out.violations.push(Violation::new(
                "linearizable",
                format!("p{p} reports an inverted operation interval"),
            ));
        }
    }

    // On small *complete* histories — every effective increment reported,
    // i.e. the ranks are exactly 1..=total — run the full Wing & Gong
    // search on top of the rank tests. Gauntlet-scale campaigns produce
    // thousands of operations and skip this; the model checker's short
    // horizons land under the cap.
    if total_ops <= 256 && max_resp == total_ops as i64 {
        if let Err(e) = check_run_linearizable(&Counter, &run) {
            out.violations.push(Violation::new(
                "linearizable",
                format!("no linearization of the {total_ops}-operation history exists ({e:?})"),
            ));
        }
    }

    // Timeliness-based wait-freedom: every measured-timely process keeps
    // completing operations after the settle point.
    for &p in &measured {
        let series = trace.obs_series(p, OBS_COMPLETED, 0);
        let at_settle = value_at(&series, sc.settle).unwrap_or(0);
        let at_end = series.last().map(|&(_, v)| v).unwrap_or(0);
        if at_end <= at_settle {
            out.violations.push(Violation::new(
                "timely-progress",
                format!(
                    "timely p{} completed no operation after settle = {} (stuck at {at_end})",
                    p.0, sc.settle
                ),
            ));
        }
    }
    (out, run.report)
}

// ---------------------------------------------------------------------
// Campaign generation
// ---------------------------------------------------------------------

/// Generates the `i`-th healthy campaign for a system kind: a random but
/// *admissible* fault plan — crashes (timed, leader-aimed, mid-operation),
/// temporary demotions and flickers (always paired with their recovery),
/// candidacy churn (Ω∆ kinds), and register-adversary dial bursts — all
/// scheduled to play out before the settle point so the paper's
/// after-stabilization invariants apply.
pub fn random_scenario(kind: SystemKind, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15E_A5E5_u64);
    let (n, steps) = match kind {
        SystemKind::Monitor => (rng.random_range(2..=4usize), 40_000u64),
        SystemKind::OmegaAtomic => (rng.random_range(2..=4usize), 40_000),
        SystemKind::OmegaAbortable => (rng.random_range(2..=3usize), 40_000),
        SystemKind::Tbwf => (rng.random_range(2..=3usize), 200_000),
    };
    let settle = steps / 2;
    // Every event fires in the first 3/8 of the run, leaving an eighth
    // of the run for re-stabilization before the settle point.
    let horizon = (steps * 3) / 8;
    let mut plan = FaultPlan::new();
    let mut crashes = 0usize;
    let units = rng.random_range(1..=4usize);
    for _ in 0..units {
        let p = rng.random_range(0..n);
        let t1 = rng.random_range(200..horizon / 2);
        let t2 = rng.random_range(t1 + 100..horizon);
        match rng.random_range(0..6u32) {
            0 | 1 if crashes + 1 < n => {
                crashes += 1;
                plan = match rng.random_range(0..3u32) {
                    // A plain timed crash.
                    0 => plan.with(Trigger::At(t1), FaultAction::Crash(FaultTarget::Proc(p))),
                    // Crash whoever is leader when the trigger fires
                    // (Ω∆-backed kinds only; the monitor mesh announces
                    // no leader, so fall back to a timed crash).
                    1 if kind != SystemKind::Monitor => plan.with(
                        Trigger::OnObs {
                            at: t1,
                            key: OBS_LEADER.to_string(),
                        },
                        FaultAction::Crash(FaultTarget::ObsValue),
                    ),
                    // Crash p between `invoke_` and `complete_` of a
                    // register operation.
                    _ => plan.with(
                        Trigger::OnGauge {
                            at: t1,
                            gauge: gauge_name(p),
                            min: 1,
                        },
                        FaultAction::Crash(FaultTarget::Proc(p)),
                    ),
                };
            }
            2 => {
                plan = plan
                    .with(Trigger::At(t1), FaultAction::Demote(FaultTarget::Proc(p)))
                    .with(Trigger::At(t2), FaultAction::Promote(FaultTarget::Proc(p)));
            }
            3 => {
                plan = plan
                    .with(
                        Trigger::At(t1),
                        FaultAction::FlickerStart(FaultTarget::Proc(p)),
                    )
                    .with(
                        Trigger::At(t2),
                        FaultAction::FlickerStop(FaultTarget::Proc(p)),
                    );
            }
            4 if matches!(kind, SystemKind::OmegaAtomic | SystemKind::OmegaAbortable) => {
                plan = plan
                    .with(
                        Trigger::At(t1),
                        FaultAction::SetSwitch {
                            switch: switch_name(p),
                            on: false,
                        },
                    )
                    .with(
                        Trigger::At(t2),
                        FaultAction::SetSwitch {
                            switch: switch_name(p),
                            on: true,
                        },
                    );
            }
            _ => {
                let mode = [DIAL_ABORT_STORM, DIAL_CALM, DIAL_ABORT_NO_EFFECT]
                    [rng.random_range(0..3usize)];
                plan = plan
                    .with(
                        Trigger::At(t1),
                        FaultAction::SetDial {
                            dial: DIAL_NAME.to_string(),
                            value: mode,
                        },
                    )
                    .with(
                        Trigger::At(t2),
                        FaultAction::SetDial {
                            dial: DIAL_NAME.to_string(),
                            value: DIAL_BASE,
                        },
                    );
            }
        }
    }
    Scenario {
        seed,
        kind,
        n,
        steps,
        settle,
        self_punish: true,
        plan,
    }
}

/// The deliberately broken campaign: Figure 3 Ω∆ with self-punishment
/// (lines 7–8) disabled and a candidacy churner that re-enters the
/// competition *after* the settle point. With punishment the churner's
/// counter is handicapped and leadership never moves; without it the
/// churner re-enters at counter parity, steals leadership from the
/// stable leader, and violates quiescence at the unchurned process.
pub fn ablation_scenario(seed: u64) -> Scenario {
    let churn = |t: u64, on: bool| {
        (
            Trigger::At(t),
            FaultAction::SetSwitch {
                switch: switch_name(0),
                on,
            },
        )
    };
    let mut plan = FaultPlan::new();
    for (trig, act) in [
        // Priming churn, well before the settle point: under
        // self-punishment this leaves p0 handicapped.
        churn(2_000, false),
        churn(3_000, true),
        // Post-settle churn: the event the ablation turns into a
        // leadership theft.
        churn(18_000, false),
        churn(21_000, true),
    ] {
        plan = plan.with(trig, act);
    }
    Scenario {
        seed,
        kind: SystemKind::OmegaAtomic,
        n: 2,
        steps: 30_000,
        settle: 15_000,
        self_punish: false,
        plan,
    }
}

// ---------------------------------------------------------------------
// Parallel campaign execution
// ---------------------------------------------------------------------

/// The seed of the `i`-th campaign of a gauntlet run (shared by every
/// driver so serial and parallel runs test identical scenarios).
pub fn campaign_seed(i: usize) -> u64 {
    0xE12_000 + i as u64
}

/// The deterministic campaign list of a gauntlet run: `total` campaigns
/// split evenly (ceiling division) across the four system kinds,
/// kind-major, with the gauntlet's fixed seed sequence.
pub fn campaign_list(total: usize) -> Vec<Scenario> {
    let per_kind = total.div_ceil(SystemKind::ALL.len());
    let mut out = Vec::with_capacity(per_kind * SystemKind::ALL.len());
    for kind in SystemKind::ALL {
        for i in 0..per_kind {
            out.push(random_scenario(kind, campaign_seed(i)));
        }
    }
    out
}

/// The full record of one campaign: its outcome plus, when it violated,
/// the ddmin-shrunk scenario and the shrunk plan's re-run outcome.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// The campaign as executed.
    pub scenario: Scenario,
    /// Verdict of the full plan.
    pub outcome: Outcome,
    /// On a violation: the 1-minimal repro scenario and its outcome
    /// (exactly what [`artifact_json`] serializes to disk).
    pub shrunk: Option<(Scenario, Outcome)>,
}

impl CampaignResult {
    /// Serializes the campaign record — scenario, verdict, violations,
    /// and the shrunk repro plan if any.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("campaign", artifact_json(&self.scenario, &self.outcome)),
            (
                "shrunk",
                match &self.shrunk {
                    Some((sc, out)) => artifact_json(sc, out),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Runs every scenario through the executor — one campaign per job,
/// shrinking any failure inside the job — and returns the results in
/// campaign order.
///
/// Campaigns share no state (each builds its own registers, nemesis and
/// schedule, and each run is a deterministic function of its scenario),
/// and the executor collects by index, so the result list — verdicts,
/// violation lists, shrunk repro plans — is byte-identical for every
/// worker count. `tests/parallel_determinism.rs` pins this down.
pub fn run_campaigns(scenarios: &[Scenario], executor: &Executor) -> Vec<CampaignResult> {
    executor.run(scenarios.len(), |i| {
        let scenario = scenarios[i].clone();
        let outcome = run_scenario(&scenario);
        let shrunk = if outcome.violations.is_empty() {
            None
        } else {
            let min = shrink(&scenario);
            let min_out = run_scenario(&min);
            Some((min, min_out))
        };
        CampaignResult {
            scenario,
            outcome,
            shrunk,
        }
    })
}

/// Serializes a whole gauntlet run as one JSON array, in campaign order.
/// The parallel-determinism test compares this byte-for-byte across
/// worker counts.
pub fn report_json(results: &[CampaignResult]) -> Json {
    Json::Arr(results.iter().map(CampaignResult::to_json).collect())
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Classic ddmin over an arbitrary item list: repeatedly tests subsets
/// (and complements of subsets) of `items`, keeping any strictly smaller
/// list for which `violates` still holds, until the list is 1-minimal.
/// Returns `items` unchanged if the full list does not violate (nothing
/// to shrink). Deterministic: candidate order is a pure function of the
/// input, so equal inputs shrink identically.
pub fn ddmin<E: Clone>(items: &[E], violates: &mut dyn FnMut(&[E]) -> bool) -> Vec<E> {
    let mut cur: Vec<E> = items.to_vec();
    if !violates(&cur) {
        return cur;
    }
    let mut granularity = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(granularity);
        let chunks: Vec<&[E]> = cur.chunks(chunk).collect();
        let mut reduced = None;
        // Try each chunk alone (fast path to tiny lists)…
        for c in &chunks {
            if c.len() < cur.len() && violates(c) {
                reduced = Some((c.to_vec(), 2));
                break;
            }
        }
        // …then each complement.
        if reduced.is_none() && chunks.len() > 2 {
            for i in 0..chunks.len() {
                let complement: Vec<E> = chunks
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .flat_map(|(_, c)| c.iter().cloned())
                    .collect();
                if complement.len() < cur.len() && violates(&complement) {
                    reduced = Some((complement, granularity.saturating_sub(1).max(2)));
                    break;
                }
            }
        }
        match reduced {
            Some((next, g)) => {
                cur = next;
                granularity = g.min(cur.len().max(2));
            }
            None if granularity < cur.len() => granularity = (granularity * 2).min(cur.len()),
            None => break,
        }
    }
    cur
}

/// Minimizes a violating scenario's fault plan with [`ddmin`]: every
/// candidate subset is re-run from the same seed, and any subset that
/// still violates is kept. Returns the shrunken scenario (identical to
/// the input except for the plan; unchanged if not reproducible).
pub fn shrink(sc: &Scenario) -> Scenario {
    let mut violates = |events: &[FaultEvent]| -> bool {
        let mut cand = sc.clone();
        cand.plan = FaultPlan {
            events: events.to_vec(),
        };
        !run_scenario(&cand).violations.is_empty()
    };
    let mut min = sc.clone();
    min.plan = FaultPlan {
        events: ddmin(&sc.plan.events, &mut violates),
    };
    min
}

// ---------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------

/// Serializes a self-contained repro artifact: the (possibly shrunken)
/// scenario plus the violations and injections of its run.
pub fn artifact_json(sc: &Scenario, out: &Outcome) -> Json {
    Json::obj([
        ("scenario", sc.to_json()),
        (
            "violations",
            Json::Arr(
                out.violations
                    .iter()
                    .map(|v| {
                        Json::obj([
                            ("invariant", Json::str(&v.invariant)),
                            ("detail", Json::str(&v.detail)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "injections",
            Json::Arr(out.injections.iter().map(Json::str).collect()),
        ),
        (
            "measured_timely",
            Json::Arr(
                out.measured_timely
                    .iter()
                    .map(|&p| Json::Int(p as i128))
                    .collect(),
            ),
        ),
    ])
}

/// Writes an artifact as pretty-printed JSON to `dir/stem.json`,
/// creating `dir` if needed; returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifact(dir: &Path, stem: &str, artifact: &Json) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.json"));
    std::fs::write(&path, artifact.to_string_pretty() + "\n")?;
    Ok(path)
}

/// Reads the scenario back out of an artifact file (the `--repro` mode
/// of the gauntlet binary).
///
/// # Errors
///
/// Returns a description of the I/O or parse failure.
pub fn scenario_from_artifact(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text)?;
    let sc = json.get("scenario").unwrap_or(&json);
    Scenario::from_json(sc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_json_round_trips() {
        let sc = random_scenario(SystemKind::OmegaAtomic, 42);
        let json = sc.to_json();
        let back = Scenario::from_json(&json).expect("parse");
        assert_eq!(back.seed, sc.seed);
        assert_eq!(back.kind, sc.kind);
        assert_eq!(back.n, sc.n);
        assert_eq!(back.steps, sc.steps);
        assert_eq!(back.settle, sc.settle);
        assert_eq!(back.self_punish, sc.self_punish);
        assert_eq!(back.plan, sc.plan);
        // And through text.
        let reparsed = Json::parse(&json.to_string_compact()).expect("reparse");
        assert_eq!(Scenario::from_json(&reparsed).unwrap().plan, sc.plan);
    }

    #[test]
    fn ablation_shape_is_healthy_with_punishment_enabled() {
        let mut sc = ablation_scenario(7);
        sc.self_punish = true;
        let out = run_scenario(&sc);
        assert!(
            out.violations.is_empty(),
            "punishment enabled must pass: {:?}",
            out.violations
        );
    }

    #[test]
    fn ablation_violates_quiescence_and_shrinks_small() {
        let sc = ablation_scenario(7);
        let out = run_scenario(&sc);
        assert!(
            out.violations.iter().any(|v| v.invariant == "quiescence"),
            "expected a quiescence violation, got {:?}",
            out.violations
        );
        let min = shrink(&sc);
        assert!(
            !min.plan.events.is_empty() && min.plan.events.len() <= 5,
            "shrunken plan has {} events",
            min.plan.events.len()
        );
        // The minimized plan still reproduces.
        assert!(!run_scenario(&min).violations.is_empty());
    }

    #[test]
    fn healthy_campaigns_have_no_violations() {
        for kind in [SystemKind::Monitor, SystemKind::OmegaAtomic] {
            let sc = random_scenario(kind, 3);
            let out = run_scenario(&sc);
            assert!(
                out.violations.is_empty(),
                "{}: {:?}",
                kind.name(),
                out.violations
            );
        }
    }
}
