//! B1 — register operation costs, simulated and native backends.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use tbwf_registers::native::{NativeAbortableReg, NativeAtomicReg, NativeEnv};
use tbwf_registers::{AbortableRegister, AtomicRegister, RegisterFactory};
use tbwf_sim::{Env, FreeRunEnv, ProcId};

fn sim_registers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-registers");
    let factory = RegisterFactory::default();
    let env = FreeRunEnv::new(ProcId(0));

    let atomic = factory.atomic("A", 0i64);
    g.bench_function("atomic-write", |b| {
        b.iter(|| atomic.write(&env, black_box(1)).unwrap())
    });
    g.bench_function("atomic-read", |b| b.iter(|| atomic.read(&env).unwrap()));

    let abortable = factory.abortable("B", 0i64);
    g.bench_function("abortable-write-solo", |b| {
        b.iter(|| abortable.write(&env, black_box(1)).unwrap())
    });
    g.bench_function("abortable-read-solo", |b| {
        b.iter(|| abortable.read(&env).unwrap())
    });

    let safe = factory.safe("S", 0);
    g.bench_function("safe-read", |b| b.iter(|| safe.read(&env).unwrap()));

    let cas = factory.cas("C", 0i64);
    g.bench_function("cas", |b| {
        b.iter(|| {
            cas.compare_and_swap(&env, black_box(&0), black_box(0))
                .unwrap()
        })
    });
    g.finish();
}

fn native_registers(c: &mut Criterion) {
    let mut g = c.benchmark_group("native-registers");
    let (envs, _stop) = NativeEnv::group(1);
    let env = envs[0].clone();

    let atomic = NativeAtomicReg::new(0i64);
    g.bench_function("atomic-write", |b| {
        b.iter(|| atomic.write(&env, black_box(1)).unwrap())
    });

    let abortable = Arc::new(NativeAbortableReg::new(0i64));
    g.bench_function("abortable-write-solo", |b| {
        b.iter(|| abortable.write(&env, black_box(1)).unwrap())
    });
    g.bench_function("abortable-read-solo", |b| {
        b.iter(|| abortable.read(&env).unwrap())
    });

    // Contended: one background writer hammering while we read.
    let (envs2, stop2) = NativeEnv::group(2);
    let reg = Arc::new(NativeAbortableReg::new(0i64));
    let bg = {
        let reg = Arc::clone(&reg);
        let env = envs2[1].clone();
        std::thread::spawn(move || {
            let mut i = 0i64;
            while env.tick().is_ok() {
                i += 1;
                let _ = reg.write(&env, i);
            }
        })
    };
    let renv = envs2[0].clone();
    g.bench_function("abortable-read-contended", |b| {
        b.iter(|| black_box(reg.read(&renv).unwrap()))
    });
    stop2.store(true, std::sync::atomic::Ordering::Relaxed);
    bg.join().unwrap();
    g.finish();
}

criterion_group!(benches, sim_registers, native_registers);
criterion_main!(benches);
