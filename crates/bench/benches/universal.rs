//! B4–B6 — universal-construction costs: query-abortable operations
//! (solo), the full TBWF stack under contention, and the baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use tbwf_omega::OmegaKind;
use tbwf_registers::{RegisterFactory, RegisterFactoryConfig};
use tbwf_sim::schedule::RoundRobin;
use tbwf_sim::{FreeRunEnv, ProcId, RunConfig};
use tbwf_universal::baselines::CasUniversal;
use tbwf_universal::harness::{run_counter_workload, Engine, WorkloadConfig};
use tbwf_universal::object::{Counter, CounterOp};
use tbwf_universal::{Outcome, QaObject};

fn qa_solo_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("qa-object");
    g.bench_function("solo-inc", |b| {
        let factory = Arc::new(RegisterFactory::new(RegisterFactoryConfig::default()));
        let obj = QaObject::new(Counter, 2, factory);
        let env = FreeRunEnv::new(ProcId(0));
        let mut session = obj.session(ProcId(0));
        b.iter(|| {
            // Solo fresh-slot applies always succeed in one call.
            match session.apply(&env, CounterOp::Inc).unwrap() {
                Outcome::Done(v) => v,
                other => panic!("solo apply must succeed, got {other:?}"),
            }
        })
    });
    g.bench_function("cas-universal-solo-inc", |b| {
        let factory = Arc::new(RegisterFactory::new(RegisterFactoryConfig::default()));
        let obj = CasUniversal::new(Counter, 2, factory);
        let env = FreeRunEnv::new(ProcId(0));
        let mut session = obj.session(ProcId(0));
        b.iter(|| session.apply(&env, CounterOp::Inc).unwrap())
    });
    g.finish();
}

fn engine_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine-run-100k-steps");
    g.sample_size(10).measurement_time(Duration::from_secs(15));
    let engines = [
        ("tbwf-atomic", Engine::Tbwf(OmegaKind::Atomic)),
        ("tbwf-abortable", Engine::Tbwf(OmegaKind::Abortable)),
        ("herlihy-cas", Engine::HerlihyCas),
        ("flms-boost", Engine::FlmsBoost),
    ];
    for (name, engine) in engines {
        g.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, &engine| {
            b.iter(|| {
                let cfg = WorkloadConfig {
                    n: 3,
                    engine,
                    ..Default::default()
                };
                let out = run_counter_workload(&cfg, RunConfig::new(100_000, RoundRobin::new()));
                out.report.assert_no_panics();
                out.completed.iter().sum::<u64>()
            })
        });
    }
    g.finish();
}

fn native_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("native-tbwf");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    // Real-thread throughput: one client hammering while the full
    // monitor + omega stack runs on background threads.
    g.bench_function("counter-inc-n2", |b| {
        let system = tbwf::native::NativeTbwf::start(Counter, 2, OmegaKind::Atomic);
        let mut client = system.client(0);
        // Warm up until leadership stabilizes.
        for _ in 0..50 {
            let _ = client.invoke(CounterOp::Inc).unwrap();
        }
        b.iter(|| client.invoke(CounterOp::Inc).unwrap());
        drop(client);
        system.shutdown();
    });
    g.finish();
}

criterion_group!(benches, qa_solo_ops, engine_runs, native_stack);
criterion_main!(benches);
