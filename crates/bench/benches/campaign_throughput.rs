//! B6 — campaign-executor throughput: the E12 gauntlet's campaign grid
//! executed serially (`--jobs 1`) vs work-sharded across all cores by
//! [`tbwf_sim::Executor`].
//!
//! Campaigns are independent seeded runs, so ideal scaling is linear in
//! core count; the bench reports wall-clock campaigns/s per worker
//! count, the parallel speedup, and — as a live cross-check of the
//! determinism contract — asserts that every worker count produced a
//! byte-identical campaign report. Emits both a human table and
//! `results/bench_campaign_throughput.json` so the perf trajectory is
//! diffable across PRs. Pass `--quick` for a smoke-sized grid.

use std::path::Path;
use std::time::Instant;
use tbwf_bench::gauntlet::{campaign_list, report_json, run_campaigns, write_artifact};
use tbwf_bench::print_table;
use tbwf_sim::{resolve_jobs, Executor, Json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let total = if quick { 16 } else { 80 };
    let scenarios = campaign_list(total);
    // Always measure a parallel row (even on one core, where it shows
    // the timesharing overhead instead of a speedup) so the
    // byte-identical-report assertion below is exercised everywhere.
    let worker_counts = vec![1usize, resolve_jobs(None).max(2)];
    println!(
        "campaign_throughput: {} campaigns ({} per system kind), worker counts {:?}{}\n",
        scenarios.len(),
        scenarios.len() / 4,
        worker_counts,
        if quick { " (--quick)" } else { "" }
    );

    let mut series = Vec::new();
    let mut reports: Vec<String> = Vec::new();
    for &jobs in &worker_counts {
        let executor = Executor::new(jobs);
        let start = Instant::now();
        let results = run_campaigns(&scenarios, &executor);
        let secs = start.elapsed().as_secs_f64();
        reports.push(report_json(&results).to_string_compact());
        series.push((jobs, secs, scenarios.len() as f64 / secs));
    }
    for r in &reports[1..] {
        assert_eq!(
            r, &reports[0],
            "parallel campaign report differs from the serial one"
        );
    }

    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|&(jobs, secs, cps)| vec![jobs.to_string(), format!("{secs:.2}"), format!("{cps:.1}")])
        .collect();
    print_table(&["jobs", "secs", "campaigns/s"], &rows);
    let speedup = series[0].1 / series.last().unwrap().1;
    println!(
        "\nspeedup at {} worker(s): {:.2}x; all reports byte-identical ok",
        series.last().unwrap().0,
        speedup
    );

    let json = Json::obj([
        ("bench", Json::str("campaign_throughput")),
        (
            "config",
            Json::obj([
                ("campaigns", Json::Int(scenarios.len() as i128)),
                ("quick", Json::Bool(quick)),
            ]),
        ),
        (
            "series",
            Json::Arr(
                series
                    .iter()
                    .map(|&(jobs, secs, cps)| {
                        Json::obj([
                            ("jobs", Json::Int(jobs as i128)),
                            ("secs", Json::Float(secs)),
                            ("campaigns_per_sec", Json::Float(cps)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("speedup", Json::Float(speedup)),
        ("reports_identical", Json::Bool(true)),
    ]);
    // Cargo runs bench binaries with cwd = the package root; anchor the
    // artifact in the workspace-level results/ directory instead.
    let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    match write_artifact(&results, "bench_campaign_throughput", &json) {
        Ok(p) => println!("json: {}", p.display()),
        Err(e) => eprintln!("cannot write bench json: {e}"),
    }
}
