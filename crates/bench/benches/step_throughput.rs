//! B5 — step-engine throughput: the same 3-process Ω∆ system driven by
//! the native poll backend (direct `Stepper::step` calls) vs the
//! blocking-thread adapter (one gate-backed OS thread per task, two
//! condvar handoffs per step).
//!
//! Both runs execute an identical number of global steps and produce
//! byte-identical traces (see `backends_agree_on_full_omega_system` in
//! `tbwf-omega`), so the per-iteration time ratio is exactly the
//! per-step engine overhead ratio.
//!
//! Self-timed harness (no criterion): wall-clocks whole system runs and
//! emits both a human table and `results/bench_step_throughput.json`
//! (via `tbwf_sim::Json`), so the perf trajectory is diffable across
//! PRs. Pass `--quick` for a smoke-sized measurement window.

// `for p in 0..N` indexing parallel handle vectors mirrors the paper's
// per-process wiring; an iterator chain would obscure it.
#![allow(clippy::needless_range_loop)]

use std::path::Path;
use std::time::{Duration, Instant};
use tbwf_bench::gauntlet::write_artifact;
use tbwf_bench::print_table;
use tbwf_omega::harness::install_omega;
use tbwf_omega::{add_candidate_driver, CandidateScript, OmegaKind};
use tbwf_registers::{RegisterFactory, RegisterFactoryConfig};
use tbwf_sim::schedule::RoundRobin;
use tbwf_sim::{Json, ProcId, RunConfig, SimBuilder, TaskBody, TaskSpawner};

/// Global steps per iteration; one iteration = one complete system run.
const STEPS: u64 = 10_000;
const N: usize = 3;

/// Hides the builder's native poll backend so every stepper goes through
/// the default blocking adapter and runs on a gate-backed thread.
struct ThreadBackend<'a>(&'a mut SimBuilder);

impl TaskSpawner for ThreadBackend<'_> {
    fn spawn_task(&mut self, pid: ProcId, name: &str, body: TaskBody) {
        self.0.spawn_task(pid, name, body);
    }
}

fn omega_run(kind: OmegaKind, threads: bool) {
    let factory = RegisterFactory::new(RegisterFactoryConfig::default());
    let mut b = SimBuilder::new();
    for p in 0..N {
        b.add_process(&format!("p{p}"));
    }
    let handles;
    if threads {
        let mut t = ThreadBackend(&mut b);
        handles = install_omega(&mut t, &factory, N, kind);
        for p in 0..N {
            add_candidate_driver(&mut t, ProcId(p), &handles[p], CandidateScript::Always);
        }
    } else {
        handles = install_omega(&mut b, &factory, N, kind);
        for p in 0..N {
            add_candidate_driver(&mut b, ProcId(p), &handles[p], CandidateScript::Always);
        }
    }
    let report = b.build().run(RunConfig::new(STEPS, RoundRobin::new()));
    report.assert_no_panics();
    assert!(
        handles[0].leader.get().is_some(),
        "no leader elected in bench run"
    );
}

/// Runs `f` once to warm up, then repeatedly until `target` wall time has
/// elapsed; returns `(iterations, seconds)`.
fn measure(target: Duration, mut f: impl FnMut()) -> (u32, f64) {
    f();
    let mut iters = 0u32;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed();
        if elapsed >= target {
            return (iters, elapsed.as_secs_f64());
        }
    }
}

struct Sample {
    system: &'static str,
    backend: &'static str,
    iters: u32,
    secs: f64,
}

impl Sample {
    fn secs_per_iter(&self) -> f64 {
        self.secs / self.iters as f64
    }

    fn steps_per_sec(&self) -> f64 {
        STEPS as f64 / self.secs_per_iter()
    }
}

fn main() {
    // Cargo passes `--bench` (and possibly criterion-style filters) to a
    // harness = false main; only `--quick` is meaningful here.
    let quick = std::env::args().any(|a| a == "--quick");
    let target = if quick {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(5)
    };
    println!(
        "step_throughput: {N}-process Omega-Delta, {STEPS} steps/run, \
         {:.1}s window per cell{}\n",
        target.as_secs_f64(),
        if quick { " (--quick)" } else { "" }
    );

    let mut samples = Vec::new();
    for (kind, system) in [
        (OmegaKind::Atomic, "atomic"),
        (OmegaKind::Abortable, "abortable"),
    ] {
        for (threads, backend) in [(false, "stepper"), (true, "thread")] {
            let (iters, secs) = measure(target, || omega_run(kind, threads));
            samples.push(Sample {
                system,
                backend,
                iters,
                secs,
            });
        }
    }

    let mut rows = Vec::new();
    for s in &samples {
        rows.push(vec![
            s.system.to_string(),
            s.backend.to_string(),
            s.iters.to_string(),
            format!("{:.3}", s.secs_per_iter() * 1e3),
            format!("{:.2}", s.steps_per_sec() / 1e6),
        ]);
    }
    print_table(
        &["system", "backend", "iters", "ms/iter", "Msteps/s"],
        &rows,
    );

    let speedup = |system: &str| -> f64 {
        let by = |backend: &str| {
            samples
                .iter()
                .find(|s| s.system == system && s.backend == backend)
                .expect("sample exists")
                .secs_per_iter()
        };
        by("thread") / by("stepper")
    };
    println!(
        "\nstepper/thread speedup: atomic {:.1}x, abortable {:.1}x",
        speedup("atomic"),
        speedup("abortable")
    );

    let json = Json::obj([
        ("bench", Json::str("step_throughput")),
        (
            "config",
            Json::obj([
                ("n", Json::Int(N as i128)),
                ("steps_per_run", Json::Int(STEPS as i128)),
                ("quick", Json::Bool(quick)),
            ]),
        ),
        (
            "series",
            Json::Arr(
                samples
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("system", Json::str(s.system)),
                            ("backend", Json::str(s.backend)),
                            ("iters", Json::Int(s.iters as i128)),
                            ("secs", Json::Float(s.secs)),
                            ("secs_per_iter", Json::Float(s.secs_per_iter())),
                            ("steps_per_sec", Json::Float(s.steps_per_sec())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "speedup_stepper_over_thread",
            Json::obj([
                ("atomic", Json::Float(speedup("atomic"))),
                ("abortable", Json::Float(speedup("abortable"))),
            ]),
        ),
    ]);
    // Cargo runs bench binaries with cwd = the package root; anchor the
    // artifact in the workspace-level results/ directory instead.
    let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    match write_artifact(&results, "bench_step_throughput", &json) {
        Ok(p) => println!("json: {}", p.display()),
        Err(e) => eprintln!("cannot write bench json: {e}"),
    }
}
