//! B5 — step-engine throughput: the same 3-process Ω∆ system driven by
//! the native poll backend (direct `Stepper::step` calls) vs the
//! blocking-thread adapter (one gate-backed OS thread per task, two
//! condvar handoffs per step).
//!
//! Both runs execute an identical number of global steps and produce
//! byte-identical traces (see `backends_agree_on_full_omega_system` in
//! `tbwf-omega`), so the per-iteration time ratio is exactly the
//! per-step engine overhead ratio.

// `for p in 0..N` indexing parallel handle vectors mirrors the paper's
// per-process wiring; an iterator chain would obscure it.
#![allow(clippy::needless_range_loop)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tbwf_omega::harness::install_omega;
use tbwf_omega::{add_candidate_driver, CandidateScript, OmegaKind};
use tbwf_registers::{RegisterFactory, RegisterFactoryConfig};
use tbwf_sim::schedule::RoundRobin;
use tbwf_sim::{ProcId, RunConfig, SimBuilder, TaskBody, TaskSpawner};

/// Global steps per iteration; one iteration = one complete system run.
const STEPS: u64 = 10_000;
const N: usize = 3;

/// Hides the builder's native poll backend so every stepper goes through
/// the default blocking adapter and runs on a gate-backed thread.
struct ThreadBackend<'a>(&'a mut SimBuilder);

impl TaskSpawner for ThreadBackend<'_> {
    fn spawn_task(&mut self, pid: ProcId, name: &str, body: TaskBody) {
        self.0.spawn_task(pid, name, body);
    }
}

fn omega_run(kind: OmegaKind, threads: bool) {
    let factory = RegisterFactory::new(RegisterFactoryConfig::default());
    let mut b = SimBuilder::new();
    for p in 0..N {
        b.add_process(&format!("p{p}"));
    }
    let handles;
    if threads {
        let mut t = ThreadBackend(&mut b);
        handles = install_omega(&mut t, &factory, N, kind);
        for p in 0..N {
            add_candidate_driver(&mut t, ProcId(p), &handles[p], CandidateScript::Always);
        }
    } else {
        handles = install_omega(&mut b, &factory, N, kind);
        for p in 0..N {
            add_candidate_driver(&mut b, ProcId(p), &handles[p], CandidateScript::Always);
        }
    }
    let report = b.build().run(RunConfig::new(STEPS, RoundRobin::new()));
    report.assert_no_panics();
    assert!(
        handles[0].leader.get().is_some(),
        "no leader elected in bench run"
    );
}

fn step_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("step-throughput");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .throughput(Throughput::Elements(STEPS));
    for kind in [OmegaKind::Atomic, OmegaKind::Abortable] {
        let tag = format!("{kind:?}").to_lowercase();
        g.bench_with_input(
            BenchmarkId::new("stepper", format!("{tag}-n{N}-{STEPS}steps")),
            &kind,
            |b, &kind| b.iter(|| omega_run(kind, false)),
        );
        g.bench_with_input(
            BenchmarkId::new("thread", format!("{tag}-n{N}-{STEPS}steps")),
            &kind,
            |b, &kind| b.iter(|| omega_run(kind, true)),
        );
    }
    g.finish();
}

criterion_group!(benches, step_throughput);
criterion_main!(benches);
