//! B3 — Ω∆ election runs: atomic-register (Fig. 3) vs abortable-register
//! (Figs. 4–6) implementations across system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tbwf_omega::{run_omega_system, CandidateScript, OmegaKind, OmegaSystemConfig};
use tbwf_sim::schedule::RoundRobin;
use tbwf_sim::RunConfig;

fn election_run(n: usize, kind: OmegaKind, steps: u64) {
    let cfg = OmegaSystemConfig {
        n,
        kind,
        scripts: vec![CandidateScript::Always; n],
        ..Default::default()
    };
    let out = run_omega_system(&cfg, RunConfig::new(steps, RoundRobin::new()));
    out.report.assert_no_panics();
    assert!(
        out.handles[0].leader.get().is_some(),
        "no leader elected in bench run"
    );
}

fn omega_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("omega-election-run");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for n in [2usize, 4] {
        let steps = 20_000 * n as u64;
        g.bench_with_input(BenchmarkId::new("atomic", n), &n, |b, &n| {
            b.iter(|| election_run(n, OmegaKind::Atomic, steps))
        });
        g.bench_with_input(BenchmarkId::new("abortable", n), &n, |b, &n| {
            b.iter(|| election_run(n, OmegaKind::Abortable, steps))
        });
    }
    g.finish();
}

criterion_group!(benches, omega_runs);
criterion_main!(benches);
