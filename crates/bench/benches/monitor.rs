//! B2 — activity-monitor cost: full deterministic runs of one `A(p, q)`
//! pair until (well past) status convergence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tbwf_monitor::fig2::activity_monitor;
use tbwf_registers::RegisterFactory;
use tbwf_sim::schedule::RoundRobin;
use tbwf_sim::{ProcId, RunConfig, SimBuilder};

fn run_pair(steps: u64) {
    let factory = RegisterFactory::default();
    let pair = activity_monitor(&factory, ProcId(0), ProcId(1));
    pair.monitoring_side.monitoring.set(true);
    pair.monitored_side.active_for.set(true);
    let mut b = SimBuilder::new();
    let p0 = b.add_process("p0");
    b.add_stepper(
        p0,
        "monitoring",
        Box::new(pair.monitoring_side.into_stepper()),
    );
    let p1 = b.add_process("p1");
    b.add_stepper(
        p1,
        "monitored",
        Box::new(pair.monitored_side.into_stepper()),
    );
    let report = b.build().run(RunConfig::new(steps, RoundRobin::new()));
    report.assert_no_panics();
}

fn monitor_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("monitor-pair-run");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for steps in [1_000u64, 4_000, 16_000] {
        g.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| run_pair(steps))
        });
    }
    g.finish();
}

criterion_group!(benches, monitor_runs);
criterion_main!(benches);
