//! Figure 2: implementation of `A(p, q)` using (atomic) registers.
//!
//! The shared state is a single atomic register `HbRegister[q, p]`, written
//! by the monitored process `q` and read by the monitoring process `p`.
//! When `q` is active for `p` it writes an increasing heartbeat counter;
//! when it stops willingly it writes the special value `−1`. The
//! monitoring side reads the register with an *adaptive* timeout
//! (`hbTimeout` grows by one on every suspicion), which is what makes
//! `faultCntr` bounded whenever `q` is `p`-timely — there is an unknown
//! but fixed bound to adapt to.
//!
//! Line numbers in the comments refer to Figure 2 of the paper.

use crate::Status;
use tbwf_registers::{OpToken, RegisterFactory, SharedAtomic};
use tbwf_sim::{Control, Env, Local, ProcId, SimResult, StepCtx, Stepper};

/// Observation keys used by the monitoring side.
pub const OBS_STATUS: &str = "status";
/// Observation key for `faultCntr_p[q]`.
pub const OBS_FAULT: &str = "faultCntr";

/// The monitored side of `A(p, q)`: code run *by `q`* (Figure 2, top).
pub struct MonitoredSide {
    /// `active-for_q[p]`: whether `q` currently wants to appear active to
    /// `p`. Input variable, written by `q`'s other tasks at any time.
    pub active_for: Local<bool>,
    hb: SharedAtomic<i64>,
}

impl MonitoredSide {
    /// The task body for `q`. Runs forever; returns only on halt.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
    pub fn run(&self, env: &dyn Env) -> SimResult<()> {
        let mut hb_counter: i64 = 0; // { local variable }
        loop {
            // 2: WRITE(HbRegister[q, p], −1)
            self.hb.write(env, -1)?;
            // 3: while ACTIVE-FOR[p] = off do skip
            while !self.active_for.get() {
                env.tick()?;
            }
            // 4: while ACTIVE-FOR[p] = on do
            while self.active_for.get() {
                // 5: hbCounter ← hbCounter + 1
                hb_counter += 1;
                // 6: WRITE(HbRegister[q, p], hbCounter)
                self.hb.write(env, hb_counter)?;
            }
        }
    }

    /// The same task as [`MonitoredSide::run`] as a poll-driven
    /// [`Stepper`] (segment-for-segment equivalent to the blocking form).
    pub fn into_stepper(self) -> MonitoredStepper {
        MonitoredStepper {
            side: self,
            hb_counter: 0,
            state: MonitoredState::Start,
        }
    }
}

#[derive(Clone, Copy)]
enum MonitoredState {
    /// At the top of the outer loop, about to write `−1`.
    Start,
    /// The `−1` write is in flight (line 2).
    WriteMinus1Pending(OpToken),
    /// Spinning in the wait loop of line 3.
    WaitActive,
    /// A heartbeat write is in flight (line 6).
    WriteHbPending(OpToken),
}

/// Poll-driven form of the monitored side of `A(p, q)` (Figure 2, top).
pub struct MonitoredStepper {
    side: MonitoredSide,
    hb_counter: i64,
    state: MonitoredState,
}

impl MonitoredStepper {
    /// Lines 3–5 after a completed write: spin until active, then start
    /// the next heartbeat write.
    fn wait_or_beat(&mut self, env: &dyn Env) {
        if self.side.active_for.get() {
            self.hb_counter += 1;
            let tok = self.side.hb.invoke_write(env, self.hb_counter);
            self.state = MonitoredState::WriteHbPending(tok);
        } else {
            self.state = MonitoredState::WaitActive;
        }
    }
}

impl Stepper for MonitoredStepper {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control {
        let env = ctx.env();
        match self.state {
            MonitoredState::Start => {
                // 2: WRITE(HbRegister[q, p], −1)
                let tok = self.side.hb.invoke_write(env, -1);
                self.state = MonitoredState::WriteMinus1Pending(tok);
            }
            MonitoredState::WriteMinus1Pending(tok) => {
                self.side.hb.complete_write(env, tok);
                self.wait_or_beat(env);
            }
            MonitoredState::WaitActive => self.wait_or_beat(env),
            MonitoredState::WriteHbPending(tok) => {
                self.side.hb.complete_write(env, tok);
                if self.side.active_for.get() {
                    // 4–6: next heartbeat.
                    self.hb_counter += 1;
                    let tok = self.side.hb.invoke_write(env, self.hb_counter);
                    self.state = MonitoredState::WriteHbPending(tok);
                } else {
                    // Back to line 2.
                    let tok = self.side.hb.invoke_write(env, -1);
                    self.state = MonitoredState::WriteMinus1Pending(tok);
                }
            }
        }
        Control::Yield
    }
}

/// The monitoring side of `A(p, q)`: code run *by `p`* (Figure 2, bottom).
pub struct MonitoringSide {
    /// The monitored process `q` (used as the observation index).
    pub q: ProcId,
    /// `monitoring_p[q]`: whether `p` currently wants to monitor `q`.
    pub monitoring: Local<bool>,
    /// Output `status_p[q]`.
    pub status: Local<Status>,
    /// Output `faultCntr_p[q]`.
    pub fault_cntr: Local<u64>,
    /// **Ablation knob** (paper behavior: `true`). When `false`, line 25
    /// (`hbTimeout ← hbTimeout + 1`) is skipped, i.e. the timeout is
    /// fixed at its initial value. This breaks Property 5(a): a timely
    /// `q` whose (unknown) timeliness bound exceeds the fixed timeout is
    /// suspected over and over, so `faultCntr` grows without bound —
    /// exactly why the paper adapts the timeout. See experiment E9.
    pub adaptive_timeout: bool,
    hb: SharedAtomic<i64>,
}

impl MonitoringSide {
    fn set_status(&self, env: &dyn Env, s: Status) {
        if self.status.get() != s {
            self.status.set(s);
            env.observe(OBS_STATUS, self.q.0 as u32, s.code());
        }
    }

    fn bump_fault(&self, env: &dyn Env) {
        let v = self.fault_cntr.update(|f| {
            *f += 1;
            *f
        });
        env.observe(OBS_FAULT, self.q.0 as u32, v as i64);
    }

    /// The task body for `p`. Runs forever; returns only on halt.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
    // The initial values of `hbTimer`/`prevHbCounter` mirror the paper's
    // "Initial state" block even though the algorithm overwrites them
    // before first use.
    #[allow(unused_assignments)]
    pub fn run(&self, env: &dyn Env) -> SimResult<()> {
        // { Initial state }
        let mut hb_timeout: u64 = 1;
        let mut hb_timer: u64 = 1;
        let mut hb_counter: i64 = 0;
        let mut prev_hb_counter: i64 = 0;
        let mut allow_increment = true;
        env.observe(OBS_STATUS, self.q.0 as u32, self.status.get().code());
        env.observe(OBS_FAULT, self.q.0 as u32, self.fault_cntr.get() as i64);
        // 7: repeat forever
        loop {
            // 8: STATUS[q] ← ?
            self.set_status(env, Status::Unknown);
            // 9: while MONITORING[q] = off do skip
            while !self.monitoring.get() {
                env.tick()?;
            }
            // 10: hbTimer ← hbTimeout
            hb_timer = hb_timeout;
            // 11: while MONITORING[q] = on do
            while self.monitoring.get() {
                env.tick()?; // one local step per loop iteration
                             // 12: if hbTimer ≥ 1 then hbTimer ← hbTimer − 1
                if hb_timer >= 1 {
                    hb_timer -= 1;
                }
                // 13: if hbTimer = 0 then
                if hb_timer == 0 {
                    // 14: hbTimer ← hbTimeout
                    hb_timer = hb_timeout;
                    // 15: prevHbCounter ← hbCounter
                    prev_hb_counter = hb_counter;
                    // 16: hbCounter ← READ(HbRegister[q, p])
                    hb_counter = self.hb.read(env)?;
                    // 17: if hbCounter < 0 then STATUS[q] ← inactive
                    if hb_counter < 0 {
                        self.set_status(env, Status::Inactive);
                    }
                    // 18–20: fresh heartbeat ⇒ active, re-arm increment
                    if hb_counter >= 0 && hb_counter > prev_hb_counter {
                        self.set_status(env, Status::Active);
                        allow_increment = true;
                    }
                    // 21–26: stale heartbeat ⇒ inactive; suspicion counts
                    // only if the register is not −1 (condition (a) of the
                    // prose) and increased since the last increment
                    // (condition (b), tracked by allow_increment).
                    if hb_counter >= 0 && hb_counter <= prev_hb_counter {
                        self.set_status(env, Status::Inactive);
                        if allow_increment {
                            self.bump_fault(env);
                            // 25 (ablatable): adapt the timeout upward.
                            if self.adaptive_timeout {
                                hb_timeout += 1;
                            }
                            allow_increment = false;
                        }
                    }
                }
            }
        }
    }

    /// The same task as [`MonitoringSide::run`] as a poll-driven
    /// [`Stepper`] (segment-for-segment equivalent to the blocking form).
    pub fn into_stepper(self) -> MonitoringStepper {
        MonitoringStepper {
            side: self,
            hb_timeout: 1,
            hb_timer: 1,
            hb_counter: 0,
            prev_hb_counter: 0,
            allow_increment: true,
            state: MonitoringState::Start,
        }
    }
}

#[derive(Clone, Copy)]
enum MonitoringState {
    /// Before the initial observations.
    Start,
    /// Spinning in the wait loop of line 9.
    WaitMon,
    /// Inside the monitoring loop, right after the per-iteration step
    /// (line 11's tick); about to run lines 12–13.
    InnerBody,
    /// The heartbeat read of line 16 is in flight.
    ReadPending(OpToken),
}

/// Poll-driven form of the monitoring side of `A(p, q)` (Figure 2,
/// bottom).
pub struct MonitoringStepper {
    side: MonitoringSide,
    hb_timeout: u64,
    hb_timer: u64,
    hb_counter: i64,
    prev_hb_counter: i64,
    allow_increment: bool,
    state: MonitoringState,
}

impl MonitoringStepper {
    /// Lines 9–11: spin until monitoring, then (re-)arm the timer and
    /// enter the monitoring loop.
    fn wait_or_enter(&mut self) {
        if self.side.monitoring.get() {
            // 10: hbTimer ← hbTimeout
            self.hb_timer = self.hb_timeout;
            self.state = MonitoringState::InnerBody;
        } else {
            self.state = MonitoringState::WaitMon;
        }
    }

    /// The bottom of a monitoring-loop iteration: either go around (line
    /// 11) or fall out to the top of the outer loop (line 8).
    fn continue_or_leave(&mut self, env: &dyn Env) {
        if self.side.monitoring.get() {
            self.state = MonitoringState::InnerBody;
        } else {
            // 8: STATUS[q] ← ?
            self.side.set_status(env, Status::Unknown);
            self.wait_or_enter();
        }
    }
}

impl Stepper for MonitoringStepper {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control {
        let env = ctx.env();
        match self.state {
            MonitoringState::Start => {
                env.observe(
                    OBS_STATUS,
                    self.side.q.0 as u32,
                    self.side.status.get().code(),
                );
                env.observe(
                    OBS_FAULT,
                    self.side.q.0 as u32,
                    self.side.fault_cntr.get() as i64,
                );
                // 8: STATUS[q] ← ?
                self.side.set_status(env, Status::Unknown);
                self.wait_or_enter();
            }
            MonitoringState::WaitMon => self.wait_or_enter(),
            MonitoringState::InnerBody => {
                // 12: if hbTimer ≥ 1 then hbTimer ← hbTimer − 1
                if self.hb_timer >= 1 {
                    self.hb_timer -= 1;
                }
                // 13: if hbTimer = 0 then
                if self.hb_timer == 0 {
                    // 14: hbTimer ← hbTimeout
                    self.hb_timer = self.hb_timeout;
                    // 15: prevHbCounter ← hbCounter
                    self.prev_hb_counter = self.hb_counter;
                    // 16: READ(HbRegister[q, p]) — invocation step.
                    let tok = self.side.hb.invoke_read(env);
                    self.state = MonitoringState::ReadPending(tok);
                } else {
                    self.continue_or_leave(env);
                }
            }
            MonitoringState::ReadPending(tok) => {
                // 16: response step.
                self.hb_counter = self.side.hb.complete_read(env, tok);
                // 17: if hbCounter < 0 then STATUS[q] ← inactive
                if self.hb_counter < 0 {
                    self.side.set_status(env, Status::Inactive);
                }
                // 18–20: fresh heartbeat ⇒ active, re-arm increment
                if self.hb_counter >= 0 && self.hb_counter > self.prev_hb_counter {
                    self.side.set_status(env, Status::Active);
                    self.allow_increment = true;
                }
                // 21–26: stale heartbeat ⇒ inactive; suspicion counts
                if self.hb_counter >= 0 && self.hb_counter <= self.prev_hb_counter {
                    self.side.set_status(env, Status::Inactive);
                    if self.allow_increment {
                        self.side.bump_fault(env);
                        // 25 (ablatable): adapt the timeout upward.
                        if self.side.adaptive_timeout {
                            self.hb_timeout += 1;
                        }
                        self.allow_increment = false;
                    }
                }
                self.continue_or_leave(env);
            }
        }
        Control::Yield
    }
}

/// The two sides of one activity monitor `A(p, q)`.
pub struct ActivityMonitorPair {
    /// Code and handles for the monitoring process `p`.
    pub monitoring_side: MonitoringSide,
    /// Code and handles for the monitored process `q`.
    pub monitored_side: MonitoredSide,
}

/// Creates the activity monitor `A(p, q)` (its shared heartbeat register
/// and both side handles) for `p` monitoring `q`.
///
/// ```
/// use tbwf_monitor::{activity_monitor, Status};
/// use tbwf_registers::RegisterFactory;
/// use tbwf_sim::schedule::RoundRobin;
/// use tbwf_sim::{ProcId, RunConfig, SimBuilder};
///
/// let factory = RegisterFactory::default();
/// let pair = activity_monitor(&factory, ProcId(0), ProcId(1));
/// pair.monitoring_side.monitoring.set(true);
/// pair.monitored_side.active_for.set(true);
/// let status = pair.monitoring_side.status.clone();
///
/// let mut b = SimBuilder::new();
/// let p0 = b.add_process("p0");
/// let ms = pair.monitoring_side;
/// b.add_task(p0, "monitoring", move |env| ms.run(&env));
/// let p1 = b.add_process("p1");
/// let md = pair.monitored_side;
/// b.add_task(p1, "monitored", move |env| md.run(&env));
/// b.build().run(RunConfig::new(3_000, RoundRobin::new())).assert_no_panics();
/// assert_eq!(status.get(), Status::Active); // q is timely and active
/// ```
///
/// # Panics
///
/// Panics if `p == q` (the paper's footnote 6: `A(p, p)` is trivial and
/// implemented inline by users instead).
pub fn activity_monitor(factory: &RegisterFactory, p: ProcId, q: ProcId) -> ActivityMonitorPair {
    assert_ne!(p, q, "A(p, p) is trivial and not register-backed");
    let hb = factory.atomic(&format!("Hb[{q},{p}]"), -1i64);
    ActivityMonitorPair {
        monitoring_side: MonitoringSide {
            q,
            monitoring: Local::new(false),
            status: Local::new(Status::Unknown),
            fault_cntr: Local::new(0),
            adaptive_timeout: true,
            hb: hb.clone(),
        },
        monitored_side: MonitoredSide {
            active_for: Local::new(false),
            hb,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbwf_sim::schedule::RoundRobin;
    use tbwf_sim::{RunConfig, SimBuilder};

    /// Builds a two-process system in which p0 monitors p1; the driver
    /// closures configure the inputs.
    fn run_pair(
        steps: u64,
        configure_p: impl Fn(&Local<bool>) + Send + 'static,
        configure_q: impl Fn(&Local<bool>) + Send + 'static,
    ) -> (tbwf_sim::RunReport, Local<Status>, Local<u64>) {
        let factory = RegisterFactory::default();
        let pair = activity_monitor(&factory, ProcId(0), ProcId(1));
        let status = pair.monitoring_side.status.clone();
        let fault = pair.monitoring_side.fault_cntr.clone();
        let monitoring = pair.monitoring_side.monitoring.clone();
        let active_for = pair.monitored_side.active_for.clone();
        configure_p(&monitoring);
        configure_q(&active_for);

        let mut b = SimBuilder::new();
        let p0 = b.add_process("p0");
        let ms = pair.monitoring_side;
        b.add_task(p0, "monitoring", move |env| ms.run(&env));
        let p1 = b.add_process("p1");
        let md = pair.monitored_side;
        b.add_task(p1, "monitored", move |env| md.run(&env));
        let report = b.build().run(RunConfig::new(steps, RoundRobin::new()));
        report.assert_no_panics();
        (report, status, fault)
    }

    #[test]
    fn active_timely_q_is_reported_active() {
        let (_r, status, _fault) = run_pair(4_000, |m| m.set(true), |a| a.set(true));
        assert_eq!(status.get(), Status::Active);
    }

    #[test]
    fn inactive_q_is_reported_inactive() {
        let (_r, status, _fault) = run_pair(4_000, |m| m.set(true), |a| a.set(false));
        assert_eq!(status.get(), Status::Inactive);
    }

    #[test]
    fn not_monitoring_keeps_status_unknown() {
        let (_r, status, fault) = run_pair(2_000, |m| m.set(false), |a| a.set(true));
        assert_eq!(status.get(), Status::Unknown);
        assert_eq!(fault.get(), 0);
    }

    #[test]
    fn fault_cntr_is_bounded_for_timely_active_q() {
        // Round-robin keeps q timely: faultCntr must stabilize quickly.
        let (r, _status, fault) = run_pair(12_000, |m| m.set(true), |a| a.set(true));
        let series = r.trace.obs_series(ProcId(0), OBS_FAULT, 1);
        let final_val = fault.get();
        // The counter must have stopped growing well before the end.
        let last_change = series.last().map(|(t, _)| *t).unwrap_or(0);
        assert!(
            last_change < 6_000,
            "faultCntr still changing at t={last_change} (value {final_val})"
        );
    }

    #[test]
    fn stepper_pair_matches_blocking_pair() {
        // The same A(p, q) on both backends: identical steps, identical
        // observation sequences (same register seeds via fresh default
        // factories). Any divergence in tick positions would show up as
        // shifted observation times.
        let run = |stepper: bool| {
            let factory = RegisterFactory::default();
            let pair = activity_monitor(&factory, ProcId(0), ProcId(1));
            pair.monitoring_side.monitoring.set(true);
            pair.monitored_side.active_for.set(true);
            let mut b = SimBuilder::new();
            let p0 = b.add_process("p0");
            let p1 = b.add_process("p1");
            let ms = pair.monitoring_side;
            let md = pair.monitored_side;
            if stepper {
                b.add_stepper(p0, "monitoring", Box::new(ms.into_stepper()));
                b.add_stepper(p1, "monitored", Box::new(md.into_stepper()));
            } else {
                b.add_task(p0, "monitoring", move |env| ms.run(&env));
                b.add_task(p1, "monitored", move |env| md.run(&env));
            }
            b.build().run(RunConfig::new(6_000, RoundRobin::new()))
        };
        let rs = run(true);
        let rb = run(false);
        rs.assert_no_panics();
        rb.assert_no_panics();
        assert_eq!(rs.trace.steps, rb.trace.steps);
        assert_eq!(rs.trace.obs, rb.trace.obs);
    }

    #[test]
    #[should_panic(expected = "trivial")]
    fn self_pair_rejected() {
        let factory = RegisterFactory::default();
        let _ = activity_monitor(&factory, ProcId(0), ProcId(0));
    }
}
