//! Executable versions of the six `A(p, q)` specification properties
//! (Definition 9 of the paper), evaluated over a finite run trace.
//!
//! The paper's properties quantify over infinite runs ("there is a time
//! after which …", "increases without bound"). On finite traces we use the
//! stabilization helpers of [`tbwf_sim::analysis`]: an *antecedent* such
//! as "eventually always `monitoring = on`" is taken to hold when the
//! input was in that state for at least [`CheckParams::antecedent_frac`]
//! of the run; the matching *consequent* must then hold for at least
//! [`CheckParams::consequent_frac`] of the run (the gap leaves the
//! algorithm time to converge). Boundedness and unbounded growth use
//! [`bounded_suffix`] and [`increases_without_bound`].

use crate::Status;
use tbwf_sim::analysis::{bounded_suffix, increases_without_bound, stable_fraction};

/// Thresholds for the finite-trace property checks.
#[derive(Clone, Copy, Debug)]
pub struct CheckParams {
    /// Minimum final-streak fraction for an input to count as "eventually
    /// always" in that state.
    pub antecedent_frac: f64,
    /// Minimum final-streak fraction required of the output.
    pub consequent_frac: f64,
    /// Fraction of the run over which a "bounded" counter must be flat.
    pub bounded_frac: f64,
    /// Number of windows across which an "unbounded" counter must grow.
    pub growth_windows: usize,
}

impl Default for CheckParams {
    fn default() -> Self {
        CheckParams {
            antecedent_frac: 0.25,
            consequent_frac: 0.05,
            bounded_frac: 0.25,
            growth_windows: 4,
        }
    }
}

/// Everything the checker needs to know about one `A(p, q)` pair in one
/// run. All series are `(time, value)` with the conventions of the crate
/// (`bool` inputs as 0/1, status as [`Status::code`]).
#[derive(Clone, Debug)]
pub struct PairRun {
    /// Total run length in steps.
    pub total_time: u64,
    /// Series of `monitoring_p[q]` (0/1).
    pub monitoring: Vec<(u64, i64)>,
    /// Series of `active-for_q[p]` (0/1).
    pub active_for: Vec<(u64, i64)>,
    /// Series of `status_p[q]` (codes).
    pub status: Vec<(u64, i64)>,
    /// Series of `faultCntr_p[q]`.
    pub fault: Vec<(u64, i64)>,
    /// Whether `q` crashed, and when.
    pub q_crash: Option<u64>,
    /// Whether `q` is `p`-timely in this run (measured or by design).
    pub q_p_timely: bool,
    /// Whether `p` is correct (the whole spec is conditional on this).
    pub p_correct: bool,
}

/// Verdict for one property.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PropVerdict {
    /// The property's antecedent is not satisfied by this run.
    NotApplicable,
    /// Antecedent satisfied and consequent observed.
    Holds,
    /// Antecedent satisfied but consequent violated.
    Violated,
}

impl PropVerdict {
    /// True unless the verdict is [`PropVerdict::Violated`].
    pub fn ok(self) -> bool {
        self != PropVerdict::Violated
    }
}

/// The verdicts for Properties 1–6 of Definition 9.
#[derive(Clone, Copy, Debug)]
pub struct PropReport {
    /// 1: eventually-always `monitoring = off` ⇒ eventually `status = ?`.
    pub p1: PropVerdict,
    /// 2: eventually-always `monitoring = on` ⇒ eventually `status ≠ ?`.
    pub p2: PropVerdict,
    /// 3: `q` crashes or eventually-always `active-for = off` ⇒ eventually
    ///    `status ≠ active`.
    pub p3: PropVerdict,
    /// 4: `q` `p`-timely and eventually-always `active-for = on` ⇒
    ///    eventually `status ≠ inactive`.
    pub p4: PropVerdict,
    /// 5: `faultCntr` bounded under any of conditions (a)–(d).
    pub p5: PropVerdict,
    /// 6: `faultCntr` increases without bound under conditions (a)–(d).
    pub p6: PropVerdict,
}

impl PropReport {
    /// Whether no property is violated.
    pub fn all_ok(&self) -> bool {
        [self.p1, self.p2, self.p3, self.p4, self.p5, self.p6]
            .iter()
            .all(|v| v.ok())
    }

    /// The list of violated property numbers.
    pub fn violations(&self) -> Vec<u8> {
        [self.p1, self.p2, self.p3, self.p4, self.p5, self.p6]
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.ok())
            .map(|(i, _)| i as u8 + 1)
            .collect()
    }
}

fn ev_always(series: &[(u64, i64)], total: u64, frac: f64, pred: impl Fn(i64) -> bool) -> bool {
    stable_fraction(series, total, pred) >= frac
}

/// Evaluates Properties 1–6 for one pair over one run.
pub fn check_pair(run: &PairRun, params: CheckParams) -> PropReport {
    let t = run.total_time;
    if !run.p_correct {
        // Definition 9 only constrains runs in which p is correct.
        let na = PropVerdict::NotApplicable;
        return PropReport {
            p1: na,
            p2: na,
            p3: na,
            p4: na,
            p5: na,
            p6: na,
        };
    }

    let mon_off = ev_always(&run.monitoring, t, params.antecedent_frac, |v| v == 0);
    let mon_on = ev_always(&run.monitoring, t, params.antecedent_frac, |v| v == 1);
    let act_off = ev_always(&run.active_for, t, params.antecedent_frac, |v| v == 0);
    let act_on = ev_always(&run.active_for, t, params.antecedent_frac, |v| v == 1);
    let q_crashed = run.q_crash.is_some();

    let verdict = |applicable: bool, holds: bool| {
        if !applicable {
            PropVerdict::NotApplicable
        } else if holds {
            PropVerdict::Holds
        } else {
            PropVerdict::Violated
        }
    };

    // Property 1.
    let p1 = verdict(
        mon_off,
        ev_always(&run.status, t, params.consequent_frac, |v| {
            v == Status::Unknown.code()
        }),
    );
    // Property 2.
    let p2 = verdict(
        mon_on,
        ev_always(&run.status, t, params.consequent_frac, |v| {
            v != Status::Unknown.code()
        }),
    );
    // Property 3. The consequent only speaks about status while it is
    // being produced; if monitoring is off the status is ? which also
    // satisfies "≠ active".
    let p3 = verdict(
        q_crashed || act_off,
        ev_always(&run.status, t, params.consequent_frac, |v| {
            v != Status::Active.code()
        }),
    );
    // Property 4.
    let p4 = verdict(
        run.q_p_timely && act_on,
        ev_always(&run.status, t, params.consequent_frac, |v| {
            v != Status::Inactive.code()
        }),
    );
    // Property 5: bounded under (a) q p-timely, (b) q crashes, (c)
    // eventually-always active-for = off, (d) eventually-always
    // monitoring = off.
    let p5_applicable = run.q_p_timely || q_crashed || act_off || mon_off;
    let p5 = verdict(
        p5_applicable,
        bounded_suffix(&run.fault, t, params.bounded_frac),
    );
    // Property 6: unbounded when q is correct but not p-timely while both
    // sides stay on.
    let p6_applicable = !run.q_p_timely && !q_crashed && act_on && mon_on;
    let p6 = verdict(
        p6_applicable,
        increases_without_bound(&run.fault, t, params.growth_windows),
    );

    PropReport {
        p1,
        p2,
        p3,
        p4,
        p5,
        p6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_run() -> PairRun {
        PairRun {
            total_time: 1_000,
            monitoring: vec![(0, 1)],
            active_for: vec![(0, 1)],
            status: vec![(0, 0), (50, 1)],
            fault: vec![(0, 0), (20, 1), (40, 2)],
            q_crash: None,
            q_p_timely: true,
            p_correct: true,
        }
    }

    #[test]
    fn healthy_pair_satisfies_all() {
        let r = base_run();
        let rep = check_pair(&r, CheckParams::default());
        assert!(rep.all_ok(), "violations: {:?}", rep.violations());
        assert_eq!(rep.p2, PropVerdict::Holds);
        assert_eq!(rep.p4, PropVerdict::Holds);
        assert_eq!(rep.p5, PropVerdict::Holds);
        assert_eq!(rep.p6, PropVerdict::NotApplicable);
    }

    #[test]
    fn crashed_p_makes_everything_vacuous() {
        let mut r = base_run();
        r.p_correct = false;
        let rep = check_pair(&r, CheckParams::default());
        assert_eq!(rep.p1, PropVerdict::NotApplicable);
        assert!(rep.all_ok());
    }

    #[test]
    fn stuck_unknown_violates_p2() {
        let mut r = base_run();
        r.status = vec![(0, 0)]; // ? forever while monitoring on
        let rep = check_pair(&r, CheckParams::default());
        assert_eq!(rep.p2, PropVerdict::Violated);
        assert!(!rep.all_ok());
        assert_eq!(rep.violations(), vec![2]);
    }

    #[test]
    fn growing_fault_on_timely_q_violates_p5() {
        let mut r = base_run();
        r.fault = (0..20).map(|i| (i * 50, i as i64)).collect();
        let rep = check_pair(&r, CheckParams::default());
        assert_eq!(rep.p5, PropVerdict::Violated);
    }

    #[test]
    fn untimely_q_requires_growth() {
        let mut r = base_run();
        r.q_p_timely = false;
        r.status = vec![(0, 0), (50, 2)];
        // growing fault counter: p6 holds
        r.fault = (0..20).map(|i| (i * 50, i as i64)).collect();
        let rep = check_pair(&r, CheckParams::default());
        assert_eq!(rep.p6, PropVerdict::Holds);
        // flat fault counter: p6 violated
        r.fault = vec![(0, 0), (100, 3)];
        let rep = check_pair(&r, CheckParams::default());
        assert_eq!(rep.p6, PropVerdict::Violated);
    }

    #[test]
    fn crashed_q_applies_p3_and_p5() {
        let mut r = base_run();
        r.q_crash = Some(100);
        r.q_p_timely = false;
        r.status = vec![(0, 0), (50, 1), (150, 2)];
        r.fault = vec![(0, 0), (150, 1)];
        let rep = check_pair(&r, CheckParams::default());
        assert_eq!(rep.p3, PropVerdict::Holds);
        assert_eq!(rep.p5, PropVerdict::Holds);
        assert_eq!(rep.p6, PropVerdict::NotApplicable);
    }

    #[test]
    fn monitoring_off_requires_unknown() {
        let mut r = base_run();
        r.monitoring = vec![(0, 0)];
        r.status = vec![(0, 0)];
        r.fault = vec![(0, 0)];
        let rep = check_pair(&r, CheckParams::default());
        assert_eq!(rep.p1, PropVerdict::Holds);
        assert_eq!(rep.p2, PropVerdict::NotApplicable);
    }
}
