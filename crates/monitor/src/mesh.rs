//! A full mesh of activity monitors `A(p, q)` for all ordered pairs, as
//! required by the Ω∆ implementation of Figure 3 ("a system with registers
//! where every pair of processes (p, q) is equipped with an activity
//! monitor A(p, q)").

use crate::fig2::activity_monitor;
use crate::Status;
use tbwf_registers::RegisterFactory;
use tbwf_sim::{LocalVec, ProcId, TaskSpawner};

/// The per-process view of the monitor mesh: the four vectors of local
/// variables of Figure 1, indexed by the peer process.
///
/// For the owner process `p`:
/// * `monitoring.cell(q)` is `p`'s input to `A(p, q)`;
/// * `status.cell(q)` / `fault.cell(q)` are the outputs of `A(p, q)`;
/// * `active_for.cell(q)` is `p`'s input to `A(q, p)` (whether `p` is
///   willing to appear active to `q`).
///
/// The diagonal cells (`q == p`) are the trivial self-monitor of footnote
/// 6: `status.cell(p)` is pre-set to [`Status::Active`] and `fault` to 0;
/// users treat the self pair inline.
#[derive(Clone)]
pub struct ProcessMonitorHandles {
    /// `monitoring_p[·]` inputs.
    pub monitoring: LocalVec<bool>,
    /// `active-for_p[·]` inputs.
    pub active_for: LocalVec<bool>,
    /// `status_p[·]` outputs.
    pub status: LocalVec<Status>,
    /// `faultCntr_p[·]` outputs.
    pub fault: LocalVec<u64>,
}

/// A fully built monitor mesh: handles for every process.
pub struct MonitorMesh {
    /// `handles[p]` is process `p`'s view.
    pub handles: Vec<ProcessMonitorHandles>,
}

impl MonitorMesh {
    /// Creates the mesh registers/handles and adds the 2·n·(n−1) monitor
    /// tasks to `spawner` (one monitoring task per `(p, q)` at `p`, one
    /// monitored task per `(p, q)` at `q`).
    ///
    /// The processes `0..n` must already exist in the spawner's backend.
    pub fn install(
        spawner: &mut dyn TaskSpawner,
        factory: &RegisterFactory,
        n: usize,
    ) -> MonitorMesh {
        let handles: Vec<ProcessMonitorHandles> = (0..n)
            .map(|_| ProcessMonitorHandles {
                monitoring: LocalVec::new(n, false),
                active_for: LocalVec::new(n, false),
                status: LocalVec::new(n, Status::Unknown),
                fault: LocalVec::new(n, 0),
            })
            .collect();
        // The diagonal self pairs (footnote 6) have no tasks: users treat
        // them inline (Figure 3 special-cases q = p as permanently
        // active with faultCntr 0).
        for p in 0..n {
            for q in 0..n {
                if p == q {
                    continue;
                }
                let pair = activity_monitor(factory, ProcId(p), ProcId(q));
                // Wire the pair's local cells to the mesh handles.
                let monitoring_cell = handles[p].monitoring.cell(ProcId(q)).clone();
                let status_cell = handles[p].status.cell(ProcId(q)).clone();
                let fault_cell = handles[p].fault.cell(ProcId(q)).clone();
                let active_cell = handles[q].active_for.cell(ProcId(p)).clone();

                let mut ms = pair.monitoring_side;
                ms.monitoring = monitoring_cell;
                ms.status = status_cell;
                ms.fault_cntr = fault_cell;
                let mut md = pair.monitored_side;
                md.active_for = active_cell;

                spawner.spawn_stepper(
                    ProcId(p),
                    &format!("mon[{p}->{q}]"),
                    Box::new(ms.into_stepper()),
                );
                spawner.spawn_stepper(
                    ProcId(q),
                    &format!("hb[{q}->{p}]"),
                    Box::new(md.into_stepper()),
                );
            }
        }
        MonitorMesh { handles }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // per-process assertions index parallel vectors
mod tests {
    use super::*;
    use tbwf_sim::schedule::RoundRobin;
    use tbwf_sim::{Env, RunConfig, SimBuilder};

    #[test]
    fn mesh_reports_mutual_activity() {
        let n = 3;
        let factory = RegisterFactory::default();
        let mut b = SimBuilder::new();
        for p in 0..n {
            b.add_process(&format!("p{p}"));
        }
        let mesh = MonitorMesh::install(&mut b, &factory, n);
        // Turn everything on and let a driver task per process idle.
        for p in 0..n {
            for q in 0..n {
                if p != q {
                    mesh.handles[p].monitoring.set(ProcId(q), true);
                    mesh.handles[p].active_for.set(ProcId(q), true);
                }
            }
        }
        for p in 0..n {
            b.add_task(ProcId(p), "idle", move |env| loop {
                env.tick()?;
            });
        }
        let handles = mesh.handles.clone();
        let report = b.build().run(RunConfig::new(30_000, RoundRobin::new()));
        report.assert_no_panics();
        for p in 0..n {
            for q in 0..n {
                if p != q {
                    assert_eq!(
                        handles[p].status.get(ProcId(q)),
                        Status::Active,
                        "p{p} should see p{q} active"
                    );
                }
            }
        }
    }

    #[test]
    fn crashed_process_becomes_inactive_everywhere() {
        let n = 3;
        let factory = RegisterFactory::default();
        let mut b = SimBuilder::new();
        for p in 0..n {
            b.add_process(&format!("p{p}"));
        }
        let mesh = MonitorMesh::install(&mut b, &factory, n);
        for p in 0..n {
            for q in 0..n {
                if p != q {
                    mesh.handles[p].monitoring.set(ProcId(q), true);
                    mesh.handles[p].active_for.set(ProcId(q), true);
                }
            }
        }
        for p in 0..n {
            b.add_task(ProcId(p), "idle", move |env| loop {
                env.tick()?;
            });
        }
        let handles = mesh.handles.clone();
        let report = b
            .build()
            .run(RunConfig::new(40_000, RoundRobin::new()).crash(5_000, ProcId(2)));
        report.assert_no_panics();
        for p in 0..2 {
            assert_eq!(
                handles[p].status.get(ProcId(2)),
                Status::Inactive,
                "p{p} should see crashed p2 inactive"
            );
        }
        // And fault counters for the crashed process must have stopped
        // growing (Property 5(b)): check the last observation is early.
        for p in 0..2 {
            let series = report
                .trace
                .obs_series(ProcId(p), crate::fig2::OBS_FAULT, 2);
            if let Some((t, _)) = series.last() {
                assert!(*t < 30_000, "faultCntr[p2] at p{p} still moving at {t}");
            }
        }
    }
}
