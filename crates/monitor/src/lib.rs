//! Dynamic activity monitors `A(p, q)` — Section 5.1 of the paper.
//!
//! For an ordered pair of processes `(p, q)`, the activity monitor
//! `A(p, q)` helps `p` determine whether `q` is currently *active* or
//! *inactive* for `p`, and whether `q` is `p`-timely. Both sides can turn
//! their participation on and off at any time:
//!
//! * `p` writes its local input `monitoring_p[q] ∈ {on, off}`;
//! * `q` writes its local input `active-for_q[p] ∈ {on, off}`;
//! * the monitor maintains two local outputs at `p`:
//!   `status_p[q] ∈ {active, inactive, ?}` and `faultCntr_p[q] ∈ ℕ`.
//!
//! [`fig2`] implements the register-based algorithm of Figure 2 line by
//! line; [`mesh`] wires a full `A(p, q)` mesh for all ordered pairs (used
//! by the Ω∆ implementation of Figure 3); [`props`] turns the six
//! specification properties of Definition 9 into executable checks over a
//! run trace.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fig2;
pub mod mesh;
pub mod props;

pub use fig2::{
    activity_monitor, ActivityMonitorPair, MonitoredSide, MonitoredStepper, MonitoringSide,
    MonitoringStepper,
};
pub use mesh::{MonitorMesh, ProcessMonitorHandles};
pub use props::{check_pair, CheckParams, PairRun, PropReport, PropVerdict};

use std::fmt;

/// The status estimate `status_p[q]` (Figure 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Status {
    /// `?` — the monitor has no estimate (e.g. monitoring is off).
    #[default]
    Unknown,
    /// `q` appears to be active for `p`.
    Active,
    /// `q` appears to be inactive for `p` (stopped willingly, crashed, or
    /// timed out).
    Inactive,
}

impl Status {
    /// Trace encoding: `? = 0`, `active = 1`, `inactive = 2`.
    pub fn code(self) -> i64 {
        match self {
            Status::Unknown => 0,
            Status::Active => 1,
            Status::Inactive => 2,
        }
    }

    /// Inverse of [`Status::code`].
    ///
    /// # Panics
    ///
    /// Panics on codes other than 0, 1, 2.
    pub fn from_code(code: i64) -> Self {
        match code {
            0 => Status::Unknown,
            1 => Status::Active,
            2 => Status::Inactive,
            other => panic!("invalid status code {other}"),
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Unknown => write!(f, "?"),
            Status::Active => write!(f, "active"),
            Status::Inactive => write!(f, "inactive"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_roundtrip() {
        for s in [Status::Unknown, Status::Active, Status::Inactive] {
            assert_eq!(Status::from_code(s.code()), s);
        }
    }

    #[test]
    #[should_panic(expected = "invalid status code")]
    fn bad_code_panics() {
        let _ = Status::from_code(3);
    }

    #[test]
    fn display() {
        assert_eq!(Status::Unknown.to_string(), "?");
        assert_eq!(Status::Active.to_string(), "active");
        assert_eq!(Status::Inactive.to_string(), "inactive");
    }
}
