//! Property tests: the sequential object types against independent
//! reference models.

use proptest::prelude::*;
use std::collections::VecDeque;
use tbwf::types::*;
use tbwf_universal::ObjectType;

fn stack_ops() -> impl Strategy<Value = Vec<StackOp>> {
    prop::collection::vec(
        prop_oneof![(-50i64..50).prop_map(StackOp::Push), Just(StackOp::Pop)],
        0..60,
    )
}

fn queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    prop::collection::vec(
        prop_oneof![(-50i64..50).prop_map(QueueOp::Enq), Just(QueueOp::Deq)],
        0..60,
    )
}

fn deque_ops() -> impl Strategy<Value = Vec<DequeOp>> {
    prop::collection::vec(
        prop_oneof![
            (-50i64..50).prop_map(DequeOp::PushLeft),
            (-50i64..50).prop_map(DequeOp::PushRight),
            Just(DequeOp::PopLeft),
            Just(DequeOp::PopRight),
        ],
        0..60,
    )
}

proptest! {
    #[test]
    fn stack_matches_vec_model(ops in stack_ops()) {
        let ty = Stack;
        let mut state = ty.initial();
        let mut model: Vec<i64> = Vec::new();
        for op in ops {
            let resp = ty.apply(&mut state, &op);
            match op {
                StackOp::Push(v) => { model.push(v); prop_assert_eq!(resp, StackResp::Pushed); }
                StackOp::Pop => prop_assert_eq!(resp, StackResp::Popped(model.pop())),
            }
            prop_assert_eq!(&state, &model);
        }
    }

    #[test]
    fn queue_matches_vecdeque_model(ops in queue_ops()) {
        let ty = Queue;
        let mut state = ty.initial();
        let mut model: VecDeque<i64> = VecDeque::new();
        for op in ops {
            let resp = ty.apply(&mut state, &op);
            match op {
                QueueOp::Enq(v) => { model.push_back(v); prop_assert_eq!(resp, QueueResp::Enqueued); }
                QueueOp::Deq => prop_assert_eq!(resp, QueueResp::Dequeued(model.pop_front())),
            }
        }
        prop_assert_eq!(state, model);
    }

    #[test]
    fn deque_matches_vecdeque_model(ops in deque_ops()) {
        let ty = Deque;
        let mut state = ty.initial();
        let mut model: VecDeque<i64> = VecDeque::new();
        for op in ops {
            let resp = ty.apply(&mut state, &op);
            let expect = match op {
                DequeOp::PushLeft(v) => { model.push_front(v); DequeResp::Pushed }
                DequeOp::PushRight(v) => { model.push_back(v); DequeResp::Pushed }
                DequeOp::PopLeft => DequeResp::Popped(model.pop_front()),
                DequeOp::PopRight => DequeResp::Popped(model.pop_back()),
            };
            prop_assert_eq!(resp, expect);
        }
        prop_assert_eq!(state, model);
    }

    #[test]
    fn regfile_matches_array_model(size in 1usize..6, ops in prop::collection::vec((0usize..8, -50i64..50, prop::bool::ANY), 0..50)) {
        let ty = RegFile::new(size);
        let mut state = ty.initial();
        let mut model = vec![0i64; size];
        for (i, v, is_write) in ops {
            if is_write {
                let resp = ty.apply(&mut state, &RegFileOp::Write(i, v));
                model[i % size] = v;
                prop_assert_eq!(resp, RegFileResp::Written);
            } else {
                let resp = ty.apply(&mut state, &RegFileOp::Read(i));
                prop_assert_eq!(resp, RegFileResp::Value(model[i % size]));
            }
        }
    }

    #[test]
    fn fetch_add_sums(deltas in prop::collection::vec(-50i64..50, 0..50)) {
        let ty = FetchAdd;
        let mut state = ty.initial();
        let mut sum = 0i64;
        for d in deltas {
            let old = ty.apply(&mut state, &FetchAddOp(d));
            prop_assert_eq!(old, sum);
            sum += d;
        }
        prop_assert_eq!(state, sum);
    }

    #[test]
    fn cas_object_matches_cell_model(ops in prop::collection::vec((0i64..4, 0i64..4), 0..50)) {
        let ty = CasObject;
        let mut state = ty.initial();
        let mut model = 0i64;
        for (e, n) in ops {
            let resp = ty.apply(&mut state, &CasOp::Cas { expected: e, new: n });
            if model == e {
                model = n;
                prop_assert_eq!(resp, CasResp::Swapped(true));
            } else {
                prop_assert_eq!(resp, CasResp::Swapped(false));
            }
            prop_assert_eq!(ty.apply(&mut state, &CasOp::Read), CasResp::Value(model));
        }
    }

    /// apply must be deterministic: same state + op ⇒ same result.
    #[test]
    fn apply_is_deterministic(ops in stack_ops()) {
        let ty = Stack;
        let mut a = ty.initial();
        let mut b = ty.initial();
        for op in ops {
            let ra = ty.apply(&mut a, &op);
            let rb = ty.apply(&mut b, &op);
            prop_assert_eq!(ra, rb);
            prop_assert_eq!(&a, &b);
        }
    }
}
