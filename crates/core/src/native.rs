//! Native harness: the full TBWF stack on **real OS threads**.
//!
//! The deterministic simulator is the reference backend (it is where the
//! specifications are checked); this harness runs the *same algorithm
//! code* — the monitor mesh, Ω∆, and the query-abortable object — on one
//! OS thread per task, with real parallelism and OS scheduling. Registers
//! are the same simulated-register implementations: their two-phase
//! overlap detection works under genuine concurrency, so abortable
//! registers abort on real races.
//!
//! Timeliness becomes a property of the OS scheduler: on an unloaded
//! machine every thread is timely, so the TBWF object behaves wait-free.
//! The Criterion benches use this harness to measure real-time
//! throughput; it is an extension beyond the paper's model, demonstrating
//! that the algorithms are not simulator-bound.
//!
//! # Example
//!
//! ```
//! use tbwf::native::NativeTbwf;
//! use tbwf::prelude::*;
//!
//! let system = NativeTbwf::start(Counter, 2, OmegaKind::Atomic);
//! let mut client = system.client(0);
//! let v = client.invoke(CounterOp::Inc).expect("system is running");
//! assert_eq!(v, 1);
//! system.shutdown();
//! ```

use crate::system::OBS_COMPLETED;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use tbwf_omega::harness::{install_omega_with, OmegaOptions};
use tbwf_omega::{OmegaHandles, OmegaKind};
use tbwf_registers::native::NativeEnv;
use tbwf_registers::{RegisterFactory, RegisterFactoryConfig};
use tbwf_sim::{Env, Halted, ProcId, TaskBody, TaskSpawner};
use tbwf_universal::qa::QaObject;
use tbwf_universal::tbwf::invoke_tbwf;
use tbwf_universal::ObjectType;

/// A [`TaskSpawner`] that runs each task on its own OS thread.
struct ThreadSpawner {
    envs: Vec<NativeEnv>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadSpawner {
    fn new(n: usize, stop: &Arc<AtomicBool>) -> Self {
        let envs = (0..n)
            .map(|p| NativeEnv::new(ProcId(p), Arc::clone(stop)))
            .collect();
        ThreadSpawner {
            envs,
            handles: Vec::new(),
        }
    }
}

impl TaskSpawner for ThreadSpawner {
    fn spawn_task(&mut self, pid: ProcId, name: &str, body: TaskBody) {
        let env = self.envs[pid.0].clone();
        let handle = std::thread::Builder::new()
            .name(format!("{pid}-{name}"))
            .spawn(move || {
                // Halted is the normal shutdown path.
                let _ = body(&env);
            })
            .expect("failed to spawn native task thread");
        self.handles.push(handle);
    }
}

/// A running native TBWF system: Ω∆ (and, for the atomic flavor, the
/// whole activity-monitor mesh) live on background threads; clients
/// invoke operations from any thread.
pub struct NativeTbwf<T: ObjectType> {
    obj: Arc<QaObject<T>>,
    omega_handles: Vec<OmegaHandles>,
    envs: Vec<NativeEnv>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl<T: ObjectType> NativeTbwf<T> {
    /// Starts the system for `n` processes with default register policies.
    pub fn start(ty: T, n: usize, kind: OmegaKind) -> Self {
        Self::start_with(ty, n, kind, RegisterFactoryConfig::default())
    }

    /// Starts the system with explicit register policies.
    pub fn start_with(ty: T, n: usize, kind: OmegaKind, config: RegisterFactoryConfig) -> Self {
        let factory = Arc::new(RegisterFactory::new_unlogged(config));
        let stop = Arc::new(AtomicBool::new(false));
        let mut spawner = ThreadSpawner::new(n, &stop);
        let omega_handles =
            install_omega_with(&mut spawner, &factory, n, kind, OmegaOptions::default());
        let obj = QaObject::new(ty, n, Arc::clone(&factory));
        NativeTbwf {
            obj,
            omega_handles,
            envs: spawner.envs,
            stop,
            handles: spawner.handles,
        }
    }

    /// A client handle for process `p`. Each process must have at most
    /// one client (it owns that process's object session).
    pub fn client(&self, p: usize) -> NativeClient<T> {
        NativeClient {
            env: self.envs[p].clone(),
            session: self.obj.session(ProcId(p)),
            omega: self.omega_handles[p].clone(),
            completed: 0,
        }
    }

    /// Stops every background thread and joins them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<T: ObjectType> Drop for NativeTbwf<T> {
    fn drop(&mut self) {
        // Belt and braces: never leave spinning threads behind.
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A per-process client of a [`NativeTbwf`] system.
pub struct NativeClient<T: ObjectType> {
    env: NativeEnv,
    session: tbwf_universal::qa::QaSession<T>,
    omega: OmegaHandles,
    completed: u64,
}

impl<T: ObjectType> NativeClient<T> {
    /// Executes one operation through the Figure 7 transform, blocking
    /// until it completes.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the system was shut down while the
    /// operation was in progress.
    pub fn invoke(&mut self, op: T::Op) -> Result<T::Resp, Halted> {
        let resp = invoke_tbwf(&self.env, &mut self.session, &self.omega, op)?;
        self.completed += 1;
        self.env.observe(OBS_COMPLETED, 0, self.completed as i64);
        Ok(resp)
    }

    /// Operations completed by this client.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Stack, StackOp, StackResp};
    use tbwf_universal::object::{Counter, CounterOp};

    #[test]
    fn native_counter_single_client() {
        let system = NativeTbwf::start(Counter, 2, OmegaKind::Atomic);
        let mut c = system.client(0);
        for i in 1..=10 {
            assert_eq!(c.invoke(CounterOp::Inc).unwrap(), i);
        }
        assert_eq!(c.completed(), 10);
        system.shutdown();
    }

    #[test]
    fn native_counter_parallel_clients_linearize() {
        let system = NativeTbwf::start(Counter, 3, OmegaKind::Atomic);
        let mut threads = Vec::new();
        for p in 0..3 {
            let mut client = system.client(p);
            threads.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..20 {
                    got.push(client.invoke(CounterOp::Inc).unwrap());
                }
                got
            }));
        }
        let mut all: Vec<i64> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        system.shutdown();
        all.sort_unstable();
        let expect: Vec<i64> = (1..=60).collect();
        assert_eq!(all, expect, "responses must be exactly 1..=60");
    }

    #[test]
    fn native_abortable_omega_works_too() {
        let system = NativeTbwf::start(Counter, 2, OmegaKind::Abortable);
        let mut c = system.client(1);
        assert_eq!(c.invoke(CounterOp::Inc).unwrap(), 1);
        system.shutdown();
    }

    #[test]
    fn native_stack_roundtrip() {
        let system = NativeTbwf::start(Stack, 2, OmegaKind::Atomic);
        let mut c = system.client(0);
        assert_eq!(c.invoke(StackOp::Push(5)).unwrap(), StackResp::Pushed);
        assert_eq!(c.invoke(StackOp::Pop).unwrap(), StackResp::Popped(Some(5)));
        assert_eq!(c.invoke(StackOp::Pop).unwrap(), StackResp::Popped(None));
        system.shutdown();
    }

    #[test]
    fn shutdown_unblocks_inflight_invocations() {
        let system = NativeTbwf::start(Counter, 2, OmegaKind::Atomic);
        // A client on a process whose leader never becomes itself would
        // block; shutting down must release it with Halted.
        let mut client = system.client(0);
        let stopper = {
            let stop = system.stop.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(100));
                stop.store(true, Ordering::SeqCst);
            })
        };
        // Run invocations until Halted arrives.
        let mut halted = false;
        for _ in 0..1_000_000 {
            match client.invoke(CounterOp::Inc) {
                Ok(_) => {}
                Err(Halted) => {
                    halted = true;
                    break;
                }
            }
        }
        stopper.join().unwrap();
        assert!(halted, "shutdown must surface as Halted");
        system.shutdown();
    }
}
