//! A FIFO queue of `i64` values.

use std::collections::VecDeque;
use tbwf_universal::ObjectType;

/// A first-in first-out queue.
#[derive(Clone, Copy, Debug, Default)]
pub struct Queue;

/// Operations of [`Queue`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueOp {
    /// Enqueue a value at the tail.
    Enq(i64),
    /// Dequeue the head value (`None` when empty).
    Deq,
}

/// Responses of [`Queue`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueResp {
    /// Response to `Enq`.
    Enqueued,
    /// Response to `Deq`.
    Dequeued(Option<i64>),
}

impl ObjectType for Queue {
    type State = VecDeque<i64>;
    type Op = QueueOp;
    type Resp = QueueResp;

    fn initial(&self) -> VecDeque<i64> {
        VecDeque::new()
    }

    fn apply(&self, state: &mut VecDeque<i64>, op: &QueueOp) -> QueueResp {
        match op {
            QueueOp::Enq(v) => {
                state.push_back(*v);
                QueueResp::Enqueued
            }
            QueueOp::Deq => QueueResp::Dequeued(state.pop_front()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let t = Queue;
        let mut s = t.initial();
        t.apply(&mut s, &QueueOp::Enq(1));
        t.apply(&mut s, &QueueOp::Enq(2));
        assert_eq!(t.apply(&mut s, &QueueOp::Deq), QueueResp::Dequeued(Some(1)));
        assert_eq!(t.apply(&mut s, &QueueOp::Deq), QueueResp::Dequeued(Some(2)));
        assert_eq!(t.apply(&mut s, &QueueOp::Deq), QueueResp::Dequeued(None));
    }
}
