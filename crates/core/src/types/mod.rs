//! Sequential object types for the universal constructions.
//!
//! Each type is a deterministic state machine implementing
//! [`ObjectType`](tbwf_universal::ObjectType); any of them can be wrapped
//! by the TBWF transform (Theorem 15: *every* type has a TBWF
//! implementation from abortable registers). The double-ended queue is
//! the motivating type of the obstruction-freedom paper \[10\] cited in
//! the introduction.

mod cas_obj;
mod consensus;
mod deque;
mod fetch_add;
mod queue;
mod regfile;
mod snapshot;
mod stack;

pub use cas_obj::{CasObject, CasOp, CasResp};
pub use consensus::{Consensus, ConsensusOp, ConsensusResp};
pub use deque::{Deque, DequeOp, DequeResp};
pub use fetch_add::{FetchAdd, FetchAddOp};
pub use queue::{Queue, QueueOp, QueueResp};
pub use regfile::{RegFile, RegFileOp, RegFileResp};
pub use snapshot::{Snapshot, SnapshotOp, SnapshotResp};
pub use stack::{Stack, StackOp, StackResp};
