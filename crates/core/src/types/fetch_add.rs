//! A fetch-and-add cell.

use tbwf_universal::ObjectType;

/// A fetch-and-add object over `i64`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FetchAdd;

/// The single operation of [`FetchAdd`]: add a delta, respond with the
/// *previous* value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FetchAddOp(pub i64);

impl ObjectType for FetchAdd {
    type State = i64;
    type Op = FetchAddOp;
    type Resp = i64;

    fn initial(&self) -> i64 {
        0
    }

    fn apply(&self, state: &mut i64, op: &FetchAddOp) -> i64 {
        let old = *state;
        *state += op.0;
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_previous_value() {
        let t = FetchAdd;
        let mut s = t.initial();
        assert_eq!(t.apply(&mut s, &FetchAddOp(5)), 0);
        assert_eq!(t.apply(&mut s, &FetchAddOp(-2)), 5);
        assert_eq!(s, 3);
    }
}
