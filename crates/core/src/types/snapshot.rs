//! An atomic snapshot object — the classic shared-memory abstraction
//! with per-process segments, an `Update` on one's own segment, and a
//! `Scan` returning an instantaneous view of all segments. Implementing
//! it through the universal construction makes the (normally hard)
//! atomic-scan property trivial: every operation linearizes in the
//! decided log.

use tbwf_universal::ObjectType;

/// An n-segment atomic snapshot object.
#[derive(Clone, Copy, Debug)]
pub struct Snapshot {
    /// Number of segments (usually the number of processes).
    pub segments: usize,
}

impl Snapshot {
    /// A snapshot object with `segments` segments, all initially 0.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is 0.
    pub fn new(segments: usize) -> Self {
        assert!(segments >= 1, "snapshot needs at least one segment");
        Snapshot { segments }
    }
}

/// Operations of [`Snapshot`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapshotOp {
    /// Write `value` into segment `segment`.
    Update {
        /// The segment to write (callers conventionally use their own id).
        segment: usize,
        /// The value to store.
        value: i64,
    },
    /// Read all segments atomically.
    Scan,
}

/// Responses of [`Snapshot`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapshotResp {
    /// Response to `Update`.
    Updated,
    /// Response to `Scan`: the instantaneous view.
    View(Vec<i64>),
}

impl ObjectType for Snapshot {
    type State = Vec<i64>;
    type Op = SnapshotOp;
    type Resp = SnapshotResp;

    fn initial(&self) -> Vec<i64> {
        vec![0; self.segments]
    }

    fn apply(&self, state: &mut Vec<i64>, op: &SnapshotOp) -> SnapshotResp {
        match op {
            SnapshotOp::Update { segment, value } => {
                let len = state.len();
                state[*segment % len] = *value;
                SnapshotResp::Updated
            }
            SnapshotOp::Scan => SnapshotResp::View(state.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_sees_updates() {
        let t = Snapshot::new(3);
        let mut s = t.initial();
        t.apply(
            &mut s,
            &SnapshotOp::Update {
                segment: 1,
                value: 7,
            },
        );
        assert_eq!(
            t.apply(&mut s, &SnapshotOp::Scan),
            SnapshotResp::View(vec![0, 7, 0])
        );
    }

    #[test]
    fn out_of_range_segment_wraps() {
        let t = Snapshot::new(2);
        let mut s = t.initial();
        t.apply(
            &mut s,
            &SnapshotOp::Update {
                segment: 5,
                value: 3,
            },
        );
        assert_eq!(
            t.apply(&mut s, &SnapshotOp::Scan),
            SnapshotResp::View(vec![0, 3])
        );
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_rejected() {
        let _ = Snapshot::new(0);
    }
}
