//! A consensus object as a sequential type — the corollary of the
//! paper's Section 1.2: since Ω∆ (and hence the TBWF transform) works
//! from abortable registers, *consensus is solvable from abortable
//! registers provided at least one process is timely*, by wrapping this
//! decide-once type with the TBWF construction.
//!
//! The sequential semantics is write-once: the first `Propose(v)` decides
//! `v`; every operation (including the deciding one) responds with the
//! decided value. Validity, agreement, and integrity are then immediate
//! from the linearizability of the TBWF object; termination for timely
//! processes is exactly the TBWF progress condition.

use tbwf_universal::ObjectType;

/// A single-shot consensus object over `i64` proposals.
#[derive(Clone, Copy, Debug, Default)]
pub struct Consensus;

/// Operations of [`Consensus`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConsensusOp {
    /// Propose a value; responds with the decided value (the proposal
    /// itself if this operation decided).
    Propose(i64),
    /// Read the decision, if any.
    ReadDecision,
}

/// Responses of [`Consensus`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConsensusResp {
    /// The decided value.
    Decided(i64),
    /// No proposal has been decided yet (only from `ReadDecision`).
    Undecided,
}

impl ObjectType for Consensus {
    type State = Option<i64>;
    type Op = ConsensusOp;
    type Resp = ConsensusResp;

    fn initial(&self) -> Option<i64> {
        None
    }

    fn apply(&self, state: &mut Option<i64>, op: &ConsensusOp) -> ConsensusResp {
        match op {
            ConsensusOp::Propose(v) => {
                let decided = *state.get_or_insert(*v);
                ConsensusResp::Decided(decided)
            }
            ConsensusOp::ReadDecision => match state {
                Some(v) => ConsensusResp::Decided(*v),
                None => ConsensusResp::Undecided,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_proposal_wins() {
        let t = Consensus;
        let mut s = t.initial();
        assert_eq!(
            t.apply(&mut s, &ConsensusOp::ReadDecision),
            ConsensusResp::Undecided
        );
        assert_eq!(
            t.apply(&mut s, &ConsensusOp::Propose(7)),
            ConsensusResp::Decided(7)
        );
        assert_eq!(
            t.apply(&mut s, &ConsensusOp::Propose(9)),
            ConsensusResp::Decided(7)
        );
        assert_eq!(
            t.apply(&mut s, &ConsensusOp::ReadDecision),
            ConsensusResp::Decided(7)
        );
    }
}
