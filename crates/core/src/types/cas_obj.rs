//! A compare-and-swap object *implemented on top of the universal
//! constructions* — i.e. CAS built from abortable registers via TBWF,
//! illustrating that even "strong" types are covered by Theorem 15.

use tbwf_universal::ObjectType;

/// A compare-and-swap cell over `i64`.
#[derive(Clone, Copy, Debug, Default)]
pub struct CasObject;

/// Operations of [`CasObject`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CasOp {
    /// If the value equals `expected`, set it to `new`.
    Cas {
        /// The expected current value.
        expected: i64,
        /// The replacement value.
        new: i64,
    },
    /// Read the value.
    Read,
}

/// Responses of [`CasObject`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CasResp {
    /// Response to `Cas`: whether the swap happened.
    Swapped(bool),
    /// Response to `Read`.
    Value(i64),
}

impl ObjectType for CasObject {
    type State = i64;
    type Op = CasOp;
    type Resp = CasResp;

    fn initial(&self) -> i64 {
        0
    }

    fn apply(&self, state: &mut i64, op: &CasOp) -> CasResp {
        match op {
            CasOp::Cas { expected, new } => {
                if *state == *expected {
                    *state = *new;
                    CasResp::Swapped(true)
                } else {
                    CasResp::Swapped(false)
                }
            }
            CasOp::Read => CasResp::Value(*state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_semantics() {
        let t = CasObject;
        let mut s = t.initial();
        assert_eq!(
            t.apply(
                &mut s,
                &CasOp::Cas {
                    expected: 0,
                    new: 7
                }
            ),
            CasResp::Swapped(true)
        );
        assert_eq!(
            t.apply(
                &mut s,
                &CasOp::Cas {
                    expected: 0,
                    new: 9
                }
            ),
            CasResp::Swapped(false)
        );
        assert_eq!(t.apply(&mut s, &CasOp::Read), CasResp::Value(7));
    }
}
