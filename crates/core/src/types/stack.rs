//! A LIFO stack of `i64` values.

use tbwf_universal::ObjectType;

/// A last-in first-out stack.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stack;

/// Operations of [`Stack`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StackOp {
    /// Push a value.
    Push(i64),
    /// Pop the top value (`None` when empty).
    Pop,
}

/// Responses of [`Stack`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StackResp {
    /// Response to `Push`.
    Pushed,
    /// Response to `Pop`.
    Popped(Option<i64>),
}

impl ObjectType for Stack {
    type State = Vec<i64>;
    type Op = StackOp;
    type Resp = StackResp;

    fn initial(&self) -> Vec<i64> {
        Vec::new()
    }

    fn apply(&self, state: &mut Vec<i64>, op: &StackOp) -> StackResp {
        match op {
            StackOp::Push(v) => {
                state.push(*v);
                StackResp::Pushed
            }
            StackOp::Pop => StackResp::Popped(state.pop()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let t = Stack;
        let mut s = t.initial();
        t.apply(&mut s, &StackOp::Push(1));
        t.apply(&mut s, &StackOp::Push(2));
        assert_eq!(t.apply(&mut s, &StackOp::Pop), StackResp::Popped(Some(2)));
        assert_eq!(t.apply(&mut s, &StackOp::Pop), StackResp::Popped(Some(1)));
        assert_eq!(t.apply(&mut s, &StackOp::Pop), StackResp::Popped(None));
    }
}
