//! A file of `k` read/write registers (a multi-register object).

use tbwf_universal::ObjectType;

/// A register file with a fixed number of cells.
#[derive(Clone, Copy, Debug)]
pub struct RegFile {
    /// Number of registers.
    pub size: usize,
}

impl RegFile {
    /// A register file with `size` cells, all initially 0.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "register file needs at least one cell");
        RegFile { size }
    }
}

/// Operations of [`RegFile`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegFileOp {
    /// Read cell `i`.
    Read(usize),
    /// Write `v` into cell `i`.
    Write(usize, i64),
}

/// Responses of [`RegFile`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegFileResp {
    /// Response to `Read`.
    Value(i64),
    /// Response to `Write`.
    Written,
}

impl ObjectType for RegFile {
    type State = Vec<i64>;
    type Op = RegFileOp;
    type Resp = RegFileResp;

    fn initial(&self) -> Vec<i64> {
        vec![0; self.size]
    }

    fn apply(&self, state: &mut Vec<i64>, op: &RegFileOp) -> RegFileResp {
        match op {
            RegFileOp::Read(i) => RegFileResp::Value(state[*i % state.len()]),
            RegFileOp::Write(i, v) => {
                let len = state.len();
                state[*i % len] = *v;
                RegFileResp::Written
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_cells() {
        let t = RegFile::new(3);
        let mut s = t.initial();
        assert_eq!(t.apply(&mut s, &RegFileOp::Read(1)), RegFileResp::Value(0));
        t.apply(&mut s, &RegFileOp::Write(1, 42));
        assert_eq!(t.apply(&mut s, &RegFileOp::Read(1)), RegFileResp::Value(42));
        assert_eq!(t.apply(&mut s, &RegFileOp::Read(0)), RegFileResp::Value(0));
    }

    #[test]
    fn out_of_range_indices_wrap() {
        let t = RegFile::new(2);
        let mut s = t.initial();
        t.apply(&mut s, &RegFileOp::Write(5, 9)); // 5 % 2 == 1
        assert_eq!(t.apply(&mut s, &RegFileOp::Read(1)), RegFileResp::Value(9));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_size_rejected() {
        let _ = RegFile::new(0);
    }
}
