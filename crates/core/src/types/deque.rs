//! A double-ended queue — the motivating type of the obstruction-freedom
//! paper (Herlihy, Luchangco, Moir, ICDCS 2003), reference \[10\].

use std::collections::VecDeque;
use tbwf_universal::ObjectType;

/// A double-ended queue of `i64` values.
#[derive(Clone, Copy, Debug, Default)]
pub struct Deque;

/// Operations of [`Deque`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DequeOp {
    /// Push at the left end.
    PushLeft(i64),
    /// Push at the right end.
    PushRight(i64),
    /// Pop from the left end.
    PopLeft,
    /// Pop from the right end.
    PopRight,
}

/// Responses of [`Deque`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DequeResp {
    /// Response to pushes.
    Pushed,
    /// Response to pops (`None` when empty).
    Popped(Option<i64>),
}

impl ObjectType for Deque {
    type State = VecDeque<i64>;
    type Op = DequeOp;
    type Resp = DequeResp;

    fn initial(&self) -> VecDeque<i64> {
        VecDeque::new()
    }

    fn apply(&self, state: &mut VecDeque<i64>, op: &DequeOp) -> DequeResp {
        match op {
            DequeOp::PushLeft(v) => {
                state.push_front(*v);
                DequeResp::Pushed
            }
            DequeOp::PushRight(v) => {
                state.push_back(*v);
                DequeResp::Pushed
            }
            DequeOp::PopLeft => DequeResp::Popped(state.pop_front()),
            DequeOp::PopRight => DequeResp::Popped(state.pop_back()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_ends_work() {
        let t = Deque;
        let mut s = t.initial();
        t.apply(&mut s, &DequeOp::PushLeft(1));
        t.apply(&mut s, &DequeOp::PushRight(2));
        t.apply(&mut s, &DequeOp::PushLeft(0));
        assert_eq!(
            t.apply(&mut s, &DequeOp::PopRight),
            DequeResp::Popped(Some(2))
        );
        assert_eq!(
            t.apply(&mut s, &DequeOp::PopLeft),
            DequeResp::Popped(Some(0))
        );
        assert_eq!(
            t.apply(&mut s, &DequeOp::PopLeft),
            DequeResp::Popped(Some(1))
        );
        assert_eq!(t.apply(&mut s, &DequeOp::PopLeft), DequeResp::Popped(None));
    }
}
