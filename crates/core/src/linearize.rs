//! A Wing & Gong–style linearizability checker for small concurrent
//! histories.
//!
//! The type-specific invariant tests (distinct counter responses, FIFO
//! order, …) are fast but partial. This checker is complete: given a
//! history of operations with their real-time intervals, it searches for
//! a *linearization* — a total order that (a) respects real-time
//! precedence (if `a` responded before `b` was invoked, `a` comes first)
//! and (b) replays against the sequential [`ObjectType`] semantics with
//! exactly the observed responses.
//!
//! The search is exponential in the worst case, so it is meant for the
//! histories our tests produce (tens of operations, few processes); a
//! memoization set over `(decided-set, state)` keeps typical cases fast.
//!
//! Crash/halt caveat: operations that never returned are *not* in the
//! history. For runs of the TBWF object this is sound to check only if
//! pending (never-completed) operations may or may not have taken
//! effect — which our per-type invariant tests cover separately by
//! checking, e.g., that no value is popped twice. The checker here is
//! used on histories where every invoked operation completed.

use std::collections::HashSet;
use std::hash::Hash;
use tbwf_sim::ProcId;
use tbwf_universal::ObjectType;

/// One completed operation of a concurrent history.
#[derive(Clone, Debug)]
pub struct HistoryEvent<T: ObjectType> {
    /// The invoking process (diagnostics only).
    pub proc: ProcId,
    /// The operation.
    pub op: T::Op,
    /// The observed response.
    pub resp: T::Resp,
    /// Invocation time.
    pub invoked: u64,
    /// Response time (must be ≥ `invoked`).
    pub responded: u64,
}

/// Why a history failed the check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinearizeError {
    /// No valid linearization exists: the history is not linearizable
    /// with respect to the sequential type.
    NotLinearizable,
    /// An event has `responded < invoked`.
    BadInterval {
        /// Index of the offending event.
        index: usize,
    },
}

/// Searches for a linearization of `history` against `ty`'s sequential
/// semantics. On success returns the indices of `history` in
/// linearization order.
///
/// ```
/// use tbwf::linearize::{check_linearizable, HistoryEvent};
/// use tbwf::prelude::*;
///
/// // Two overlapping increments: the responses reveal that p1's
/// // increment linearized first.
/// let history = vec![
///     HistoryEvent::<Counter> {
///         proc: ProcId(0), op: CounterOp::Inc, resp: 2, invoked: 0, responded: 10,
///     },
///     HistoryEvent::<Counter> {
///         proc: ProcId(1), op: CounterOp::Inc, resp: 1, invoked: 0, responded: 10,
///     },
/// ];
/// assert_eq!(check_linearizable(&Counter, &history), Ok(vec![1, 0]));
/// ```
///
/// # Errors
///
/// [`LinearizeError::NotLinearizable`] if no valid order exists;
/// [`LinearizeError::BadInterval`] if an event's interval is inverted.
pub fn check_linearizable<T>(
    ty: &T,
    history: &[HistoryEvent<T>],
) -> Result<Vec<usize>, LinearizeError>
where
    T: ObjectType,
    T::State: Hash + Eq,
{
    for (i, e) in history.iter().enumerate() {
        if e.responded < e.invoked {
            return Err(LinearizeError::BadInterval { index: i });
        }
    }
    let n = history.len();
    let mut taken = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut state = ty.initial();
    // Memoize (taken-set, state) pairs that are known dead ends.
    let mut failed: HashSet<(Vec<bool>, T::State)> = HashSet::new();

    fn dfs<T>(
        ty: &T,
        history: &[HistoryEvent<T>],
        taken: &mut Vec<bool>,
        order: &mut Vec<usize>,
        state: &mut T::State,
        failed: &mut HashSet<(Vec<bool>, T::State)>,
    ) -> bool
    where
        T: ObjectType,
        T::State: Hash + Eq,
    {
        let n = history.len();
        if order.len() == n {
            return true;
        }
        if failed.contains(&(taken.clone(), state.clone())) {
            return false;
        }
        // The earliest response among pending events bounds which events
        // may linearize next: an event invoked after some pending event
        // already responded cannot go first.
        let min_responded = history
            .iter()
            .enumerate()
            .filter(|(i, _)| !taken[*i])
            .map(|(_, e)| e.responded)
            .min()
            .expect("pending set non-empty");
        for i in 0..n {
            if taken[i] || history[i].invoked > min_responded {
                continue;
            }
            let e = &history[i];
            let mut next_state = state.clone();
            let resp = ty.apply(&mut next_state, &e.op);
            if resp != e.resp {
                continue;
            }
            taken[i] = true;
            order.push(i);
            let mut s = next_state;
            std::mem::swap(state, &mut s); // state := next, keep old in s
            if dfs(ty, history, taken, order, state, failed) {
                return true;
            }
            std::mem::swap(state, &mut s); // restore
            order.pop();
            taken[i] = false;
        }
        failed.insert((taken.clone(), state.clone()));
        false
    }

    if dfs(ty, history, &mut taken, &mut order, &mut state, &mut failed) {
        Ok(order)
    } else {
        Err(LinearizeError::NotLinearizable)
    }
}

/// Extracts the completed-operation history of a run, process-major in
/// completion order — the form [`check_linearizable`] consumes.
pub fn run_history<T: ObjectType>(run: &crate::system::TbwfRun<T>) -> Vec<HistoryEvent<T>> {
    run.results
        .iter()
        .enumerate()
        .flat_map(|(p, rs)| {
            rs.iter().map(move |r| HistoryEvent {
                proc: ProcId(p),
                op: r.op.clone(),
                resp: r.resp.clone(),
                invoked: r.invoked,
                responded: r.time,
            })
        })
        .collect()
}

/// Checks the complete history of a
/// [`TbwfRun`](crate::system::TbwfRun); on success returns the history
/// indices in linearization order.
///
/// Only sound when the history is *complete* — no operation took effect
/// without its response being reported (see the crate-level caveat on
/// crashed mid-flight operations); callers must gate on that.
///
/// # Errors
///
/// Exactly those of [`check_linearizable`].
pub fn check_run_linearizable<T>(
    ty: &T,
    run: &crate::system::TbwfRun<T>,
) -> Result<Vec<usize>, LinearizeError>
where
    T: ObjectType,
    T::State: Hash + Eq,
{
    check_linearizable(ty, &run_history(run))
}

/// Convenience: checks the complete history of a
/// [`TbwfRun`](crate::system::TbwfRun).
///
/// # Panics
///
/// Panics (with a descriptive message) if the history is not
/// linearizable — this is meant for tests and experiments.
pub fn assert_run_linearizable<T>(ty: &T, run: &crate::system::TbwfRun<T>)
where
    T: ObjectType,
    T::State: Hash + Eq,
{
    if let Err(e) = check_run_linearizable(ty, run) {
        panic!(
            "history of {} operations is not linearizable: {e:?}",
            run_history(run).len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Stack, StackOp, StackResp};
    use tbwf_universal::object::{Counter, CounterOp};

    fn ev<T: ObjectType>(
        p: usize,
        op: T::Op,
        resp: T::Resp,
        invoked: u64,
        responded: u64,
    ) -> HistoryEvent<T> {
        HistoryEvent {
            proc: ProcId(p),
            op,
            resp,
            invoked,
            responded,
        }
    }

    #[test]
    fn sequential_history_linearizes_in_order() {
        let h = vec![
            ev::<Counter>(0, CounterOp::Inc, 1, 0, 1),
            ev::<Counter>(1, CounterOp::Inc, 2, 2, 3),
            ev::<Counter>(0, CounterOp::Get, 2, 4, 5),
        ];
        assert_eq!(check_linearizable(&Counter, &h), Ok(vec![0, 1, 2]));
    }

    #[test]
    fn concurrent_history_finds_the_valid_order() {
        // Two overlapping incs: responses force the order 1-then-0.
        let h = vec![
            ev::<Counter>(0, CounterOp::Inc, 2, 0, 10),
            ev::<Counter>(1, CounterOp::Inc, 1, 0, 10),
        ];
        assert_eq!(check_linearizable(&Counter, &h), Ok(vec![1, 0]));
    }

    #[test]
    fn real_time_order_is_respected() {
        // Op 0 responded before op 1 was invoked, but the responses
        // require op 1 to linearize first ⇒ not linearizable.
        let h = vec![
            ev::<Counter>(0, CounterOp::Inc, 2, 0, 1),
            ev::<Counter>(1, CounterOp::Inc, 1, 5, 6),
        ];
        assert_eq!(
            check_linearizable(&Counter, &h),
            Err(LinearizeError::NotLinearizable)
        );
    }

    #[test]
    fn duplicate_responses_are_rejected() {
        let h = vec![
            ev::<Counter>(0, CounterOp::Inc, 1, 0, 10),
            ev::<Counter>(1, CounterOp::Inc, 1, 0, 10),
        ];
        assert_eq!(
            check_linearizable(&Counter, &h),
            Err(LinearizeError::NotLinearizable)
        );
    }

    #[test]
    fn stack_history_with_hidden_order() {
        // Concurrent pushes; a later pop observes which one was last.
        let h = vec![
            ev::<Stack>(0, StackOp::Push(1), StackResp::Pushed, 0, 10),
            ev::<Stack>(1, StackOp::Push(2), StackResp::Pushed, 0, 10),
            ev::<Stack>(0, StackOp::Pop, StackResp::Popped(Some(1)), 11, 12),
            ev::<Stack>(0, StackOp::Pop, StackResp::Popped(Some(2)), 13, 14),
        ];
        // Valid: push 2, push 1, pop 1, pop 2.
        let order = check_linearizable(&Stack, &h).expect("linearizable");
        assert_eq!(order, vec![1, 0, 2, 3]);
    }

    #[test]
    fn pop_of_never_pushed_value_fails() {
        let h = vec![
            ev::<Stack>(0, StackOp::Push(1), StackResp::Pushed, 0, 1),
            ev::<Stack>(1, StackOp::Pop, StackResp::Popped(Some(9)), 2, 3),
        ];
        assert_eq!(
            check_linearizable(&Stack, &h),
            Err(LinearizeError::NotLinearizable)
        );
    }

    #[test]
    fn inverted_interval_is_reported() {
        let h = vec![ev::<Counter>(0, CounterOp::Inc, 1, 5, 2)];
        assert_eq!(
            check_linearizable(&Counter, &h),
            Err(LinearizeError::BadInterval { index: 0 })
        );
    }

    #[test]
    fn empty_history_is_trivially_linearizable() {
        let h: Vec<HistoryEvent<Counter>> = Vec::new();
        assert_eq!(check_linearizable(&Counter, &h), Ok(vec![]));
    }

    #[test]
    fn pending_completion_ambiguity_resolves_both_ways() {
        // A Get overlapping an Inc may observe either side of it; the
        // checker must accept both resolutions of the ambiguity…
        let before = vec![
            ev::<Counter>(0, CounterOp::Inc, 1, 0, 10),
            ev::<Counter>(1, CounterOp::Get, 0, 0, 10),
        ];
        assert_eq!(check_linearizable(&Counter, &before), Ok(vec![1, 0]));
        let after = vec![
            ev::<Counter>(0, CounterOp::Inc, 1, 0, 10),
            ev::<Counter>(1, CounterOp::Get, 1, 0, 10),
        ];
        assert_eq!(check_linearizable(&Counter, &after), Ok(vec![0, 1]));
        // …but a response consistent with neither is a witness against.
        let neither = vec![
            ev::<Counter>(0, CounterOp::Inc, 1, 0, 10),
            ev::<Counter>(1, CounterOp::Get, 2, 0, 10),
        ];
        assert_eq!(
            check_linearizable(&Counter, &neither),
            Err(LinearizeError::NotLinearizable)
        );
    }

    #[test]
    fn adversarial_witness_forces_backtracking() {
        // All three ops are concurrent; a greedy left-to-right choice
        // (push 1 first) dead-ends because the pop saw 2 on top with 1
        // still below — the checker must backtrack to push-2-first.
        let h = vec![
            ev::<Stack>(0, StackOp::Push(1), StackResp::Pushed, 0, 10),
            ev::<Stack>(1, StackOp::Push(2), StackResp::Pushed, 0, 10),
            ev::<Stack>(2, StackOp::Pop, StackResp::Popped(Some(1)), 0, 10),
        ];
        let order = check_linearizable(&Stack, &h).expect("linearizable");
        // The DFS tries push1 then push2 first, hits the dead end (top
        // is 2, pop saw 1), and must back out of push2 before the pop.
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn wide_concurrent_rejection_terminates() {
        // Six concurrent increments with a duplicated rank: no order can
        // replay them, and the memoized dead-end set must keep the
        // factorial search from blowing up.
        let h: Vec<HistoryEvent<Counter>> = (0..6)
            .map(|i| ev::<Counter>(i, CounterOp::Inc, [1, 2, 3, 3, 5, 6][i], 0, 100))
            .collect();
        assert_eq!(
            check_linearizable(&Counter, &h),
            Err(LinearizeError::NotLinearizable)
        );
    }

    #[test]
    fn non_linearizable_witness_rejected_despite_partial_orders() {
        // Two sequential phases: phase one commits rank 1 to p0; in phase
        // two a Get claims to still see 0. Any linearization putting the
        // Get first violates real time ⇒ rejected.
        let h = vec![
            ev::<Counter>(0, CounterOp::Inc, 1, 0, 1),
            ev::<Counter>(1, CounterOp::Get, 0, 5, 6),
        ];
        assert_eq!(
            check_linearizable(&Counter, &h),
            Err(LinearizeError::NotLinearizable)
        );
    }
}
