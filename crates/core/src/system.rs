//! The high-level system builder: any object type, any schedule, full
//! TBWF stack (Ω∆ + query-abortable object + Figure 7 workers).

use parking_lot::Mutex;
use std::sync::Arc;
use tbwf_omega::harness::install_omega;
use tbwf_omega::{OmegaHandles, OmegaKind};
use tbwf_registers::{AbortPolicy, EffectPolicy, OpLog, RegisterFactory, RegisterFactoryConfig};
use tbwf_sim::{Control, Env, ProcId, RunConfig, RunReport, SimBuilder, StepCtx, Stepper};
use tbwf_universal::qa::{QaObject, QaSession};
use tbwf_universal::tbwf::TbwfCall;
use tbwf_universal::ObjectType;

/// Observation key: completed-operation count of a worker.
pub const OBS_COMPLETED: &str = "completed";

/// The operation script of one process.
pub enum Workload<T: ObjectType> {
    /// Perform exactly these operations, in order, then stop.
    Script(Vec<T::Op>),
    /// Perform the operation `count` times, then stop.
    Repeat(T::Op, u64),
    /// Perform the operation over and over until the run ends.
    Unlimited(T::Op),
    /// Participate in the system (run Ω∆ etc.) but perform no operations.
    Idle,
}

impl<T: ObjectType> Clone for Workload<T> {
    fn clone(&self) -> Self {
        match self {
            Workload::Script(ops) => Workload::Script(ops.clone()),
            Workload::Repeat(op, k) => Workload::Repeat(op.clone(), *k),
            Workload::Unlimited(op) => Workload::Unlimited(op.clone()),
            Workload::Idle => Workload::Idle,
        }
    }
}

impl<T: ObjectType> Workload<T> {
    fn op_at(&self, i: u64) -> Option<T::Op> {
        match self {
            Workload::Script(ops) => ops.get(i as usize).cloned(),
            Workload::Repeat(op, k) => (i < *k).then(|| op.clone()),
            Workload::Unlimited(op) => Some(op.clone()),
            Workload::Idle => None,
        }
    }
}

/// One completed operation: its real-time interval, what it was, what it
/// got.
#[derive(Debug)]
pub struct OpResult<T: ObjectType> {
    /// Global time at which the operation was invoked.
    pub invoked: u64,
    /// Global time at which the operation completed.
    pub time: u64,
    /// The operation.
    pub op: T::Op,
    /// Its response.
    pub resp: T::Resp,
}

impl<T: ObjectType> Clone for OpResult<T> {
    fn clone(&self) -> Self {
        OpResult {
            invoked: self.invoked,
            time: self.time,
            op: self.op.clone(),
            resp: self.resp.clone(),
        }
    }
}

/// The outcome of a [`TbwfSystemBuilder::run`].
pub struct TbwfRun<T: ObjectType> {
    /// The simulation report (trace, crashes, task outcomes).
    pub report: RunReport,
    /// Per-process completed operations, in completion order.
    pub results: Vec<Vec<OpResult<T>>>,
    /// Per-process completed-operation counts.
    pub completed: Vec<u64>,
    /// The shared-register operation log.
    pub log: Arc<OpLog>,
}

impl<T: ObjectType> TbwfRun<T> {
    /// All results across processes, sorted by completion time.
    pub fn merged_results(&self) -> Vec<(ProcId, OpResult<T>)> {
        let mut all: Vec<(ProcId, OpResult<T>)> = self
            .results
            .iter()
            .enumerate()
            .flat_map(|(p, rs)| rs.iter().cloned().map(move |r| (ProcId(p), r)))
            .collect();
        all.sort_by_key(|(_, r)| r.time);
        all
    }
}

/// The scripted Figure 7 worker in poll form: one [`TbwfCall`] per
/// workload entry, results pushed into the shared sink as they complete.
struct SystemWorker<T: ObjectType> {
    p: usize,
    workload: Workload<T>,
    session: QaSession<T>,
    omega: OmegaHandles,
    sink: Arc<Mutex<Vec<Vec<OpResult<T>>>>>,
    i: u64,
    started: bool,
    invoked: u64,
    cur_op: Option<T::Op>,
    call: Option<TbwfCall<T>>,
}

impl<T: ObjectType> SystemWorker<T> {
    /// Arms the next scripted operation, or reports the workload done.
    fn next_op(&mut self, env: &dyn Env) -> Control {
        match self.workload.op_at(self.i) {
            None => {
                self.call = None;
                Control::Done
            }
            Some(op) => {
                self.invoked = env.now();
                self.cur_op = Some(op.clone());
                self.call = Some(TbwfCall::new(op, true));
                Control::Yield
            }
        }
    }
}

impl<T: ObjectType> Stepper for SystemWorker<T> {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control {
        let env = ctx.env();
        if !self.started {
            self.started = true;
            env.observe(OBS_COMPLETED, 0, 0);
            if self.next_op(env) == Control::Done {
                return Control::Done;
            }
        }
        loop {
            let call = self.call.as_mut().expect("worker has a call in flight");
            match call.poll(env, &mut self.session, &self.omega) {
                None => return Control::Yield,
                Some(resp) => {
                    self.i += 1;
                    self.sink.lock()[self.p].push(OpResult {
                        invoked: self.invoked,
                        time: env.now(),
                        op: self.cur_op.take().expect("current op recorded"),
                        resp,
                    });
                    env.observe(OBS_COMPLETED, 0, self.i as i64);
                    // The next call's first segment runs in the segment
                    // that completed this one, like the blocking loop.
                    if self.next_op(env) == Control::Done {
                        return Control::Done;
                    }
                }
            }
        }
    }
}

/// Builder for a complete TBWF system over an arbitrary object type.
///
/// See the crate-level example. Defaults: 2 processes, atomic-register
/// Ω∆, default register policies, idle workloads.
pub struct TbwfSystemBuilder<T: ObjectType> {
    ty: T,
    n: usize,
    omega: OmegaKind,
    factory: RegisterFactoryConfig,
    workloads: Vec<Workload<T>>,
}

impl<T: ObjectType> TbwfSystemBuilder<T> {
    /// Starts a builder for the given object type instance.
    pub fn new(ty: T) -> Self {
        TbwfSystemBuilder {
            ty,
            n: 2,
            omega: OmegaKind::Atomic,
            factory: RegisterFactoryConfig::default(),
            workloads: vec![Workload::Idle, Workload::Idle],
        }
    }

    /// Sets the number of processes (resets workloads to idle).
    #[must_use]
    pub fn processes(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one process");
        self.n = n;
        self.workloads = (0..n).map(|_| Workload::Idle).collect();
        self
    }

    /// Selects the Ω∆ implementation (atomic or abortable registers).
    #[must_use]
    pub fn omega(mut self, kind: OmegaKind) -> Self {
        self.omega = kind;
        self
    }

    /// Sets the register-backend seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.factory.seed = seed;
        self
    }

    /// Sets the abortable-register adversary policies.
    #[must_use]
    pub fn register_policy(mut self, abort: AbortPolicy, effect: EffectPolicy) -> Self {
        self.factory.abort_policy = abort;
        self.factory.effect_policy = effect;
        self
    }

    /// Sets the workload of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ n`; call [`TbwfSystemBuilder::processes`] first.
    #[must_use]
    pub fn workload(mut self, p: usize, w: Workload<T>) -> Self {
        assert!(
            p < self.n,
            "workload({p}, …) but the system has {} processes; call processes() first",
            self.n
        );
        self.workloads[p] = w;
        self
    }

    /// Sets the same workload for every process.
    #[must_use]
    pub fn workload_all(mut self, w: Workload<T>) -> Self {
        self.workloads = (0..self.n).map(|_| w.clone()).collect();
        self
    }

    /// Builds the system and executes the run.
    pub fn run(self, run: RunConfig) -> TbwfRun<T> {
        self.run_wired(run, |_, _| {})
    }

    /// Like [`TbwfSystemBuilder::run`], but calls `wire` with the
    /// register factory and the run configuration after the system is
    /// assembled and before the run starts.
    ///
    /// This is the fault-injection hook: the factory is created
    /// internally by the builder, so a nemesis that wants to register
    /// the factory's policy dial or in-flight gauges (see
    /// [`tbwf_registers::RegisterFactory::policy_dial`] and
    /// [`tbwf_registers::RegisterFactory::inflight_gauge`]) has no other
    /// way to reach them.
    pub fn run_wired(
        self,
        run: RunConfig,
        wire: impl FnOnce(&RegisterFactory, &mut RunConfig),
    ) -> TbwfRun<T> {
        let mut run = run;
        let factory = Arc::new(RegisterFactory::new(self.factory));
        wire(&factory, &mut run);
        let mut b = SimBuilder::new();
        for p in 0..self.n {
            b.add_process(&format!("p{p}"));
        }
        let omega_handles = install_omega(&mut b, &factory, self.n, self.omega);
        let obj = QaObject::new(self.ty, self.n, Arc::clone(&factory));
        let sink: Arc<Mutex<Vec<Vec<OpResult<T>>>>> =
            Arc::new(Mutex::new((0..self.n).map(|_| Vec::new()).collect()));
        for (p, workload) in self.workloads.into_iter().enumerate() {
            if matches!(workload, Workload::Idle) {
                continue;
            }
            let worker = SystemWorker {
                p,
                workload,
                session: obj.session(ProcId(p)),
                omega: omega_handles[p].clone(),
                sink: Arc::clone(&sink),
                i: 0,
                started: false,
                invoked: 0,
                cur_op: None,
                call: None,
            };
            b.add_stepper(ProcId(p), "worker", Box::new(worker));
        }
        let report = b.build().run(run);
        let results = std::mem::take(&mut *sink.lock());
        let completed = results.iter().map(|r| r.len() as u64).collect();
        TbwfRun {
            report,
            results,
            completed,
            log: factory.log(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Stack, StackOp, StackResp};
    use tbwf_sim::schedule::RoundRobin;

    #[test]
    fn stack_pushes_and_pops_linearize() {
        let run = TbwfSystemBuilder::new(Stack)
            .processes(2)
            .seed(7)
            .workload(
                0,
                Workload::Script(vec![StackOp::Push(10), StackOp::Push(20)]),
            )
            .workload(1, Workload::Script(vec![StackOp::Push(30)]))
            .run(RunConfig::new(120_000, RoundRobin::new()));
        run.report.assert_no_panics();
        assert_eq!(run.completed, vec![2, 1]);
        for r in run.results.iter().flatten() {
            assert_eq!(r.resp, StackResp::Pushed);
        }
    }

    #[test]
    fn idle_processes_do_nothing_but_participate() {
        let run = TbwfSystemBuilder::new(Stack)
            .processes(3)
            .workload(0, Workload::Repeat(StackOp::Push(1), 2))
            .run(RunConfig::new(80_000, RoundRobin::new()));
        run.report.assert_no_panics();
        assert_eq!(run.completed, vec![2, 0, 0]);
    }

    #[test]
    fn workload_op_at_semantics() {
        let script: Workload<Stack> = Workload::Script(vec![StackOp::Push(1), StackOp::Pop]);
        assert_eq!(script.op_at(0), Some(StackOp::Push(1)));
        assert_eq!(script.op_at(1), Some(StackOp::Pop));
        assert_eq!(script.op_at(2), None);

        let repeat: Workload<Stack> = Workload::Repeat(StackOp::Pop, 2);
        assert_eq!(repeat.op_at(1), Some(StackOp::Pop));
        assert_eq!(repeat.op_at(2), None);

        let unlimited: Workload<Stack> = Workload::Unlimited(StackOp::Pop);
        assert_eq!(unlimited.op_at(1_000_000), Some(StackOp::Pop));

        let idle: Workload<Stack> = Workload::Idle;
        assert_eq!(idle.op_at(0), None);
    }

    #[test]
    #[should_panic(expected = "call processes() first")]
    fn workload_index_out_of_range_names_the_fix() {
        let _ = TbwfSystemBuilder::new(Stack)
            .processes(2)
            .workload(5, Workload::Idle);
    }

    #[test]
    fn op_results_carry_intervals() {
        let run = TbwfSystemBuilder::new(Stack)
            .processes(2)
            .workload(0, Workload::Repeat(StackOp::Push(1), 2))
            .run(RunConfig::new(100_000, RoundRobin::new()));
        run.report.assert_no_panics();
        for r in run.results.iter().flatten() {
            assert!(
                r.invoked <= r.time,
                "interval inverted: {} > {}",
                r.invoked,
                r.time
            );
        }
        // Per-process results are in completion order.
        for rs in &run.results {
            for w in rs.windows(2) {
                assert!(w[0].time <= w[1].time);
            }
        }
    }

    #[test]
    fn merged_results_are_time_sorted() {
        let run = TbwfSystemBuilder::new(Stack)
            .processes(2)
            .workload_all(Workload::Repeat(StackOp::Push(1), 2))
            .run(RunConfig::new(150_000, RoundRobin::new()));
        run.report.assert_no_panics();
        let merged = run.merged_results();
        for w in merged.windows(2) {
            assert!(w[0].1.time <= w[1].1.time);
        }
        assert_eq!(merged.len() as u64, run.completed.iter().sum::<u64>());
    }
}
