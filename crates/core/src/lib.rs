//! **tbwf** — timeliness-based wait-freedom: gracefully degrading shared
//! objects.
//!
//! This is the umbrella crate of a full reproduction of
//! *"Timeliness-Based Wait-Freedom: A Gracefully Degrading Progress
//! Condition"* (Marcos K. Aguilera and Sam Toueg, PODC 2008). It provides:
//!
//! * a library of sequential [`types`] (counter, fetch-and-add, stack,
//!   FIFO queue, double-ended queue, register file, CAS object) usable
//!   with every universal construction in the workspace;
//! * the high-level [`system`] builder: assemble an n-process simulated
//!   system running any object type under the paper's TBWF construction
//!   (Ω∆ + query-abortable object, Figure 7) or one of the baselines,
//!   execute scripted workloads under a chosen partial-synchrony
//!   schedule, and collect per-process results;
//! * a [`prelude`] re-exporting the commonly used items from all the
//!   member crates.
//!
//! # Quick example
//!
//! ```
//! use tbwf::prelude::*;
//!
//! // Three processes each push then pop on a TBWF stack, round-robin
//! // schedule (everyone timely): every timely process completes all its
//! // operations — wait-freedom in the fully synchronous regime.
//! let run = TbwfSystemBuilder::new(Stack)
//!     .processes(3)
//!     .workload_all(Workload::Script(vec![
//!         StackOp::Push(7),
//!         StackOp::Pop,
//!     ]))
//!     .run(RunConfig::new(150_000, RoundRobin::new()));
//! run.report.assert_no_panics();
//! assert_eq!(run.completed, vec![2, 2, 2]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod linearize;
pub mod native;
pub mod prelude;
pub mod system;
pub mod types;

pub use system::{OpResult, TbwfRun, TbwfSystemBuilder, Workload};
pub use types::{
    CasObject, CasOp, CasResp, Consensus, ConsensusOp, ConsensusResp, Deque, DequeOp, DequeResp,
    FetchAdd, FetchAddOp, Queue, QueueOp, QueueResp, RegFile, RegFileOp, RegFileResp, Snapshot,
    SnapshotOp, SnapshotResp, Stack, StackOp, StackResp,
};
