//! One-stop imports for users of the TBWF workspace.

pub use crate::linearize::{assert_run_linearizable, check_linearizable, HistoryEvent};
pub use crate::system::{OpResult, TbwfRun, TbwfSystemBuilder, Workload, OBS_COMPLETED};
pub use crate::types::{
    CasObject, CasOp, CasResp, Consensus, ConsensusOp, ConsensusResp, Deque, DequeOp, DequeResp,
    FetchAdd, FetchAddOp, Queue, QueueOp, QueueResp, RegFile, RegFileOp, RegFileResp, Snapshot,
    SnapshotOp, SnapshotResp, Stack, StackOp, StackResp,
};

pub use tbwf_sim::schedule::{
    Flicker, PartiallySynchronous, RoundRobin, Schedule, Scripted, SeededRandom, SoloAfter,
    Weighted,
};
pub use tbwf_sim::{Env, Local, ProcId, RunConfig, RunReport, SimBuilder, SimResult};

pub use tbwf_registers::{
    AbortPolicy, AbortableRegister, AtomicRegister, EffectPolicy, ReadOutcome, RegisterFactory,
    RegisterFactoryConfig, WriteOutcome,
};

pub use tbwf_monitor::{activity_monitor, MonitorMesh, Status};

pub use tbwf_omega::{
    check_spec, run_omega_system, CandidateScript, OmegaHandles, OmegaKind, OmegaRunData,
    OmegaSystemConfig, SpecParams,
};

pub use tbwf_universal::baselines::{CasUniversal, FlmsBoost, FlmsShared};
pub use tbwf_universal::harness::{run_counter_workload, Engine, WorkloadConfig};
pub use tbwf_universal::object::{Counter, CounterOp};
pub use tbwf_universal::tbwf::invoke_tbwf;
pub use tbwf_universal::{ObjectType, Outcome, QaObject, QaSession};
