//! Property tests: the query-abortable universal construction under
//! random sequential interleavings of several sessions.
//!
//! With `FreeRunEnv` there is no genuine concurrency, so every register
//! operation is solo and the Figure 8 driver must complete each operation
//! in a bounded number of attempts; across sessions the decided log must
//! be a single consistent sequential history.

use proptest::prelude::*;
use std::sync::Arc;
use tbwf_registers::{RegisterFactory, RegisterFactoryConfig};
use tbwf_sim::{FreeRunEnv, ProcId};
use tbwf_universal::object::{Counter, CounterOp};
use tbwf_universal::{Outcome, QaObject, QaSession};

fn complete(session: &mut QaSession<Counter>, env: &FreeRunEnv, op: CounterOp) -> i64 {
    let mut query_next = false;
    for _ in 0..200 {
        let out = if query_next {
            session.query(env).unwrap()
        } else {
            session.apply(env, op).unwrap()
        };
        match out {
            Outcome::Done(v) => return v,
            Outcome::Bot => query_next = true,
            Outcome::NoEffect => query_next = false,
        }
    }
    panic!("operation did not complete in 200 attempts (solo!)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random alternation of three sessions performing increments: all
    /// responses are distinct and the union is exactly 1..=total.
    #[test]
    fn interleaved_increments_linearize(script in prop::collection::vec(0usize..3, 1..40), seed in 0u64..100) {
        let factory = Arc::new(RegisterFactory::new(RegisterFactoryConfig { seed, ..Default::default() }));
        let obj = QaObject::new(Counter, 3, factory);
        let envs: Vec<FreeRunEnv> = (0..3).map(|p| FreeRunEnv::new(ProcId(p))).collect();
        let mut sessions: Vec<QaSession<Counter>> =
            (0..3).map(|p| obj.session(ProcId(p))).collect();
        let mut responses = Vec::new();
        for &p in &script {
            responses.push(complete(&mut sessions[p], &envs[p], CounterOp::Inc));
        }
        let mut sorted = responses.clone();
        sorted.sort_unstable();
        let expect: Vec<i64> = (1..=script.len() as i64).collect();
        prop_assert_eq!(sorted, expect, "responses {:?}", responses);
    }

    /// Gets interleaved with incs: every Get returns the number of incs
    /// decided before it (session-local monotone view).
    #[test]
    fn gets_are_monotone(script in prop::collection::vec((0usize..3, prop::bool::ANY), 1..40)) {
        let factory = Arc::new(RegisterFactory::new(RegisterFactoryConfig::default()));
        let obj = QaObject::new(Counter, 3, factory);
        let envs: Vec<FreeRunEnv> = (0..3).map(|p| FreeRunEnv::new(ProcId(p))).collect();
        let mut sessions: Vec<QaSession<Counter>> =
            (0..3).map(|p| obj.session(ProcId(p))).collect();
        let mut incs_so_far = 0i64;
        for &(p, is_inc) in &script {
            if is_inc {
                let v = complete(&mut sessions[p], &envs[p], CounterOp::Inc);
                incs_so_far += 1;
                prop_assert_eq!(v, incs_so_far);
            } else {
                let v = complete(&mut sessions[p], &envs[p], CounterOp::Get);
                prop_assert_eq!(v, incs_so_far, "Get saw a stale or future value");
            }
        }
    }

    /// All sessions converge to the same replica after replaying.
    #[test]
    fn replicas_agree_after_full_replay(script in prop::collection::vec(0usize..2, 1..30)) {
        let factory = Arc::new(RegisterFactory::new(RegisterFactoryConfig::default()));
        let obj = QaObject::new(Counter, 2, factory);
        let envs: Vec<FreeRunEnv> = (0..2).map(|p| FreeRunEnv::new(ProcId(p))).collect();
        let mut sessions: Vec<QaSession<Counter>> =
            (0..2).map(|p| obj.session(ProcId(p))).collect();
        for &p in &script {
            complete(&mut sessions[p], &envs[p], CounterOp::Inc);
        }
        // Bring both up to date with a Get each. (Each Get occupies a log
        // slot itself, so the two sessions' replay cursors may differ by
        // the trailing Gets — but the counter value must agree.)
        for p in 0..2 {
            let v = complete(&mut sessions[p], &envs[p], CounterOp::Get);
            prop_assert_eq!(v, script.len() as i64);
        }
        prop_assert_eq!(*sessions[0].replica(), script.len() as i64);
        prop_assert_eq!(*sessions[0].replica(), *sessions[1].replica());
        let (a, b) = (sessions[0].decided_len(), sessions[1].decided_len());
        prop_assert!(a.abs_diff(b) <= 1, "cursors too far apart: {a} vs {b}");
    }
}
