//! A wait-free **query-abortable universal construction** from abortable
//! registers.
//!
//! This is the workspace's substitute for the universal construction of
//! reference \[2\] of the paper (whose details are in a different PODC'07
//! paper). It provides, for any [`ObjectType`] `T`, an object `O_QA` of
//! the *query-abortable counterpart* type `T_QA`:
//!
//! * **wait-free** — every `apply`/`query` invocation returns after a
//!   finite number of the caller's own steps (possibly `⊥`);
//! * **abortable** — `⊥` is returned only when the invocation was
//!   concurrent with other work (some register operation aborted, or the
//!   consensus round was contended); an invocation that runs while no
//!   other process takes steps *succeeds or permanently advances*, and
//!   solo invocations eventually succeed — the property the elected
//!   leader of Figure 7 relies on;
//! * **linearizable with fate reporting** — effective operations form a
//!   single total order (the decided-slot log) and `query` reports, for
//!   the caller's last operation: the response (if it took effect), `F`
//!   (if it can never take effect), or `⊥` (undetermined).
//!
//! # Construction
//!
//! The object is a replicated log of *slots*, each decided by a
//! round-based adopt-commit agreement over abortable registers:
//!
//! * slot `s` has a decision register `D[s]` and rounds `r = 0, 1, …`,
//!   each with per-process proposal registers `A[s][r][q]` and
//!   adopt/commit registers `B[s][r][q]` (single-writer, multi-reader);
//! * a process proposes its pending entry `(p, seq, op)` — or a value
//!   adopted from an earlier round — one round per invocation: write
//!   `A[s][r][p]`; read all `A`; write `B[s][r][p] = (commit?, v)` where
//!   `commit?` holds iff every written `A` equals the own proposal; read
//!   all `B`; **commit** `w` iff every written `B` is `(commit, w)`;
//! * processes participate in the rounds of a slot strictly in order
//!   (memoizing their `A`/`B` values so retries after aborts are
//!   idempotent), which gives the adopt-commit chain property: once `w`
//!   is committed at round `r`, every process that reaches a later round
//!   carries `w`, so a slot never decides two values;
//! * an aborted write "may or may not take effect"; safety is preserved
//!   because retried writes rewrite the *same* memoized value, and a
//!   process records which slots it *exposed* its entry to (any write
//!   attempt counts): `query` answers `F` only when every exposed slot is
//!   decided against the entry — after which the entry can never be
//!   decided (its registers exist only in closed slots).
//!
//! Sessions replay the decided prefix into a local replica, maintaining a
//! `lastOf[q] = (seq, resp)` table from which both responses and `query`
//! answers are read. A duplicate-suppression guard (`seq` monotone per
//! proposer) makes re-decided ghost entries harmless in depth.

use crate::object::{ObjectType, Outcome};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use tbwf_registers::{OpToken, ReadOutcome, RegisterFactory, SharedAbortable};
use tbwf_sim::{Env, ProcId, SimResult};

/// A log entry: one operation instance of one process.
#[derive(Clone, PartialEq, Debug)]
pub struct Entry<Op> {
    /// The proposing process.
    pub proposer: ProcId,
    /// The proposer's sequence number for this operation.
    pub seq: u64,
    /// The operation.
    pub op: Op,
}

type BVal<Op> = (bool, Entry<Op>);

struct RoundRegs<Op> {
    a: Vec<SharedAbortable<Option<Entry<Op>>>>,
    b: Vec<SharedAbortable<Option<BVal<Op>>>>,
}

struct SlotRegs<Op> {
    d: SharedAbortable<Option<Entry<Op>>>,
    rounds: Mutex<Vec<Arc<RoundRegs<Op>>>>,
}

/// The shared part of the query-abortable object: its register space.
///
/// ```
/// use std::sync::Arc;
/// use tbwf_registers::{RegisterFactory, RegisterFactoryConfig};
/// use tbwf_sim::{FreeRunEnv, ProcId};
/// use tbwf_universal::object::{Counter, CounterOp};
/// use tbwf_universal::{Outcome, QaObject};
///
/// let factory = Arc::new(RegisterFactory::new(RegisterFactoryConfig::default()));
/// let obj = QaObject::new(Counter, 2, factory);
/// let mut session = obj.session(ProcId(0));
/// let env = FreeRunEnv::new(ProcId(0));
/// // Solo, fresh slot: the very first attempt succeeds.
/// assert_eq!(session.apply(&env, CounterOp::Inc)?, Outcome::Done(1));
/// # Ok::<(), tbwf_sim::Halted>(())
/// ```
pub struct QaObject<T: ObjectType> {
    ty: Arc<T>,
    n: usize,
    factory: Arc<RegisterFactory>,
    slots: Mutex<Vec<Arc<SlotRegs<T::Op>>>>,
}

impl<T: ObjectType> QaObject<T> {
    /// Creates the shared object for `n` processes, allocating registers
    /// lazily from `factory`.
    pub fn new(ty: T, n: usize, factory: Arc<RegisterFactory>) -> Arc<Self> {
        Arc::new(QaObject {
            ty: Arc::new(ty),
            n,
            factory,
            slots: Mutex::new(Vec::new()),
        })
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The sequential type instance.
    pub fn ty(&self) -> &T {
        &self.ty
    }

    fn slot(&self, s: usize) -> Arc<SlotRegs<T::Op>> {
        let mut slots = self.slots.lock();
        while slots.len() <= s {
            let i = slots.len();
            slots.push(Arc::new(SlotRegs {
                d: self.factory.abortable(&format!("D[{i}]"), None),
                rounds: Mutex::new(Vec::new()),
            }));
        }
        Arc::clone(&slots[s])
    }

    fn round(&self, slot_idx: usize, slot: &SlotRegs<T::Op>, r: usize) -> Arc<RoundRegs<T::Op>> {
        let mut rounds = slot.rounds.lock();
        while rounds.len() <= r {
            let ri = rounds.len();
            let a = (0..self.n)
                .map(|q| {
                    self.factory.abortable_swmr(
                        &format!("A[{slot_idx}][{ri}][{q}]"),
                        None,
                        ProcId(q),
                    )
                })
                .collect();
            let b = (0..self.n)
                .map(|q| {
                    self.factory.abortable_swmr(
                        &format!("B[{slot_idx}][{ri}][{q}]"),
                        None,
                        ProcId(q),
                    )
                })
                .collect();
            rounds.push(Arc::new(RoundRegs { a, b }));
        }
        Arc::clone(&rounds[r])
    }

    /// Opens a session for process `p`. Each process must use exactly one
    /// session for the lifetime of the object.
    pub fn session(self: &Arc<Self>, p: ProcId) -> QaSession<T> {
        QaSession {
            obj: Arc::clone(self),
            p,
            replica: self.ty.initial(),
            last_of: vec![None; self.n],
            cursor: 0,
            my_seq: 0,
            pending: None,
            cur_slot: 0,
            cur_round: 0,
            adopted: None,
            a_val: None,
            a_written: false,
            b_val: None,
            b_written: false,
            known_decided: BTreeMap::new(),
            last_fate: None,
            inflight: None,
            stats: SessionStats::default(),
        }
    }
}

struct PendingOp<Op> {
    seq: u64,
    op: Op,
    /// Slots in which the entry was (possibly) written to an `A` register.
    exposed: BTreeSet<usize>,
}

/// Counters describing one session's activity (for experiments).
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// `apply` invocations.
    pub applies: u64,
    /// `query` invocations.
    pub queries: u64,
    /// Invocations that returned `Done`.
    pub dones: u64,
    /// Consensus rounds in which this session committed a value.
    pub commits: u64,
}

/// One process's handle on a [`QaObject`]: its replica, pending operation
/// and consensus-round state.
pub struct QaSession<T: ObjectType> {
    obj: Arc<QaObject<T>>,
    p: ProcId,
    replica: T::State,
    last_of: Vec<Option<(u64, T::Resp)>>,
    /// Next slot to replay (first slot not yet applied to the replica).
    cursor: usize,
    my_seq: u64,
    pending: Option<PendingOp<T::Op>>,
    // --- consensus state for the slot currently being agreed on ---
    cur_slot: usize,
    cur_round: usize,
    adopted: Option<Entry<T::Op>>,
    a_val: Option<Entry<T::Op>>,
    a_written: bool,
    b_val: Option<BVal<T::Op>>,
    b_written: bool,
    /// Commits we performed whose `D` write may not have taken effect.
    known_decided: BTreeMap<usize, Entry<T::Op>>,
    /// The fate of the last resolved operation, so `query` keeps
    /// answering for it after resolution (footnote 3: query reports the
    /// fate of the last non-query operation).
    last_fate: Option<Outcome<T::Resp>>,
    /// The in-flight invocation, if any (poll form).
    inflight: Option<OpProgress<T>>,
    stats: SessionStats,
}

/// How an adopt-commit round ended.
enum RoundStep {
    /// A register operation aborted; the round will resume next call.
    Interrupted,
    /// The round completed without commit; we advanced to the next round.
    Advanced,
    /// The round committed a value (the decision for `cur_slot`).
    Committed,
}

/// Which invocation the in-flight state machine is running.
#[derive(Clone, Copy, PartialEq, Eq)]
enum InvKind {
    Apply,
    Query,
}

/// Where an in-flight invocation is parked between segments: the
/// register operation invoked at the end of the previous segment.
enum InvStage {
    /// No register operation in flight yet (first segment).
    Start,
    /// `D[cursor]` read during catch-up.
    CatchUpRead(OpToken),
    /// The own `A` proposal write.
    AWrite(OpToken),
    /// The read of `A[q]`.
    ARead { q: usize, tok: OpToken },
    /// The own `B` adopt/commit write.
    BWrite(OpToken),
    /// The read of `B[q]`.
    BRead { q: usize, tok: OpToken },
    /// The best-effort decision persist to `D[cur_slot]`.
    DWrite(OpToken),
}

/// Per-invocation scratch state of the poll machine.
struct OpProgress<T: ObjectType> {
    kind: InvKind,
    stage: InvStage,
    /// Running the post-commit catch-up (the second one of apply/query)?
    after_commit: bool,
    a_view: Vec<Option<Entry<T::Op>>>,
    b_view: Vec<BVal<T::Op>>,
}

impl<T: ObjectType> OpProgress<T> {
    fn new(kind: InvKind) -> Self {
        OpProgress {
            kind,
            stage: InvStage::Start,
            after_commit: false,
            a_view: Vec::new(),
            b_view: Vec::new(),
        }
    }
}

impl<T: ObjectType> QaSession<T> {
    /// The owning process.
    pub fn pid(&self) -> ProcId {
        self.p
    }

    /// Session statistics.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// A read-only view of the replica (the state after all decided
    /// operations this session has replayed).
    pub fn replica(&self) -> &T::State {
        &self.replica
    }

    /// Number of decided slots this session has replayed.
    pub fn decided_len(&self) -> usize {
        self.cursor
    }

    fn reset_round_state(&mut self) {
        self.a_val = None;
        self.a_written = false;
        self.b_val = None;
        self.b_written = false;
    }

    fn reset_slot_state(&mut self, s: usize) {
        self.cur_slot = s;
        self.cur_round = 0;
        self.adopted = None;
        self.reset_round_state();
    }

    fn apply_decided(&mut self, e: Entry<T::Op>) {
        let dup = self.last_of[e.proposer.0]
            .as_ref()
            .is_some_and(|(seq, _)| *seq >= e.seq);
        if !dup {
            let resp = self.obj.ty.apply(&mut self.replica, &e.op);
            self.last_of[e.proposer.0] = Some((e.seq, resp));
        }
        self.known_decided.remove(&self.cursor);
        self.cursor += 1;
        if self.cur_slot < self.cursor {
            self.reset_slot_state(self.cursor);
        }
    }

    fn check_resolved(&mut self) -> Option<Outcome<T::Resp>> {
        let pend = self.pending.as_ref()?;
        if let Some((seq, resp)) = &self.last_of[self.p.0] {
            if *seq == pend.seq {
                let r = resp.clone();
                self.pending = None;
                self.last_fate = Some(Outcome::Done(r.clone()));
                return Some(Outcome::Done(r));
            }
        }
        None
    }

    /// The round registers of the frontier slot/round (idempotent lookup,
    /// so each segment can re-fetch them).
    fn round_regs(&self) -> Arc<RoundRegs<T::Op>> {
        let slot = self.obj.slot(self.cur_slot);
        self.obj.round(self.cur_slot, &slot, self.cur_round)
    }

    fn stage(&mut self) -> &mut InvStage {
        &mut self.inflight.as_mut().expect("invocation in flight").stage
    }

    /// Starts (or resumes) the catch-up loop: replays `known_decided`
    /// slots locally, then invokes the `D` read of the frontier slot.
    fn catchup_enter(&mut self, env: &dyn Env) -> Option<Outcome<T::Resp>> {
        loop {
            let s = self.cursor;
            if let Some(e) = self.known_decided.get(&s).cloned() {
                self.apply_decided(e);
                continue;
            }
            let tok = self.obj.slot(s).d.invoke_read(env);
            *self.stage() = InvStage::CatchUpRead(tok);
            return None;
        }
    }

    /// Completes a catch-up `D` read and either continues the loop or
    /// falls through to the post-catch-up logic of the invocation.
    fn catchup_complete(&mut self, env: &dyn Env, tok: OpToken) -> Option<Outcome<T::Resp>> {
        match self.obj.slot(self.cursor).d.complete_read(env, tok) {
            ReadOutcome::Aborted => self.after_catchup(env, false),
            ReadOutcome::Value(None) => self.after_catchup(env, true),
            ReadOutcome::Value(Some(e)) => {
                self.apply_decided(e);
                self.catchup_enter(env)
            }
        }
    }

    /// The invocation code between catch-up and the consensus round:
    /// resolution checks, fate checks, and entry into `advance_round`.
    fn after_catchup(&mut self, env: &dyn Env, clean: bool) -> Option<Outcome<T::Resp>> {
        let fl = self.inflight.as_ref().expect("invocation in flight");
        let (kind, after_commit) = (fl.kind, fl.after_commit);
        if let Some(out) = self.check_resolved() {
            self.stats.dones += 1;
            return Some(out);
        }
        if kind == InvKind::Query {
            if !after_commit && self.pending.is_none() {
                // No pending operation: keep answering for the last
                // resolved one (its response if it took effect, F if it
                // did not).
                return Some(self.last_fate.clone().unwrap_or(Outcome::NoEffect));
            }
            if self.pending_dead() {
                self.pending = None;
                self.last_fate = Some(Outcome::NoEffect);
                return Some(Outcome::NoEffect);
            }
        }
        if after_commit || !clean {
            return Some(Outcome::Bot);
        }
        self.round_enter(env)
    }

    /// Starts (or resumes) one adopt-commit round at the frontier slot:
    /// memoizes the proposal and invokes the own `A` write (or, when the
    /// write is already done, the first `A` read).
    fn round_enter(&mut self, env: &dyn Env) -> Option<Outcome<T::Resp>> {
        // Choose (and memoize) the proposal for this round.
        if self.a_val.is_none() {
            let val = match &self.adopted {
                Some(w) => w.clone(),
                None => {
                    let pend = self
                        .pending
                        .as_ref()
                        .expect("proposing without a pending op");
                    Entry {
                        proposer: self.p,
                        seq: pend.seq,
                        op: pend.op.clone(),
                    }
                }
            };
            if val.proposer == self.p {
                if let Some(pend) = self.pending.as_mut() {
                    if pend.seq == val.seq {
                        // Any write attempt may take effect: record the
                        // exposure before the first attempt.
                        pend.exposed.insert(self.cur_slot);
                    }
                }
            }
            self.a_val = Some(val);
        }
        if !self.a_written {
            let aval = self.a_val.clone().expect("a_val set above");
            let tok = self.round_regs().a[self.p.0].invoke_write(env, Some(aval));
            *self.stage() = InvStage::AWrite(tok);
            return None;
        }
        self.a_read_enter(env, 0)
    }

    fn a_read_enter(&mut self, env: &dyn Env, q: usize) -> Option<Outcome<T::Resp>> {
        if q == 0 {
            self.inflight
                .as_mut()
                .expect("invocation in flight")
                .a_view
                .clear();
        }
        let tok = self.round_regs().a[q].invoke_read(env);
        *self.stage() = InvStage::ARead { q, tok };
        None
    }

    /// The local code between the `A` reads and the own `B` write.
    fn after_a_reads(&mut self, env: &dyn Env) -> Option<Outcome<T::Resp>> {
        if self.b_val.is_none() {
            let aval = self.a_val.clone().expect("a_val memoized");
            let fl = self.inflight.as_ref().expect("invocation in flight");
            let written: Vec<&Entry<T::Op>> = fl.a_view.iter().flatten().collect();
            let all_mine = written.iter().all(|e| **e == aval);
            let bval = if all_mine {
                (true, aval)
            } else {
                let w = written
                    .into_iter()
                    .min_by_key(|e| (e.proposer, e.seq))
                    .expect("own A value is visible")
                    .clone();
                (false, w)
            };
            self.b_val = Some(bval);
        }
        if !self.b_written {
            let bval = self.b_val.clone().expect("b_val set above");
            let tok = self.round_regs().b[self.p.0].invoke_write(env, Some(bval));
            *self.stage() = InvStage::BWrite(tok);
            return None;
        }
        self.b_read_enter(env, 0)
    }

    fn b_read_enter(&mut self, env: &dyn Env, q: usize) -> Option<Outcome<T::Resp>> {
        if q == 0 {
            self.inflight
                .as_mut()
                .expect("invocation in flight")
                .b_view
                .clear();
        }
        let tok = self.round_regs().b[q].invoke_read(env);
        *self.stage() = InvStage::BRead { q, tok };
        None
    }

    /// The commit/adopt decision after all `B` reads.
    fn after_b_reads(&mut self, env: &dyn Env) -> Option<Outcome<T::Resp>> {
        let committed = {
            let fl = self.inflight.as_ref().expect("invocation in flight");
            debug_assert!(!fl.b_view.is_empty(), "own B value is visible");
            let first = &fl.b_view[0].1;
            if fl.b_view.iter().all(|(c, w)| *c && w == first) {
                Ok(first.clone())
            } else if let Some((_, w)) = fl.b_view.iter().find(|(c, _)| *c) {
                Err(w.clone())
            } else {
                Err(fl
                    .b_view
                    .iter()
                    .map(|(_, w)| w)
                    .min_by_key(|e| (e.proposer, e.seq))
                    .expect("non-empty B view")
                    .clone())
            }
        };
        match committed {
            Ok(w) => {
                // Commit: the decision for cur_slot is `w`.
                self.stats.commits += 1;
                self.known_decided.insert(self.cur_slot, w.clone());
                // Best-effort persist; an abort is fine (we know the
                // decision, and others re-derive it through the round
                // chain).
                let tok = self.obj.slot(self.cur_slot).d.invoke_write(env, Some(w));
                *self.stage() = InvStage::DWrite(tok);
                None
            }
            Err(w) => {
                self.adopted = Some(w);
                self.cur_round += 1;
                self.reset_round_state();
                self.round_done(env, RoundStep::Advanced)
            }
        }
    }

    /// The invocation code after `advance_round`: a committed round is
    /// followed by a second catch-up; anything else answers `⊥`.
    fn round_done(&mut self, env: &dyn Env, step: RoundStep) -> Option<Outcome<T::Resp>> {
        match step {
            RoundStep::Committed => {
                self.inflight
                    .as_mut()
                    .expect("invocation in flight")
                    .after_commit = true;
                self.catchup_enter(env)
            }
            RoundStep::Advanced | RoundStep::Interrupted => Some(Outcome::Bot),
        }
    }

    /// Starts an `apply` invocation in poll form (see
    /// [`QaSession::poll_op`]). Performs the same bookkeeping as the
    /// first segment of the blocking [`QaSession::apply`].
    ///
    /// # Panics
    ///
    /// Panics if an invocation is already in flight, or if a *different*
    /// operation is still pending (protocol misuse: its fate must be
    /// resolved through `query` first).
    pub fn begin_apply(&mut self, op: T::Op) {
        assert!(
            self.inflight.is_none(),
            "begin_apply while an invocation is in flight"
        );
        self.stats.applies += 1;
        match &self.pending {
            None => {
                self.my_seq += 1;
                self.pending = Some(PendingOp {
                    seq: self.my_seq,
                    op,
                    exposed: BTreeSet::new(),
                });
            }
            Some(pend) => {
                assert!(
                    pend.op == op,
                    "apply() while a different operation is pending; query() its fate first"
                );
            }
        }
        self.inflight = Some(OpProgress::new(InvKind::Apply));
    }

    /// Starts a `query` invocation in poll form (see
    /// [`QaSession::poll_op`]).
    ///
    /// # Panics
    ///
    /// Panics if an invocation is already in flight.
    pub fn begin_query(&mut self) {
        assert!(
            self.inflight.is_none(),
            "begin_query while an invocation is in flight"
        );
        self.stats.queries += 1;
        self.inflight = Some(OpProgress::new(InvKind::Query));
    }

    /// Runs one segment of the in-flight invocation: completes the
    /// register operation invoked at the end of the previous segment,
    /// runs the local code up to the next register invocation (invoking
    /// it), and returns `Some` when the invocation finishes.
    ///
    /// This is the step-engine form of [`QaSession::apply`] and
    /// [`QaSession::query`]; the blocking forms are derived from it by
    /// inserting one [`Env::tick`] per `None`, so both consume steps at
    /// identical points.
    ///
    /// # Panics
    ///
    /// Panics if no invocation is in flight.
    pub fn poll_op(&mut self, env: &dyn Env) -> Option<Outcome<T::Resp>> {
        let stage = std::mem::replace(self.stage(), InvStage::Start);
        let out = match stage {
            InvStage::Start => self.catchup_enter(env),
            InvStage::CatchUpRead(tok) => self.catchup_complete(env, tok),
            InvStage::AWrite(tok) => {
                if self.round_regs().a[self.p.0]
                    .complete_write(env, tok)
                    .is_ok()
                {
                    self.a_written = true;
                    self.a_read_enter(env, 0)
                } else {
                    self.round_done(env, RoundStep::Interrupted)
                }
            }
            InvStage::ARead { q, tok } => match self.round_regs().a[q].complete_read(env, tok) {
                ReadOutcome::Aborted => self.round_done(env, RoundStep::Interrupted),
                ReadOutcome::Value(v) => {
                    self.inflight
                        .as_mut()
                        .expect("invocation in flight")
                        .a_view
                        .push(v);
                    if q + 1 < self.obj.n {
                        self.a_read_enter(env, q + 1)
                    } else {
                        self.after_a_reads(env)
                    }
                }
            },
            InvStage::BWrite(tok) => {
                if self.round_regs().b[self.p.0]
                    .complete_write(env, tok)
                    .is_ok()
                {
                    self.b_written = true;
                    self.b_read_enter(env, 0)
                } else {
                    self.round_done(env, RoundStep::Interrupted)
                }
            }
            InvStage::BRead { q, tok } => match self.round_regs().b[q].complete_read(env, tok) {
                ReadOutcome::Aborted => self.round_done(env, RoundStep::Interrupted),
                ReadOutcome::Value(v) => {
                    if let Some(v) = v {
                        self.inflight
                            .as_mut()
                            .expect("invocation in flight")
                            .b_view
                            .push(v);
                    }
                    if q + 1 < self.obj.n {
                        self.b_read_enter(env, q + 1)
                    } else {
                        self.after_b_reads(env)
                    }
                }
            },
            InvStage::DWrite(tok) => {
                let _ = self.obj.slot(self.cur_slot).d.complete_write(env, tok);
                self.round_done(env, RoundStep::Committed)
            }
        };
        if out.is_some() {
            self.inflight = None;
        }
        out
    }

    /// Applies `op` to the object (one bounded attempt).
    ///
    /// Returns [`Outcome::Done`] with the response if the operation took
    /// effect during this invocation, or [`Outcome::Bot`] if it aborted —
    /// in which case the caller must use [`QaSession::query`] to learn its
    /// fate before doing anything else, exactly as in Figure 8.
    ///
    /// Calling `apply` again with the *same* operation resumes the
    /// attempt; this is what a caller that does not care about `⊥`
    /// semantics may do, and it is also safe.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
    ///
    /// # Panics
    ///
    /// Panics if a *different* operation is still pending (protocol
    /// misuse: its fate must be resolved through `query` first).
    pub fn apply(&mut self, env: &dyn Env, op: T::Op) -> SimResult<Outcome<T::Resp>> {
        self.begin_apply(op);
        loop {
            if let Some(out) = self.poll_op(env) {
                return Ok(out);
            }
            env.tick()?;
        }
    }

    /// Whether the fate of the pending op is already determined as
    /// "never takes effect": every exposed slot is decided (necessarily
    /// against the entry — otherwise [`QaSession::check_resolved`] would
    /// have fired). A slot never decides twice and entries never leak
    /// across slots, so `F` is final.
    fn pending_dead(&self) -> bool {
        match &self.pending {
            None => true,
            Some(pend) => pend.exposed.iter().all(|s| *s < self.cursor),
        }
    }

    /// Determines the fate of the last `apply` (one bounded attempt).
    ///
    /// Returns `Done(resp)` if the operation took effect, `NoEffect` if it
    /// can never take effect, and `Bot` if undetermined (try again).
    ///
    /// Besides reading the log, `query` *participates* in one consensus
    /// round of the slot the pending operation is exposed to. This is
    /// what makes the Figure 8 driver live: a solo process looping on
    /// `query` pushes the exposed slot to a decision, after which the
    /// fate is determined (`Done` or `F`). It cannot create *new*
    /// exposures: a fresh proposal is only made in a slot the entry was
    /// already exposed to — if all exposures are closed, `query` answers
    /// `F` before proposing anywhere.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
    pub fn query(&mut self, env: &dyn Env) -> SimResult<Outcome<T::Resp>> {
        self.begin_query();
        loop {
            if let Some(out) = self.poll_op(env) {
                return Ok(out);
            }
            env.tick()?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Counter, CounterOp};
    use tbwf_registers::RegisterFactoryConfig;
    use tbwf_sim::FreeRunEnv;

    fn solo_setup() -> (Arc<QaObject<Counter>>, FreeRunEnv) {
        let factory = Arc::new(RegisterFactory::new(RegisterFactoryConfig::default()));
        let obj = QaObject::new(Counter, 2, factory);
        (obj, FreeRunEnv::new(ProcId(0)))
    }

    /// Drives one logical operation to completion in a solo run,
    /// following the Figure 8 state machine.
    fn complete(
        session: &mut QaSession<Counter>,
        env: &FreeRunEnv,
        op: CounterOp,
        max_attempts: usize,
    ) -> i64 {
        let mut next_is_query = false;
        for _ in 0..max_attempts {
            let out = if next_is_query {
                session.query(env).unwrap()
            } else {
                session.apply(env, op).unwrap()
            };
            match out {
                Outcome::Done(v) => return v,
                Outcome::Bot => next_is_query = true,
                Outcome::NoEffect => next_is_query = false,
            }
        }
        panic!("operation did not complete within {max_attempts} attempts");
    }

    #[test]
    fn solo_increments_complete_and_are_sequential() {
        let (obj, env) = solo_setup();
        let mut s = obj.session(ProcId(0));
        for i in 1..=20 {
            let v = complete(&mut s, &env, CounterOp::Inc, 10);
            assert_eq!(v, i);
        }
        assert_eq!(*s.replica(), 20);
        assert_eq!(s.decided_len(), 20);
    }

    #[test]
    fn solo_first_attempt_succeeds_on_fresh_slot() {
        let (obj, env) = solo_setup();
        let mut s = obj.session(ProcId(0));
        // Fresh object, solo: the very first apply must succeed.
        let out = s.apply(&env, CounterOp::Inc).unwrap();
        assert_eq!(out, Outcome::Done(1));
    }

    #[test]
    fn second_process_sees_first_processes_ops() {
        let (obj, env) = solo_setup();
        let env1 = FreeRunEnv::new(ProcId(1));
        let mut s0 = obj.session(ProcId(0));
        let mut s1 = obj.session(ProcId(1));
        for _ in 0..5 {
            complete(&mut s0, &env, CounterOp::Inc, 10);
        }
        let v = complete(&mut s1, &env1, CounterOp::Get, 20);
        assert_eq!(v, 5);
        assert_eq!(s1.decided_len(), 6);
    }

    #[test]
    fn interleaved_sessions_agree_on_history() {
        // Sequential interleaving (no overlapping register ops): both
        // sessions must decide the same log and produce distinct
        // responses 1..=10.
        let (obj, env0) = solo_setup();
        let env1 = FreeRunEnv::new(ProcId(1));
        let mut s0 = obj.session(ProcId(0));
        let mut s1 = obj.session(ProcId(1));
        let mut responses = Vec::new();
        for i in 0..10 {
            let v = if i % 2 == 0 {
                complete(&mut s0, &env0, CounterOp::Inc, 30)
            } else {
                complete(&mut s1, &env1, CounterOp::Inc, 30)
            };
            responses.push(v);
        }
        let mut sorted = responses.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            10,
            "responses must be distinct: {responses:?}"
        );
        assert_eq!(*sorted.last().unwrap(), 10);
    }

    #[test]
    fn query_without_pending_is_no_effect() {
        let (obj, env) = solo_setup();
        let mut s = obj.session(ProcId(0));
        assert_eq!(s.query(&env).unwrap(), Outcome::NoEffect);
    }

    #[test]
    fn query_after_done_repeats_the_response() {
        // Footnote 3: query reports the fate of the last non-query
        // operation — including after it completed normally.
        let (obj, env) = solo_setup();
        let mut s = obj.session(ProcId(0));
        assert_eq!(s.apply(&env, CounterOp::Inc).unwrap(), Outcome::Done(1));
        assert_eq!(s.query(&env).unwrap(), Outcome::Done(1));
        assert_eq!(s.query(&env).unwrap(), Outcome::Done(1));
        assert_eq!(s.apply(&env, CounterOp::Inc).unwrap(), Outcome::Done(2));
        assert_eq!(s.query(&env).unwrap(), Outcome::Done(2));
    }

    #[test]
    #[should_panic(expected = "different operation is pending")]
    fn switching_ops_without_query_panics() {
        let (obj, env) = solo_setup();
        let mut s = obj.session(ProcId(0));
        // Force a pending op by a successful apply… that resolves it, so
        // instead create pending with an op and immediately call apply
        // with another op after an artificial Bot. Simplest: pend via a
        // manual first apply that succeeds, then a second one that also
        // succeeds — to really get a pending op we need an abort, which a
        // solo run never produces. So we simulate misuse directly:
        let _ = s.apply(&env, CounterOp::Get).unwrap();
        // Pending is now None (it resolved); create a fresh pending and
        // misuse:
        s.pending = Some(PendingOp {
            seq: 99,
            op: CounterOp::Get,
            exposed: BTreeSet::new(),
        });
        let _ = s.apply(&env, CounterOp::Inc);
    }

    #[test]
    fn stats_track_activity() {
        let (obj, env) = solo_setup();
        let mut s = obj.session(ProcId(0));
        complete(&mut s, &env, CounterOp::Inc, 10);
        let st = s.stats();
        assert!(st.applies >= 1);
        assert!(st.dones >= 1);
        assert!(st.commits >= 1);
    }
}
