//! The sequential object framework: any type `T` as `(State, Op, Resp)`.

use std::fmt;

/// A sequential object type, in the sense of universal constructions:
/// a deterministic state machine with typed operations and responses.
///
/// Instances (not just the type) define the object, so configurable types
/// (e.g. a register file with `k` registers) are ordinary values.
pub trait ObjectType: Send + Sync + 'static {
    /// The state of the object.
    type State: Clone + PartialEq + fmt::Debug + Send + Sync;
    /// The operations of the object.
    type Op: Clone + PartialEq + fmt::Debug + Send + Sync;
    /// The responses of the object.
    type Resp: Clone + PartialEq + fmt::Debug + Send + Sync;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Applies `op` to `state`, returning the response. Must be a pure
    /// deterministic function of `(state, op)`.
    fn apply(&self, state: &mut Self::State, op: &Self::Op) -> Self::Resp;
}

/// Result of an operation on a query-abortable object `O_QA` (footnote 3
/// of the paper and Section 7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome<R> {
    /// A normal response: the operation took effect.
    Done(R),
    /// `⊥`: the operation aborted; it may or may not have taken effect.
    Bot,
    /// `F` (only from `query`): the queried operation did **not** take
    /// effect — and is guaranteed never to take effect.
    NoEffect,
}

impl<R> Outcome<R> {
    /// The response, if the outcome is `Done`.
    pub fn done(self) -> Option<R> {
        match self {
            Outcome::Done(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the outcome is `⊥`.
    pub fn is_bot(&self) -> bool {
        matches!(self, Outcome::Bot)
    }

    /// Whether the outcome is `F`.
    pub fn is_no_effect(&self) -> bool {
        matches!(self, Outcome::NoEffect)
    }
}

/// Replays `ops` sequentially from the initial state — the reference
/// execution that linearizability oracles compare against. Returns the
/// final state and the response of each operation, in order.
///
/// This is the ground truth of the whole construction: a history is
/// correct iff it can be reordered (respecting real-time precedence)
/// into some `replay` of its operations. The model checker also folds
/// the replayed terminal state into its run fingerprints, so runs that
/// differ only in scheduling noise but agree on the abstract object
/// state collapse into one equivalence class.
pub fn replay<T: ObjectType>(ty: &T, ops: &[T::Op]) -> (T::State, Vec<T::Resp>) {
    let mut state = ty.initial();
    let resps = ops.iter().map(|op| ty.apply(&mut state, op)).collect();
    (state, resps)
}

/// A shared counter: the canonical test type.
///
/// `Inc` returns the value *after* the increment, so in any linearizable
/// history all successful `Inc` responses are distinct and the largest
/// equals the number of effective increments — the invariant the
/// integration tests check.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter;

/// Operations of [`Counter`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CounterOp {
    /// Add one; responds with the new value.
    Inc,
    /// Read the current value.
    Get,
}

impl ObjectType for Counter {
    type State = i64;
    type Op = CounterOp;
    type Resp = i64;

    fn initial(&self) -> i64 {
        0
    }

    fn apply(&self, state: &mut i64, op: &CounterOp) -> i64 {
        match op {
            CounterOp::Inc => {
                *state += 1;
                *state
            }
            CounterOp::Get => *state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_semantics() {
        let c = Counter;
        let mut s = c.initial();
        assert_eq!(c.apply(&mut s, &CounterOp::Inc), 1);
        assert_eq!(c.apply(&mut s, &CounterOp::Inc), 2);
        assert_eq!(c.apply(&mut s, &CounterOp::Get), 2);
        assert_eq!(s, 2);
    }

    #[test]
    fn replay_returns_every_response_in_order() {
        let (state, resps) = replay(
            &Counter,
            &[
                CounterOp::Inc,
                CounterOp::Get,
                CounterOp::Inc,
                CounterOp::Inc,
            ],
        );
        assert_eq!(state, 3);
        assert_eq!(resps, vec![1, 1, 2, 3]);
        let (empty_state, empty_resps) = replay(&Counter, &[]);
        assert_eq!(empty_state, 0);
        assert!(empty_resps.is_empty());
    }

    #[test]
    fn outcome_accessors() {
        let d: Outcome<i64> = Outcome::Done(5);
        assert_eq!(d.done(), Some(5));
        assert!(!d.is_bot());
        let b: Outcome<i64> = Outcome::Bot;
        assert!(b.is_bot());
        assert_eq!(b.done(), None);
        let f: Outcome<i64> = Outcome::NoEffect;
        assert!(f.is_no_effect());
    }
}
