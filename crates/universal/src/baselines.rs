//! Baselines the paper positions itself against (Sections 1.2 and 2).
//!
//! * [`drive_obstruction_free`] — the query-abortable object used
//!   directly, with no coordination at all: obstruction-free, and under
//!   steady contention essentially no one makes progress.
//! * [`FlmsBoost`] — a panic-flag booster in the style of Fich,
//!   Luchangco, Moir & Shavit \[7\]: on contention everyone publishes a
//!   timestamp and defers to the minimal one. It boosts
//!   obstruction-freedom to wait-freedom **when all correct processes are
//!   timely**, but it is not gracefully degrading: a single
//!   correct-but-slow timestamp holder stalls every timely process
//!   (experiment E5 reproduces the paper's Section 2 claim). This is a
//!   faithful-in-spirit simplification of \[7\] — same coordination
//!   structure (panic flag + minimal timestamp wins), without the
//!   bounded-timeout rotation refinements.
//! * [`CasUniversal`] — a Herlihy-style wait-free universal construction
//!   from compare-and-swap with helping via an announce array: the
//!   "strong synchronization primitives" alternative of Section 1.2.
//!   Wait-free for everyone regardless of timeliness, but built from an
//!   object strictly stronger than (abortable) registers.

use crate::object::{ObjectType, Outcome};
use crate::qa::{Entry, QaSession};
use parking_lot::Mutex;
use std::sync::Arc;
use tbwf_registers::{RegisterFactory, SharedAtomic, SharedCas};
use tbwf_sim::{Env, ProcId, SimResult};

/// Drives one operation on the query-abortable object with *no*
/// coordination: the plain obstruction-free baseline. Returns the
/// response once the operation completes; under contention this may spin
/// for the whole run (which is the point of the baseline).
///
/// # Errors
///
/// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
pub fn drive_obstruction_free<T: ObjectType>(
    env: &dyn Env,
    session: &mut QaSession<T>,
    op: T::Op,
) -> SimResult<T::Resp> {
    let mut query_next = false;
    loop {
        let res = if query_next {
            session.query(env)?
        } else {
            session.apply(env, op.clone())?
        };
        match res {
            Outcome::Done(v) => return Ok(v),
            Outcome::Bot => query_next = true,
            Outcome::NoEffect => query_next = false,
        }
        env.tick()?;
    }
}

/// Timestamp value meaning "not waiting".
const TS_INF: i64 = i64::MAX;

/// Shared state of the FLMS-style panic booster.
pub struct FlmsShared {
    /// The panic flag: set when some process suspects contention.
    pub panic: SharedAtomic<bool>,
    /// `ts[p]`: the timestamp `p` is waiting with (`TS_INF` if none).
    pub ts: Vec<SharedAtomic<i64>>,
    /// Timestamp generator (read-increment-write; ties broken by id).
    pub ts_gen: SharedAtomic<i64>,
}

impl FlmsShared {
    /// Creates the booster's shared registers for `n` processes.
    pub fn new(factory: &RegisterFactory, n: usize) -> Arc<Self> {
        Arc::new(FlmsShared {
            panic: factory.atomic("FLMS.panic", false),
            ts: (0..n)
                .map(|q| factory.atomic(&format!("FLMS.ts[{q}]"), TS_INF))
                .collect(),
            ts_gen: factory.atomic("FLMS.tsGen", 0),
        })
    }
}

/// Per-process driver of the FLMS-style booster.
pub struct FlmsBoost {
    shared: Arc<FlmsShared>,
    /// Fast-path attempts before panicking.
    pub panic_threshold: u32,
}

impl FlmsBoost {
    /// Creates a driver with the default panic threshold.
    pub fn new(shared: Arc<FlmsShared>) -> Self {
        FlmsBoost {
            shared,
            panic_threshold: 4,
        }
    }

    /// Executes `op`: fast path while the panic flag is clear; on panic,
    /// publish a timestamp and proceed only as the minimal waiter.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
    pub fn invoke<T: ObjectType>(
        &self,
        env: &dyn Env,
        session: &mut QaSession<T>,
        op: T::Op,
    ) -> SimResult<T::Resp> {
        let p = session.pid();
        let n = self.shared.ts.len();
        let mut attempts = 0u32;
        let mut registered = false;
        let mut my_ts = TS_INF;
        let mut query_next = false;
        let drive = |env: &dyn Env,
                     session: &mut QaSession<T>,
                     query_next: &mut bool|
         -> SimResult<Option<T::Resp>> {
            let res = if *query_next {
                session.query(env)?
            } else {
                session.apply(env, op.clone())?
            };
            Ok(match res {
                Outcome::Done(v) => Some(v),
                Outcome::Bot => {
                    *query_next = true;
                    None
                }
                Outcome::NoEffect => {
                    *query_next = false;
                    None
                }
            })
        };
        loop {
            env.tick()?;
            if !self.shared.panic.read(env)? {
                // Fast path: try the obstruction-free object directly.
                if let Some(v) = drive(env, session, &mut query_next)? {
                    if registered {
                        self.shared.ts[p.0].write(env, TS_INF)?;
                    }
                    return Ok(v);
                }
                attempts += 1;
                if attempts > self.panic_threshold {
                    self.shared.panic.write(env, true)?;
                }
            } else {
                // Panic mode: publish a timestamp once. The read+write on
                // ts_gen is not atomic, so two processes may acquire the
                // same timestamp; the minimal-waiter comparison below
                // tie-breaks on (ts, id), which keeps the winner unique.
                if !registered {
                    let t = self.shared.ts_gen.read(env)?;
                    self.shared.ts_gen.write(env, t + 1)?;
                    self.shared.ts[p.0].write(env, t)?;
                    my_ts = t;
                    registered = true;
                }
                // …and proceed only while holding the minimal (ts, id).
                let mut min = (my_ts, p.0);
                for q in 0..n {
                    let tq = self.shared.ts[q].read(env)?;
                    if tq != TS_INF && (tq, q) < min {
                        min = (tq, q);
                    }
                }
                if min == (my_ts, p.0) {
                    if let Some(v) = drive(env, session, &mut query_next)? {
                        self.shared.ts[p.0].write(env, TS_INF)?;
                        self.shared.panic.write(env, false)?;
                        return Ok(v);
                    }
                }
                // Not minimal: wait. This wait is exactly what makes the
                // booster non-gracefully-degrading — the minimal holder
                // may be arbitrarily slow.
            }
        }
    }
}

/// Herlihy-style wait-free universal construction from CAS, with helping.
pub struct CasUniversal<T: ObjectType> {
    ty: Arc<T>,
    n: usize,
    factory: Arc<RegisterFactory>,
    announce: Vec<SharedAtomic<Option<Entry<T::Op>>>>,
    decisions: Mutex<Vec<DecisionReg<T>>>,
}

/// One slot's decision register in the CAS construction.
type DecisionReg<T> = SharedCas<Option<Entry<<T as ObjectType>::Op>>>;

impl<T: ObjectType> CasUniversal<T> {
    /// Creates the shared object for `n` processes.
    pub fn new(ty: T, n: usize, factory: Arc<RegisterFactory>) -> Arc<Self> {
        let announce = (0..n)
            .map(|q| factory.atomic(&format!("Announce[{q}]"), None))
            .collect();
        Arc::new(CasUniversal {
            ty: Arc::new(ty),
            n,
            factory,
            announce,
            decisions: Mutex::new(Vec::new()),
        })
    }

    fn decision(&self, s: usize) -> DecisionReg<T> {
        let mut d = self.decisions.lock();
        while d.len() <= s {
            let i = d.len();
            d.push(self.factory.cas(&format!("Decide[{i}]"), None));
        }
        Arc::clone(&d[s])
    }

    /// Opens a session for process `p`.
    pub fn session(self: &Arc<Self>, p: ProcId) -> CasSession<T> {
        CasSession {
            obj: Arc::clone(self),
            p,
            replica: self.ty.initial(),
            last_of: vec![None; self.n],
            cursor: 0,
            my_seq: 0,
        }
    }
}

/// Per-process handle on a [`CasUniversal`] object.
pub struct CasSession<T: ObjectType> {
    obj: Arc<CasUniversal<T>>,
    p: ProcId,
    replica: T::State,
    last_of: Vec<Option<(u64, T::Resp)>>,
    cursor: usize,
    my_seq: u64,
}

impl<T: ObjectType> CasSession<T> {
    fn applied(&self, e: &Entry<T::Op>) -> bool {
        self.last_of[e.proposer.0]
            .as_ref()
            .is_some_and(|(seq, _)| *seq >= e.seq)
    }

    fn replay_one(&mut self, e: Entry<T::Op>) {
        if !self.applied(&e) {
            let resp = self.obj.ty.apply(&mut self.replica, &e.op);
            self.last_of[e.proposer.0] = Some((e.seq, resp));
        }
        self.cursor += 1;
    }

    /// Executes `op`, returning its response. Wait-free for every process
    /// that keeps taking steps, via announce-array helping — but requires
    /// CAS, a strong primitive.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
    pub fn apply(&mut self, env: &dyn Env, op: T::Op) -> SimResult<T::Resp> {
        self.my_seq += 1;
        let mine = Entry {
            proposer: self.p,
            seq: self.my_seq,
            op,
        };
        self.obj.announce[self.p.0].write(env, Some(mine.clone()))?;
        loop {
            // Replay decided slots.
            loop {
                let d = self.obj.decision(self.cursor);
                match d.read(env)? {
                    Some(e) => self.replay_one(e),
                    None => break,
                }
            }
            if let Some((seq, resp)) = &self.last_of[self.p.0] {
                if *seq == mine.seq {
                    let r = resp.clone();
                    self.obj.announce[self.p.0].write(env, None)?;
                    return Ok(r);
                }
            }
            // Decide the frontier slot, helping the slot's owner.
            let s = self.cursor;
            let helped = self.obj.announce[s % self.obj.n].read(env)?;
            let cand = match helped {
                Some(e) if !self.applied(&e) => e,
                _ => mine.clone(),
            };
            let d = self.obj.decision(s);
            let _ = d.compare_and_swap(env, &None, Some(cand))?;
            // Loop: the slot is now decided (by us or a racer).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Counter, CounterOp};
    use crate::qa::QaObject;
    use tbwf_registers::RegisterFactoryConfig;
    use tbwf_sim::FreeRunEnv;

    fn factory() -> Arc<RegisterFactory> {
        Arc::new(RegisterFactory::new(RegisterFactoryConfig::default()))
    }

    #[test]
    fn obstruction_free_driver_completes_solo() {
        let obj = QaObject::new(Counter, 2, factory());
        let env = FreeRunEnv::new(ProcId(0));
        let mut s = obj.session(ProcId(0));
        for i in 1..=10 {
            let v = drive_obstruction_free(&env, &mut s, CounterOp::Inc).unwrap();
            assert_eq!(v, i);
        }
    }

    #[test]
    fn cas_universal_sequential_sessions() {
        let f = factory();
        let obj = CasUniversal::new(Counter, 2, f);
        let env0 = FreeRunEnv::new(ProcId(0));
        let env1 = FreeRunEnv::new(ProcId(1));
        let mut s0 = obj.session(ProcId(0));
        let mut s1 = obj.session(ProcId(1));
        let mut responses = Vec::new();
        for i in 0..10 {
            let v = if i % 2 == 0 {
                s0.apply(&env0, CounterOp::Inc).unwrap()
            } else {
                s1.apply(&env1, CounterOp::Inc).unwrap()
            };
            responses.push(v);
        }
        let mut sorted = responses.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=10).collect::<Vec<i64>>());
    }

    #[test]
    fn flms_solo_completes() {
        let f = factory();
        let obj = QaObject::new(Counter, 2, Arc::clone(&f));
        let shared = FlmsShared::new(&f, 2);
        let boost = FlmsBoost::new(shared);
        let env = FreeRunEnv::new(ProcId(0));
        let mut s = obj.session(ProcId(0));
        for i in 1..=5 {
            let v = boost.invoke(&env, &mut s, CounterOp::Inc).unwrap();
            assert_eq!(v, i);
        }
    }
}
