//! Figure 7: the timeliness-based wait-free transform.
//!
//! `invoke_tbwf` executes one operation `op` on an object `O` of type `T`
//! by combining the dynamic leader elector Ω∆ with the wait-free
//! query-abortable object `O_QA`:
//!
//! 1. wait until `leader_p ≠ p` (the *canonical use* of Ω∆, Definition 6 —
//!    without this wait a timely process could monopolize the object,
//!    winning every election; see experiment E7);
//! 2. become a candidate;
//! 3. whenever Ω∆ says `leader_p = p`, run the Figure 8 state machine on
//!    `O_QA`: `op` → on `⊥` switch to `query` → on `F` retry `op` → on a
//!    normal response, stop competing and return.
//!
//! Theorem 14: this yields a timeliness-based wait-free implementation of
//! `T`; with the abortable-register Ω∆ and the abortable-register `O_QA`,
//! Theorem 15: *every* type has a TBWF implementation from abortable
//! registers.

use crate::object::{ObjectType, Outcome};
use crate::qa::QaSession;
use tbwf_omega::{OmegaHandles, OBS_CANDIDATE};
use tbwf_sim::{Env, SimResult};

/// What the Figure 8 state machine will invoke next.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NextInvocation {
    Op,
    Query,
}

fn set_candidate(env: &dyn Env, omega: &OmegaHandles, v: bool) {
    if omega.candidate.get() != v {
        omega.candidate.set(v);
        env.observe(OBS_CANDIDATE, 0, v as i64);
    }
}

/// Executes `op` on the TBWF object (Figure 7, lines 1–10). Blocks (in
/// simulation steps) until the operation completes; a timely caller always
/// returns in finitely many of its own steps.
///
/// See `tbwf::TbwfSystemBuilder` (crate `tbwf`) for the high-level way to
/// assemble the whole system; this function is the raw per-process driver
/// used by its workers:
///
/// ```no_run
/// # use tbwf_universal::{tbwf::invoke_tbwf, object::{Counter, CounterOp}, QaSession};
/// # use tbwf_omega::OmegaHandles;
/// # fn worker(
/// #     env: &dyn tbwf_sim::Env,
/// #     session: &mut QaSession<Counter>,
/// #     omega: &OmegaHandles,
/// # ) -> tbwf_sim::SimResult<()> {
/// let response = invoke_tbwf(env, session, omega, CounterOp::Inc)?;
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
pub fn invoke_tbwf<T: ObjectType>(
    env: &dyn Env,
    session: &mut QaSession<T>,
    omega: &OmegaHandles,
    op: T::Op,
) -> SimResult<T::Resp> {
    let p = session.pid();
    // 2: while LEADER = p do skip   (canonical use of Ω∆)
    env.observe("phase", 0, 1);
    while omega.leader.get() == Some(p) {
        env.tick()?;
    }
    // 3: CANDIDATE ← true
    set_candidate(env, omega, true);
    // 4: op' ← op
    let mut next = NextInvocation::Op;
    // 5: repeat forever
    env.observe("phase", 0, 2);
    let mut observed_applying = false;
    loop {
        env.tick()?;
        // 6: if LEADER = p
        if omega.leader.get() == Some(p) {
            if !observed_applying {
                observed_applying = true;
                env.observe("phase", 0, 3);
            }
            // 7: res ← invoke(op', O_QA, T_QA)
            let res = match next {
                NextInvocation::Op => session.apply(env, op.clone())?,
                NextInvocation::Query => session.query(env)?,
            };
            match res {
                // 8: normal response ⇒ stop competing and return.
                Outcome::Done(v) => {
                    set_candidate(env, omega, false);
                    return Ok(v);
                }
                // 9: ⊥ ⇒ ask about the fate of op.
                Outcome::Bot => next = NextInvocation::Query,
                // 10: F ⇒ op did not take effect; try it again.
                Outcome::NoEffect => next = NextInvocation::Op,
            }
        }
    }
}

/// A non-canonical variant that **omits the line-2 wait**, used only by
/// experiment E7 to demonstrate why the wait is necessary: with it
/// removed, a timely process can win every election and monopolize the
/// object, starving the other timely processes.
///
/// # Errors
///
/// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
pub fn invoke_tbwf_non_canonical<T: ObjectType>(
    env: &dyn Env,
    session: &mut QaSession<T>,
    omega: &OmegaHandles,
    op: T::Op,
) -> SimResult<T::Resp> {
    set_candidate(env, omega, true);
    let p = session.pid();
    let mut next = NextInvocation::Op;
    loop {
        env.tick()?;
        if omega.leader.get() == Some(p) {
            let res = match next {
                NextInvocation::Op => session.apply(env, op.clone())?,
                NextInvocation::Query => session.query(env)?,
            };
            match res {
                Outcome::Done(v) => {
                    // Note: candidate stays true — the monopolist never
                    // yields leadership.
                    return Ok(v);
                }
                Outcome::Bot => next = NextInvocation::Query,
                Outcome::NoEffect => next = NextInvocation::Op,
            }
        }
    }
}
