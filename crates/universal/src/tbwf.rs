//! Figure 7: the timeliness-based wait-free transform.
//!
//! `invoke_tbwf` executes one operation `op` on an object `O` of type `T`
//! by combining the dynamic leader elector Ω∆ with the wait-free
//! query-abortable object `O_QA`:
//!
//! 1. wait until `leader_p ≠ p` (the *canonical use* of Ω∆, Definition 6 —
//!    without this wait a timely process could monopolize the object,
//!    winning every election; see experiment E7);
//! 2. become a candidate;
//! 3. whenever Ω∆ says `leader_p = p`, run the Figure 8 state machine on
//!    `O_QA`: `op` → on `⊥` switch to `query` → on `F` retry `op` → on a
//!    normal response, stop competing and return.
//!
//! Theorem 14: this yields a timeliness-based wait-free implementation of
//! `T`; with the abortable-register Ω∆ and the abortable-register `O_QA`,
//! Theorem 15: *every* type has a TBWF implementation from abortable
//! registers.

use crate::object::{ObjectType, Outcome};
use crate::qa::QaSession;
use tbwf_omega::{OmegaHandles, OBS_CANDIDATE};
use tbwf_sim::{Env, SimResult};

/// What the Figure 8 state machine will invoke next.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NextInvocation {
    Op,
    Query,
}

fn set_candidate(env: &dyn Env, omega: &OmegaHandles, v: bool) {
    if omega.candidate.get() != v {
        omega.candidate.set(v);
        env.observe(OBS_CANDIDATE, 0, v as i64);
    }
}

/// Where a [`TbwfCall`] is parked between segments.
#[derive(Clone, Copy)]
enum CallState {
    /// First segment of the call.
    Start,
    /// Line 2: waiting until `leader ≠ p` (canonical only).
    LeaderWait,
    /// Line 5 head step consumed: run the line-6 leader check.
    LoopHead,
    /// An `O_QA` invocation is in flight ([`QaSession::poll_op`]).
    OpInFlight,
}

/// One TBWF operation (Figure 7) in poll form: [`TbwfCall::poll`] runs
/// one segment per call and returns the response when the operation
/// completes. The blocking [`invoke_tbwf`] /
/// [`invoke_tbwf_non_canonical`] are derived from this machine by
/// inserting one [`Env::tick`] per pending poll, so both forms consume
/// steps at identical points.
pub struct TbwfCall<T: ObjectType> {
    op: T::Op,
    canonical: bool,
    next: NextInvocation,
    observed_applying: bool,
    state: CallState,
}

impl<T: ObjectType> TbwfCall<T> {
    /// Prepares the operation; `canonical` enables the line-2 wait and
    /// the phase observations of [`invoke_tbwf`].
    pub fn new(op: T::Op, canonical: bool) -> Self {
        TbwfCall {
            op,
            canonical,
            next: NextInvocation::Op,
            observed_applying: false,
            state: CallState::Start,
        }
    }

    /// Lines 3–5: become a candidate and enter the main loop.
    fn enter_competition(&mut self, env: &dyn Env, omega: &OmegaHandles) {
        set_candidate(env, omega, true);
        if self.canonical {
            env.observe("phase", 0, 2);
        }
        self.state = CallState::LoopHead;
    }

    /// Runs one segment. Returns the response when the operation has
    /// completed (lines 8/10 reached a normal response); the final
    /// segment runs without consuming an extra step, exactly like the
    /// blocking form returning mid-segment.
    pub fn poll(
        &mut self,
        env: &dyn Env,
        session: &mut QaSession<T>,
        omega: &OmegaHandles,
    ) -> Option<T::Resp> {
        let p = session.pid();
        loop {
            match self.state {
                CallState::Start => {
                    if self.canonical {
                        // 2: while LEADER = p do skip (canonical use).
                        env.observe("phase", 0, 1);
                        if omega.leader.get() == Some(p) {
                            self.state = CallState::LeaderWait;
                            return None;
                        }
                    }
                    self.enter_competition(env, omega);
                    return None;
                }
                CallState::LeaderWait => {
                    if omega.leader.get() == Some(p) {
                        return None;
                    }
                    self.enter_competition(env, omega);
                    return None;
                }
                CallState::LoopHead => {
                    // 6: if LEADER = p
                    if omega.leader.get() != Some(p) {
                        return None;
                    }
                    if self.canonical && !self.observed_applying {
                        self.observed_applying = true;
                        env.observe("phase", 0, 3);
                    }
                    // 7: res ← invoke(op', O_QA, T_QA)
                    match self.next {
                        NextInvocation::Op => session.begin_apply(self.op.clone()),
                        NextInvocation::Query => session.begin_query(),
                    }
                    self.state = CallState::OpInFlight;
                    // The invocation's first segment runs here, in the
                    // same segment that started it.
                }
                CallState::OpInFlight => {
                    match session.poll_op(env)? {
                        // 8: normal response ⇒ stop competing and return.
                        Outcome::Done(v) => {
                            if self.canonical {
                                set_candidate(env, omega, false);
                            }
                            return Some(v);
                        }
                        // 9: ⊥ ⇒ ask about the fate of op.
                        Outcome::Bot => self.next = NextInvocation::Query,
                        // 10: F ⇒ op did not take effect; try it again.
                        Outcome::NoEffect => self.next = NextInvocation::Op,
                    }
                    self.state = CallState::LoopHead;
                    return None;
                }
            }
        }
    }
}

/// Executes `op` on the TBWF object (Figure 7, lines 1–10). Blocks (in
/// simulation steps) until the operation completes; a timely caller always
/// returns in finitely many of its own steps.
///
/// See `tbwf::TbwfSystemBuilder` (crate `tbwf`) for the high-level way to
/// assemble the whole system; this function is the raw per-process driver
/// used by its workers:
///
/// ```no_run
/// # use tbwf_universal::{tbwf::invoke_tbwf, object::{Counter, CounterOp}, QaSession};
/// # use tbwf_omega::OmegaHandles;
/// # fn worker(
/// #     env: &dyn tbwf_sim::Env,
/// #     session: &mut QaSession<Counter>,
/// #     omega: &OmegaHandles,
/// # ) -> tbwf_sim::SimResult<()> {
/// let response = invoke_tbwf(env, session, omega, CounterOp::Inc)?;
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
pub fn invoke_tbwf<T: ObjectType>(
    env: &dyn Env,
    session: &mut QaSession<T>,
    omega: &OmegaHandles,
    op: T::Op,
) -> SimResult<T::Resp> {
    let mut call = TbwfCall::new(op, true);
    loop {
        if let Some(v) = call.poll(env, session, omega) {
            return Ok(v);
        }
        env.tick()?;
    }
}

/// A non-canonical variant that **omits the line-2 wait**, used only by
/// experiment E7 to demonstrate why the wait is necessary: with it
/// removed, a timely process can win every election and monopolize the
/// object, starving the other timely processes.
///
/// # Errors
///
/// Returns [`Halted`](tbwf_sim::Halted) when the run ends.
pub fn invoke_tbwf_non_canonical<T: ObjectType>(
    env: &dyn Env,
    session: &mut QaSession<T>,
    omega: &OmegaHandles,
    op: T::Op,
) -> SimResult<T::Resp> {
    // Note: candidate stays true after a response — the monopolist never
    // yields leadership.
    let mut call = TbwfCall::new(op, false);
    loop {
        if let Some(v) = call.poll(env, session, omega) {
            return Ok(v);
        }
        env.tick()?;
    }
}
