//! Workload runners: complete n-process systems executing counter
//! workloads on each progress engine, used by integration tests and the
//! E4/E5/E7 experiments.

// `for p in 0..n` indexing parallel handle vectors mirrors the paper's
// per-process wiring; an iterator chain would obscure it.
#![allow(clippy::needless_range_loop)]

use crate::baselines::{drive_obstruction_free, CasUniversal, FlmsBoost, FlmsShared};
use crate::object::{Counter, CounterOp};
use crate::qa::{QaObject, QaSession};
use crate::tbwf::TbwfCall;
use std::sync::Arc;
use tbwf_omega::harness::install_omega;
use tbwf_omega::{OmegaHandles, OmegaKind};
use tbwf_registers::{OpLog, RegisterFactory, RegisterFactoryConfig};
use tbwf_sim::{
    Control, Env, ProcId, RunConfig, RunReport, SimBuilder, StepCtx, Stepper, TaskSpawner,
};

/// Observation key: number of completed operations of a worker.
pub const OBS_COMPLETED: &str = "completed";
/// Observation key: each response value returned to a worker.
pub const OBS_RESP: &str = "resp";

/// The progress engine a workload runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// The paper's construction: Ω∆ + query-abortable object (Figure 7).
    Tbwf(OmegaKind),
    /// Figure 7 without the canonical line-2 wait (for E7 only).
    TbwfNonCanonical(OmegaKind),
    /// The query-abortable object driven directly (obstruction-free).
    PlainOf,
    /// FLMS-style panic-flag boosting (assumes all-timely).
    FlmsBoost,
    /// Herlihy-style wait-free construction from CAS.
    HerlihyCas,
}

/// Configuration of a counter workload run.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of processes; each runs one worker performing increments.
    pub n: usize,
    /// Progress engine.
    pub engine: Engine,
    /// Register backend configuration.
    pub factory: RegisterFactoryConfig,
    /// Operations per worker (`u64::MAX` = keep going until the run ends).
    pub ops_per_proc: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n: 3,
            engine: Engine::Tbwf(OmegaKind::Atomic),
            factory: RegisterFactoryConfig::default(),
            ops_per_proc: u64::MAX,
        }
    }
}

/// The TBWF increment worker in poll form: one [`TbwfCall`] after
/// another until `ops` operations have completed. The baseline engines
/// keep their blocking closures, so a workload run exercises both task
/// kinds side by side.
struct TbwfWorker {
    session: QaSession<Counter>,
    omega: OmegaHandles,
    canonical: bool,
    ops: u64,
    done: u64,
    started: bool,
    call: Option<TbwfCall<Counter>>,
}

impl Stepper for TbwfWorker {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Control {
        let env = ctx.env();
        if !self.started {
            self.started = true;
            env.observe(OBS_COMPLETED, 0, 0);
            if self.done >= self.ops {
                return Control::Done;
            }
            self.call = Some(TbwfCall::new(CounterOp::Inc, self.canonical));
        }
        loop {
            let call = self.call.as_mut().expect("worker has a call in flight");
            match call.poll(env, &mut self.session, &self.omega) {
                None => return Control::Yield,
                Some(v) => {
                    self.done += 1;
                    env.observe(OBS_RESP, 0, v);
                    env.observe(OBS_COMPLETED, 0, self.done as i64);
                    if self.done >= self.ops {
                        self.call = None;
                        return Control::Done;
                    }
                    // The next call's first segment runs in the segment
                    // that completed this one, like the blocking loop.
                    self.call = Some(TbwfCall::new(CounterOp::Inc, self.canonical));
                }
            }
        }
    }
}

/// The result of a workload run.
pub struct WorkloadOutput {
    /// The run report.
    pub report: RunReport,
    /// Completed operations per process.
    pub completed: Vec<u64>,
    /// The responses each process received, in order.
    pub responses: Vec<Vec<i64>>,
    /// The register operation log.
    pub log: Arc<OpLog>,
}

impl WorkloadOutput {
    /// All responses across processes (for linearizability checks).
    pub fn all_responses(&self) -> Vec<i64> {
        self.responses.iter().flatten().copied().collect()
    }

    /// Asserts the counter invariant: every `Inc` response is distinct
    /// (each increment's response is the unique post-increment value).
    ///
    /// # Panics
    ///
    /// Panics if two responses coincide — a linearizability violation.
    pub fn assert_distinct_responses(&self) {
        let mut all = self.all_responses();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            total,
            "duplicate Inc responses: linearizability violated"
        );
    }
}

/// Builds and runs an n-process increment workload on the chosen engine.
pub fn run_counter_workload(cfg: &WorkloadConfig, run: RunConfig) -> WorkloadOutput {
    let factory = Arc::new(RegisterFactory::new(cfg.factory));
    let mut b = SimBuilder::new();
    for p in 0..cfg.n {
        b.add_process(&format!("p{p}"));
    }
    let ops = cfg.ops_per_proc;

    match cfg.engine {
        Engine::Tbwf(kind) | Engine::TbwfNonCanonical(kind) => {
            let canonical = matches!(cfg.engine, Engine::Tbwf(_));
            let omega_handles = install_omega(&mut b, &factory, cfg.n, kind);
            let obj = QaObject::new(Counter, cfg.n, Arc::clone(&factory));
            for p in 0..cfg.n {
                let worker = TbwfWorker {
                    session: obj.session(ProcId(p)),
                    omega: omega_handles[p].clone(),
                    canonical,
                    ops,
                    done: 0,
                    started: false,
                    call: None,
                };
                b.spawn_stepper(ProcId(p), "worker", Box::new(worker));
            }
        }
        Engine::PlainOf => {
            let obj = QaObject::new(Counter, cfg.n, Arc::clone(&factory));
            for p in 0..cfg.n {
                let mut session = obj.session(ProcId(p));
                b.add_task(ProcId(p), "worker", move |env| {
                    env.observe(OBS_COMPLETED, 0, 0);
                    let mut done = 0u64;
                    while done < ops {
                        let v = drive_obstruction_free(&env, &mut session, CounterOp::Inc)?;
                        done += 1;
                        env.observe(OBS_RESP, 0, v);
                        env.observe(OBS_COMPLETED, 0, done as i64);
                    }
                    Ok(())
                });
            }
        }
        Engine::FlmsBoost => {
            let obj = QaObject::new(Counter, cfg.n, Arc::clone(&factory));
            let shared = FlmsShared::new(&factory, cfg.n);
            for p in 0..cfg.n {
                let mut session = obj.session(ProcId(p));
                let boost = FlmsBoost::new(Arc::clone(&shared));
                b.add_task(ProcId(p), "worker", move |env| {
                    env.observe(OBS_COMPLETED, 0, 0);
                    let mut done = 0u64;
                    while done < ops {
                        let v = boost.invoke(&env, &mut session, CounterOp::Inc)?;
                        done += 1;
                        env.observe(OBS_RESP, 0, v);
                        env.observe(OBS_COMPLETED, 0, done as i64);
                    }
                    Ok(())
                });
            }
        }
        Engine::HerlihyCas => {
            let obj = CasUniversal::new(Counter, cfg.n, Arc::clone(&factory));
            for p in 0..cfg.n {
                let mut session = obj.session(ProcId(p));
                b.add_task(ProcId(p), "worker", move |env| {
                    env.observe(OBS_COMPLETED, 0, 0);
                    let mut done = 0u64;
                    while done < ops {
                        let v = session.apply(&env, CounterOp::Inc)?;
                        done += 1;
                        env.observe(OBS_RESP, 0, v);
                        env.observe(OBS_COMPLETED, 0, done as i64);
                    }
                    Ok(())
                });
            }
        }
    }

    let report = b.build().run(run);
    let completed = (0..cfg.n)
        .map(|p| {
            report
                .trace
                .last_value(ProcId(p), OBS_COMPLETED, 0)
                .unwrap_or(0) as u64
        })
        .collect();
    let responses = (0..cfg.n)
        .map(|p| {
            report
                .trace
                .obs_series(ProcId(p), OBS_RESP, 0)
                .into_iter()
                .map(|(_, v)| v)
                .collect()
        })
        .collect();
    WorkloadOutput {
        report,
        completed,
        responses,
        log: factory.log(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbwf_sim::schedule::RoundRobin;

    #[test]
    fn herlihy_cas_all_complete_under_round_robin() {
        let cfg = WorkloadConfig {
            n: 3,
            engine: Engine::HerlihyCas,
            ops_per_proc: 5,
            ..Default::default()
        };
        let out = run_counter_workload(&cfg, RunConfig::new(40_000, RoundRobin::new()));
        out.report.assert_no_panics();
        assert_eq!(out.completed, vec![5, 5, 5]);
        out.assert_distinct_responses();
        let mut all = out.all_responses();
        all.sort_unstable();
        assert_eq!(all, (1..=15).collect::<Vec<i64>>());
    }

    #[test]
    fn tbwf_atomic_all_timely_everyone_progresses() {
        let cfg = WorkloadConfig {
            n: 3,
            engine: Engine::Tbwf(OmegaKind::Atomic),
            ops_per_proc: u64::MAX,
            ..Default::default()
        };
        let out = run_counter_workload(&cfg, RunConfig::new(200_000, RoundRobin::new()));
        out.report.assert_no_panics();
        out.assert_distinct_responses();
        for p in 0..3 {
            assert!(
                out.completed[p] >= 1,
                "timely p{p} completed no operations: {:?}",
                out.completed
            );
        }
    }

    #[test]
    fn plain_of_solo_process_progresses() {
        let cfg = WorkloadConfig {
            n: 1,
            engine: Engine::PlainOf,
            ops_per_proc: 10,
            ..Default::default()
        };
        let out = run_counter_workload(&cfg, RunConfig::new(10_000, RoundRobin::new()));
        out.report.assert_no_panics();
        assert_eq!(out.completed, vec![10]);
    }
}
