//! Universal constructions for timeliness-based wait-freedom (Section 7).
//!
//! * [`object`] — the [`ObjectType`] framework: any
//!   sequential type `T` given as `(State, Op, Resp, apply)`.
//! * [`qa`] — a **wait-free query-abortable universal construction** from
//!   abortable registers: the substitute for the construction of
//!   reference \[2\] (Aguilera, Frolund, Hadzilacos, Horn, Toueg,
//!   PODC'07), which this paper uses as a black box. See `DESIGN.md` §4
//!   for why the substitution preserves the three properties Figure 7
//!   needs: wait-freedom, solo success, and linearizable effects with
//!   fate-reporting `query`.
//! * [`tbwf`] — Figure 7: the transform that combines Ω∆ (from
//!   `tbwf-omega`) with the query-abortable object to obtain a
//!   timeliness-based wait-free object of any type (Theorems 14–15).
//! * [`baselines`] — what the paper compares against in prose: a plain
//!   obstruction-free driver (no Ω∆), an FLMS-style panic-flag booster
//!   \[7\] (assumes *all* processes timely; not gracefully degrading),
//!   and a Herlihy-style wait-free construction from CAS (strong
//!   primitives).
//! * [`harness`] — workload runners used by the integration tests and the
//!   E4/E5/E7 experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod harness;
pub mod object;
pub mod qa;
pub mod tbwf;

pub use object::{replay, Counter, ObjectType, Outcome};
pub use qa::{QaObject, QaSession};
