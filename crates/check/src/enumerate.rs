//! Exhaustive bounded enumeration of decision-window assignments.
//!
//! A **leaf** fixes one complete assignment of the window: the process
//! stepping at each of the `depth` slots and the slots (if any) at which
//! catalogue injections fire. The enumerator walks the decision tree
//! depth-first — at each slot, every admissible *step* move first, then
//! every admissible *injection* move — so the emitted leaf list is a
//! canonical total order, identical on every machine and for every
//! worker count.
//!
//! Three mechanisms bound the tree:
//!
//! * the **preemption bound**: switching the stepping process between
//!   consecutive slots costs one preemption (free when the previous
//!   process crashed), CHESS-style;
//! * the **injection budget**: at most `max_injections` catalogue
//!   entries are placed, each at most once, same-slot placements in
//!   increasing catalogue order (the canonical representative of the
//!   same-instant firing order);
//! * **sleep-set pruning**: if every injection placed at a slot is
//!   transparent to the process chosen to step there, delaying those
//!   injections one slot yields a step-for-step identical run — and
//!   because step moves enumerate before injection moves, the delayed
//!   placement lives in an earlier subtree that is already explored.
//!   The branch is dropped and counted, never run.

use crate::config::CheckConfig;
use tbwf_sim::ProcId;

/// One complete window assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Leaf {
    /// The process stepping at each window slot, in slot order.
    pub steps: Vec<ProcId>,
    /// Placed injections as `(slot, catalogue index)`, sorted by that
    /// pair; the injection fires *before* the slot's step.
    pub injections: Vec<(usize, usize)>,
}

impl Leaf {
    /// Human-readable one-line description, e.g.
    /// `steps p0 p0 p1 | inject cand[0] := false @ slot 1`.
    pub fn describe(&self, cfg: &CheckConfig) -> String {
        let steps: Vec<String> = self.steps.iter().map(|p| format!("p{}", p.0)).collect();
        let mut s = format!("steps {}", steps.join(" "));
        for &(slot, cat) in &self.injections {
            s.push_str(&format!(
                " | inject {} @ slot {slot}",
                cfg.catalogue[cat].label
            ));
        }
        s
    }
}

/// The canonical leaf list plus enumeration statistics.
#[derive(Clone, Debug)]
pub struct Enumeration {
    /// Every explorable leaf, in canonical (depth-first) order.
    pub leaves: Vec<Leaf>,
    /// Branches dropped by the sleep-set rule (each subsumed by an
    /// earlier-enumerated equivalent subtree).
    pub pruned_branches: u64,
}

struct SearchState {
    steps: Vec<ProcId>,
    injections: Vec<(usize, usize)>,
    used: Vec<bool>,
    crashed: Vec<bool>,
}

/// Enumerates every leaf of `cfg`'s decision tree, in canonical order.
/// Pure: equal configurations produce equal enumerations.
pub fn enumerate(cfg: &CheckConfig) -> Enumeration {
    let mut en = Enumeration {
        leaves: Vec::new(),
        pruned_branches: 0,
    };
    let mut st = SearchState {
        steps: Vec::with_capacity(cfg.depth),
        injections: Vec::new(),
        used: vec![false; cfg.catalogue.len()],
        crashed: vec![false; cfg.scenario.n],
    };
    descend(cfg, &mut st, &mut en, 0, None, 0, None);
    en
}

/// One decision point: place the step of `slot` (after optionally adding
/// injections to it). `last` is the previous slot's process, `preempt`
/// the preemptions spent so far, and `slot_cat` the highest catalogue
/// index already placed at this slot (same-slot canonical order).
fn descend(
    cfg: &CheckConfig,
    st: &mut SearchState,
    en: &mut Enumeration,
    slot: usize,
    last: Option<usize>,
    preempt: usize,
    slot_cat: Option<usize>,
) {
    if slot == cfg.depth {
        en.leaves.push(Leaf {
            steps: st.steps.clone(),
            injections: st.injections.clone(),
        });
        return;
    }
    // Step moves first. Deferring an injection places it at a later
    // slot, so a right-shifted placement always lives in an
    // earlier-enumerated subtree — the invariant the sleep-set rule
    // below relies on.
    let trailing = st.injections.iter().position(|&(s, _)| s == slot);
    for p in 0..cfg.scenario.n {
        if st.crashed[p] {
            continue;
        }
        let cost = match last {
            None => 0,
            Some(q) if q == p || st.crashed[q] => 0,
            Some(_) => 1,
        };
        if preempt + cost > cfg.preemptions {
            continue;
        }
        if let Some(ts) = trailing {
            // Sleep-set rule: every injection placed at this slot is
            // transparent to a step of `p`, and the next slot exists, so
            // the run with those injections delayed one slot is
            // step-for-step identical and already enumerated. Drop the
            // branch.
            let all_transparent = st.injections[ts..].iter().all(|&(_, c)| {
                cfg.catalogue[c]
                    .transparent_to_others
                    .is_some_and(|o| o != p)
            });
            if all_transparent && slot + 1 < cfg.depth {
                en.pruned_branches += 1;
                continue;
            }
        }
        st.steps.push(ProcId(p));
        descend(cfg, st, en, slot + 1, Some(p), preempt + cost, None);
        st.steps.pop();
    }
    // Injection moves: catalogue entries in increasing index order
    // within a slot, each placed at most once per leaf.
    if st.injections.len() < cfg.max_injections {
        let from = slot_cat.map_or(0, |c| c + 1);
        for c in from..cfg.catalogue.len() {
            if st.used[c] {
                continue;
            }
            if let Some(t) = cfg.catalogue[c].crashes {
                // Crashing an already-crashed process is a no-op; the
                // placement would duplicate the crash-free leaf.
                if st.crashed[t] {
                    continue;
                }
            }
            st.used[c] = true;
            st.injections.push((slot, c));
            let crash_target = cfg.catalogue[c].crashes;
            if let Some(t) = crash_target {
                st.crashed[t] = true;
            }
            descend(cfg, st, en, slot, last, preempt, Some(c));
            if let Some(t) = crash_target {
                st.crashed[t] = false;
            }
            st.injections.pop();
            st.used[c] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InjectionSpec;
    use tbwf_bench::gauntlet::{Scenario, SystemKind};
    use tbwf_sim::FaultPlan;

    fn cfg(
        n: usize,
        depth: usize,
        preemptions: usize,
        max_injections: usize,
        catalogue: Vec<InjectionSpec>,
    ) -> CheckConfig {
        CheckConfig {
            name: "enum-test".into(),
            scenario: Scenario {
                seed: 1,
                kind: SystemKind::OmegaAtomic,
                n,
                steps: 1_000,
                settle: 500,
                self_punish: true,
                plan: FaultPlan::new(),
            },
            window_start: 100,
            depth,
            preemptions,
            max_injections,
            catalogue,
        }
    }

    #[test]
    fn unbounded_preemptions_give_all_step_sequences() {
        let en = enumerate(&cfg(2, 3, 3, 0, vec![]));
        assert_eq!(en.leaves.len(), 8); // 2^3
        assert_eq!(en.pruned_branches, 0);
        // Canonical order starts with the all-p0 leaf and ends all-p1.
        assert!(en.leaves[0].steps.iter().all(|p| p.0 == 0));
        assert!(en.leaves[7].steps.iter().all(|p| p.0 == 1));
    }

    #[test]
    fn zero_preemptions_allow_only_solo_runs() {
        let en = enumerate(&cfg(3, 4, 0, 0, vec![]));
        assert_eq!(en.leaves.len(), 3); // one solo leaf per process
        for leaf in &en.leaves {
            assert!(leaf.steps.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn preemption_bound_counts_context_switches() {
        // Length-3 binary sequences with at most one switch:
        // per starting process C(2,0) + C(2,1) = 3, so 6 total.
        let en = enumerate(&cfg(2, 3, 1, 0, vec![]));
        assert_eq!(en.leaves.len(), 6);
    }

    #[test]
    fn opaque_injection_is_placed_at_every_slot() {
        // A dial turn commutes with nothing: 4 step sequences × (no
        // injection + 2 slots) = 12 leaves, nothing pruned.
        let en = enumerate(&cfg(2, 2, 2, 1, vec![InjectionSpec::dial("storm", 1)]));
        assert_eq!(en.leaves.len(), 12);
        assert_eq!(en.pruned_branches, 0);
    }

    #[test]
    fn transparent_injection_keeps_only_rightmost_placement() {
        // cand[0] churn is transparent to p1's steps. Placing it at slot
        // 0 and stepping p1 is equivalent to delaying it to slot 1, so
        // that branch is pruned: 4 step-only leaves, + slot-0 placement
        // followed by p0 (2 leaves), + slot-1 placements (2 prefixes × 2
        // final steps = 4 leaves).
        let en = enumerate(&cfg(2, 2, 2, 1, vec![InjectionSpec::candidacy(0, false)]));
        assert_eq!(en.leaves.len(), 10);
        assert_eq!(en.pruned_branches, 1);
        // No surviving leaf has the transparent injection at slot 0
        // followed by a step of a process other than its owner.
        for leaf in &en.leaves {
            for &(slot, _) in &leaf.injections {
                if slot + 1 < 2 {
                    assert_eq!(leaf.steps[slot].0, 0, "non-rightmost placement survived");
                }
            }
        }
    }

    #[test]
    fn crash_injection_removes_the_victim_from_later_slots() {
        // crash(p1): 4 step-only leaves; crash at slot 0 forces p0 at
        // both slots (1 leaf); crash at slot 1 allows both prefixes but
        // forces p0 at the final slot (2 leaves).
        let en = enumerate(&cfg(2, 2, 2, 1, vec![InjectionSpec::crash(1)]));
        assert_eq!(en.leaves.len(), 7);
        for leaf in &en.leaves {
            for &(slot, _) in &leaf.injections {
                for s in slot..2 {
                    assert_ne!(leaf.steps[s].0, 1, "crashed process still stepped");
                }
            }
        }
    }

    #[test]
    fn switching_away_from_a_crashed_process_is_free() {
        // With zero preemptions and crash(p0): the leaf p0, crash@1, p1
        // must exist — the switch after the crash costs nothing.
        let en = enumerate(&cfg(2, 2, 0, 1, vec![InjectionSpec::crash(0)]));
        assert!(en
            .leaves
            .iter()
            .any(|l| { l.steps == vec![ProcId(0), ProcId(1)] && l.injections == vec![(1, 0)] }));
    }

    #[test]
    fn injection_budget_caps_placements() {
        let two = vec![
            InjectionSpec::candidacy(0, false),
            InjectionSpec::candidacy(0, true),
        ];
        let budget1 = enumerate(&cfg(2, 2, 2, 1, two.clone()));
        assert!(budget1.leaves.iter().all(|l| l.injections.len() <= 1));
        let budget2 = enumerate(&cfg(2, 2, 2, 2, two));
        assert!(budget2.leaves.iter().any(|l| l.injections.len() == 2));
        assert!(budget2.leaves.len() > budget1.leaves.len());
        // Same-slot placements appear in increasing catalogue order.
        for leaf in &budget2.leaves {
            for w in leaf.injections.windows(2) {
                assert!(w[0] < w[1], "placements out of canonical order");
            }
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        let c = cfg(
            3,
            3,
            1,
            1,
            vec![InjectionSpec::crash(2), InjectionSpec::dial("calm", 0)],
        );
        let a = enumerate(&c);
        let b = enumerate(&c);
        assert_eq!(a.leaves, b.leaves);
        assert_eq!(a.pruned_branches, b.pruned_branches);
    }
}
