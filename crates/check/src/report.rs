//! Checker reports and counterexample artifacts.

use tbwf_bench::gauntlet::{artifact_json, Outcome, Scenario};
use tbwf_sim::Json;

use crate::config::CheckConfig;

/// Exploration statistics of one configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckStats {
    /// Terminal runs executed (states visited).
    pub leaves: usize,
    /// Branches dropped by the sleep-set rule before execution.
    pub pruned_branches: u64,
    /// Distinct terminal-state fingerprints among the visited leaves.
    pub distinct_states: usize,
    /// Leaves whose fingerprint repeated an earlier (canonical-order)
    /// leaf — equivalent terminal states collapsed in the report.
    pub deduped: usize,
    /// Leaves on which at least one oracle fired.
    pub violating: usize,
}

/// A shrunk, self-contained counterexample: the materialized scenario
/// (base plan plus the surviving placed injections) together with the
/// decision-window step script it must replay under.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The materialized scenario, in the gauntlet's repro format.
    pub scenario: Scenario,
    /// First slot of the decision window.
    pub window_start: u64,
    /// The window's step script (process per slot).
    pub script: Vec<usize>,
    /// Placed injections surviving ddmin.
    pub injections_placed: usize,
    /// The shrunk run's outcome.
    pub outcome: Outcome,
}

impl Counterexample {
    /// Serializes the counterexample: the gauntlet artifact (scenario,
    /// violations, injections, measured timely set) extended with the
    /// `window` object that `e13_model_check --repro` replays under.
    pub fn to_json(&self) -> Json {
        let mut artifact = artifact_json(&self.scenario, &self.outcome);
        if let Json::Obj(pairs) = &mut artifact {
            pairs.push((
                "window".to_string(),
                Json::obj([
                    ("start", Json::Int(self.window_start as i128)),
                    (
                        "script",
                        Json::Arr(self.script.iter().map(|&p| Json::Int(p as i128)).collect()),
                    ),
                ]),
            ));
        }
        artifact
    }
}

/// The result of checking one configuration.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The configuration as explored.
    pub config: CheckConfig,
    /// Exploration statistics.
    pub stats: CheckStats,
    /// The first (canonical order) violating leaf, ddmin-shrunk; `None`
    /// when every leaf passed all oracles.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    /// Serializes the full report. Pure function of the exploration, so
    /// the determinism test compares it byte-for-byte across worker
    /// counts.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("config", self.config.to_json()),
            (
                "stats",
                Json::obj([
                    ("leaves", Json::Int(self.stats.leaves as i128)),
                    (
                        "pruned_branches",
                        Json::Int(self.stats.pruned_branches as i128),
                    ),
                    (
                        "distinct_states",
                        Json::Int(self.stats.distinct_states as i128),
                    ),
                    ("deduped", Json::Int(self.stats.deduped as i128)),
                    ("violating", Json::Int(self.stats.violating as i128)),
                ]),
            ),
            (
                "counterexample",
                match &self.counterexample {
                    Some(cex) => cex.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Parses the `window` object back out of a counterexample artifact.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn window_from_artifact(artifact: &Json) -> Result<(u64, Vec<usize>), String> {
    let window = artifact
        .get("window")
        .ok_or("artifact lacks `window` (not a model-checker counterexample?)")?;
    let start = window
        .get("start")
        .and_then(Json::as_u64)
        .ok_or("`window.start` not an integer")?;
    let script = window
        .get("script")
        .and_then(Json::as_arr)
        .ok_or("`window.script` not an array")?
        .iter()
        .map(|v| v.as_u64().map(|p| p as usize))
        .collect::<Option<Vec<usize>>>()
        .ok_or("`window.script` holds a non-integer")?;
    Ok((start, script))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbwf_bench::gauntlet::SystemKind;
    use tbwf_sim::FaultPlan;

    #[test]
    fn counterexample_json_round_trips_through_the_gauntlet_format() {
        let cex = Counterexample {
            scenario: Scenario {
                seed: 9,
                kind: SystemKind::OmegaAtomic,
                n: 2,
                steps: 1_000,
                settle: 500,
                self_punish: false,
                plan: FaultPlan::new(),
            },
            window_start: 600,
            script: vec![0, 0, 1],
            injections_placed: 1,
            outcome: Outcome::default(),
        };
        let json = cex.to_json();
        // The scenario parses with the gauntlet's own loader…
        let sc = Scenario::from_json(json.get("scenario").expect("scenario")).expect("parse");
        assert_eq!(sc.seed, 9);
        // …and the window survives a text round trip.
        let reparsed = Json::parse(&json.to_string_pretty()).expect("reparse");
        let (start, script) = window_from_artifact(&reparsed).expect("window");
        assert_eq!(start, 600);
        assert_eq!(script, vec![0, 0, 1]);
    }
}
