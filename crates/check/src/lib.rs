//! `tbwf-check` — a bounded model checker over schedules and fault
//! placements for the TBWF reproduction.
//!
//! The gauntlet (E12) samples the fault space; this crate *exhausts* a
//! bounded slice of it. A [`CheckConfig`] pins a base scenario — system
//! kind, seed, run length, background fault plan — and carves out a
//! **decision window** of `depth` consecutive step slots. Within the
//! window the checker, not the background schedule, decides everything:
//! which process takes each step, and at which slots the catalogue
//! injections (candidacy churn, crashes, policy-dial bursts, demotions)
//! fire. Exploration is bounded by a CHESS-style preemption budget and
//! an injection budget, reduced by sleep-set pruning (delaying an
//! injection past a step that cannot observe it yields the same run),
//! and deduplicated by terminal-state fingerprints.
//!
//! Every enumerated assignment is run to the horizon through the
//! gauntlet's own entry point ([`run_scenario_under`]), so the oracles
//! are exactly the paper's invariants: Definition 9 monitor properties,
//! the Definition 5 Ω∆ spec plus quiescence, bounded `faultCntr`,
//! post-stabilization leader agreement, linearizability of the Figure 7
//! counter (full Wing & Gong on the checker's short horizons), and
//! timely-process progress. A recording tap on the schedule validates
//! each run against the enumerator's analytic prediction, so the tree
//! that was explored is provably the tree that was executed.
//!
//! Violating leaves are ddmin-shrunk and serialized as self-contained
//! artifacts in the gauntlet's repro JSON format, extended with the
//! decision-window script. The frontier is sharded across the
//! work-stealing [`Executor`] in fixed chunks of the canonical leaf
//! list, so reports are byte-identical for every worker count.
//!
//! [`run_scenario_under`]: tbwf_bench::gauntlet::run_scenario_under
//! [`Executor`]: tbwf_sim::Executor

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod enumerate;
pub mod exec;
pub mod report;
pub mod suite;

pub use config::{CheckConfig, InjectionSpec};
pub use enumerate::{enumerate, Enumeration, Leaf};
pub use exec::{check, fingerprint, materialize, replay_counterexample, run_leaf, CHUNK_LEAVES};
pub use report::{window_from_artifact, CheckReport, CheckStats, Counterexample};
pub use suite::{ablation_config, suite, SuiteScale};
