//! The E13 checked-configuration suite.
//!
//! Small, fixed configurations over every layer: the activity-monitor
//! mesh (n ∈ {2, 3}), both Ω∆ implementations (n = 2), and the Figure 7
//! transform over a two-process counter. Window placement follows one
//! rule: catalogues whose injections *legitimately* move leadership
//! (crashes, demotions) get a window well before the settle point, so a
//! correct system re-stabilizes and the after-stabilization oracles
//! apply; the Ω∆-atomic candidacy-churn window sits *after* the settle
//! point, where self-punishment (Figure 3 lines 7–8) is the only thing
//! standing between a churn and a quiescence violation — exactly the
//! mechanism the ablation removes.

use tbwf_bench::gauntlet::{Scenario, SystemKind};
use tbwf_registers::DIAL_CALM;
use tbwf_sim::{FaultAction, FaultPlan, Trigger};

use crate::config::{CheckConfig, InjectionSpec};
use tbwf_bench::gauntlet::switch_name;

/// How hard the suite explores: `Full` is the E13 experiment, `Quick`
/// the CI smoke bounds (same systems, shallower windows).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SuiteScale {
    /// Experiment bounds (depth 4–6, two preemptions).
    Full,
    /// Smoke bounds (depth 3, one preemption).
    Quick,
}

impl SuiteScale {
    fn depth(self, full: usize) -> usize {
        match self {
            SuiteScale::Full => full,
            SuiteScale::Quick => 3,
        }
    }

    fn preemptions(self) -> usize {
        match self {
            SuiteScale::Full => 2,
            SuiteScale::Quick => 1,
        }
    }
}

fn scenario(kind: SystemKind, seed: u64, n: usize, steps: u64, plan: FaultPlan) -> Scenario {
    Scenario {
        seed,
        kind,
        n,
        steps,
        settle: steps / 2,
        self_punish: true,
        plan,
    }
}

/// Priming candidacy churn of `p0`, well before the settle point: under
/// self-punishment it leaves p0's counter handicapped, which is what
/// makes the post-settle churn window benign on the healthy system.
fn priming_churn() -> FaultPlan {
    let churn = |t: u64, on: bool| {
        (
            Trigger::At(t),
            FaultAction::SetSwitch {
                switch: switch_name(0),
                on,
            },
        )
    };
    let mut plan = FaultPlan::new();
    for (trig, act) in [churn(2_000, false), churn(3_000, true)] {
        plan = plan.with(trig, act);
    }
    plan
}

fn monitor_config(scale: SuiteScale, n: usize) -> CheckConfig {
    CheckConfig {
        name: format!("monitor_n{n}"),
        scenario: scenario(
            SystemKind::Monitor,
            0xE13_000 + n as u64,
            n,
            8_000,
            FaultPlan::new(),
        ),
        window_start: 5_000,
        depth: scale.depth(4),
        preemptions: scale.preemptions(),
        max_injections: 1,
        // No unpaired demotion here: demoting a process mid-window makes
        // it measured-untimely, and Property 6 then demands *unbounded*
        // fault-counter growth — unobservable in the short remaining
        // tail of a finite run. Catalogue entries must keep healthy runs
        // inside the oracles' measurable regime.
        catalogue: vec![
            InjectionSpec::crash(n - 1),
            InjectionSpec::dial("calm", DIAL_CALM),
        ],
    }
}

/// The Ω∆-atomic configuration of the acceptance criteria: priming
/// churn, then a *post-settle* decision window armed with p0's candidacy
/// switch. Healthy (self-punishment on) every placement is benign;
/// ablated ([`ablation_config`]) a single `off` placement steals
/// leadership from the stable leader and violates quiescence.
fn omega_atomic_config(scale: SuiteScale) -> CheckConfig {
    CheckConfig {
        name: "omega_atomic_n2".into(),
        scenario: scenario(
            SystemKind::OmegaAtomic,
            0xE13_0A7,
            2,
            30_000,
            priming_churn(),
        ),
        window_start: 18_000,
        depth: scale.depth(6),
        preemptions: scale.preemptions(),
        max_injections: 1,
        catalogue: vec![
            InjectionSpec::candidacy(0, false),
            InjectionSpec::candidacy(0, true),
        ],
    }
}

fn omega_abortable_config(scale: SuiteScale) -> CheckConfig {
    CheckConfig {
        name: "omega_abortable_n2".into(),
        scenario: scenario(
            SystemKind::OmegaAbortable,
            0xE13_0AB,
            2,
            20_000,
            FaultPlan::new(),
        ),
        window_start: 4_000,
        depth: scale.depth(4),
        preemptions: scale.preemptions(),
        max_injections: 1,
        catalogue: vec![InjectionSpec::crash(1), InjectionSpec::candidacy(0, false)],
    }
}

fn tbwf_config(scale: SuiteScale) -> CheckConfig {
    CheckConfig {
        name: "tbwf_n2".into(),
        scenario: scenario(SystemKind::Tbwf, 0xE13_0F7, 2, 6_000, FaultPlan::new()),
        window_start: 2_000,
        depth: scale.depth(4),
        preemptions: scale.preemptions(),
        max_injections: 1,
        catalogue: vec![
            InjectionSpec::crash(1),
            InjectionSpec::dial("calm", DIAL_CALM),
        ],
    }
}

/// The full E13 suite, in report order. Every configuration must check
/// clean on the unmodified system.
pub fn suite(scale: SuiteScale) -> Vec<CheckConfig> {
    vec![
        monitor_config(scale, 2),
        monitor_config(scale, 3),
        omega_atomic_config(scale),
        omega_abortable_config(scale),
        tbwf_config(scale),
    ]
}

/// The deliberately broken configuration: [`suite`]'s Ω∆-atomic entry
/// with self-punishment (Figure 3 lines 7–8) disabled. The checker must
/// find a counterexample here — a single well-placed candidacy flip
/// steals leadership after the settle point — and shrink it to one
/// injection.
pub fn ablation_config(scale: SuiteScale) -> CheckConfig {
    let mut cfg = omega_atomic_config(scale);
    cfg.name = "omega_atomic_n2_no_punish".into();
    cfg.scenario.self_punish = false;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_config_validates() {
        for scale in [SuiteScale::Full, SuiteScale::Quick] {
            for cfg in suite(scale) {
                cfg.validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
            }
            ablation_config(scale).validate().expect("ablation");
        }
    }

    #[test]
    fn ablation_differs_from_healthy_only_in_punishment() {
        let healthy = omega_atomic_config(SuiteScale::Full);
        let ablated = ablation_config(SuiteScale::Full);
        assert!(healthy.scenario.self_punish);
        assert!(!ablated.scenario.self_punish);
        assert_eq!(healthy.depth, ablated.depth);
        assert_eq!(healthy.window_start, ablated.window_start);
        assert_eq!(healthy.scenario.plan, ablated.scenario.plan);
    }
}
