//! Leaf execution and the top-level check loop.
//!
//! Each leaf is run to the scenario's full horizon under a spliced
//! schedule: the background [`NemesisSchedule`] everywhere, overridden
//! by the leaf's step script inside the decision window, the whole thing
//! wrapped in a [`Tapped`] recorder. After the run the recorder's
//! decisions are compared against the enumerator's analytic prediction
//! (chosen process and full runnable mask per slot) — any divergence is
//! a checker bug and panics rather than silently exploring the wrong
//! tree.
//!
//! Terminal runs are fingerprinted (FNV-1a over the step sequence,
//! every observation, the crash record, and the oracle-relevant plan
//! digest) so equivalent terminal states collapse into one equivalence
//! class in the report. The frontier is sharded across the PR-3
//! [`Executor`] in fixed chunks of the canonical leaf list with
//! index-ordered merging, which makes the report byte-identical for
//! every worker count.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use tbwf_bench::gauntlet::{
    churned, ddmin, run_scenario_under, Outcome, Scenario, SystemKind, Violation,
};
use tbwf_omega::spec::{agreement_violations, OmegaRunData};
use tbwf_sim::timeliness::measured_timely_set;
use tbwf_sim::{
    DecisionLog, Executor, NemesisSchedule, ProcId, RunReport, ScriptedWindow, Tapped, Trigger,
};
use tbwf_universal::object::CounterOp;
use tbwf_universal::{replay, Counter};

use crate::config::CheckConfig;
use crate::enumerate::{enumerate, Leaf};
use crate::report::{CheckReport, CheckStats, Counterexample};

/// Leaves per executor job. Chunking is a property of the canonical leaf
/// list, not of the worker count, so job boundaries — and with them every
/// stat and verdict — are identical for any `--jobs` value.
pub const CHUNK_LEAVES: usize = 64;

/// The verdict of one leaf.
#[derive(Clone, Debug)]
pub struct LeafRun {
    /// The gauntlet oracles' outcome, extended with the checker's
    /// leader-agreement oracle.
    pub outcome: Outcome,
    /// Terminal-state fingerprint.
    pub fingerprint: u64,
}

/// Materializes a leaf into a self-contained gauntlet scenario: the base
/// plan plus one `Trigger::At(window_start + slot)` event per placed
/// injection, appended in canonical `(slot, catalogue index)` order.
pub fn materialize(cfg: &CheckConfig, leaf: &Leaf) -> Scenario {
    let mut sc = cfg.scenario.clone();
    let mut plan = sc.plan.clone();
    for &(slot, cat) in &leaf.injections {
        plan = plan.with(
            Trigger::At(cfg.window_start + slot as u64),
            cfg.catalogue[cat].action.clone(),
        );
    }
    sc.plan = plan;
    sc
}

/// Runs one leaf to the horizon, validates the tap against the analytic
/// prediction, evaluates the oracles, and fingerprints the terminal run.
///
/// # Panics
///
/// Panics if the recorded window decisions diverge from the enumerator's
/// prediction — the exploration would be unsound, so this is fatal.
pub fn run_leaf(cfg: &CheckConfig, leaf: &Leaf) -> LeafRun {
    let sc = materialize(cfg, leaf);
    let log = DecisionLog::new();
    let script = leaf.steps.clone();
    let w0 = cfg.window_start;
    let (mut outcome, report) = run_scenario_under(&sc, &mut |ctl| {
        Box::new(Tapped::new(
            ScriptedWindow::new(w0, script.clone(), NemesisSchedule::new(ctl)),
            log.clone(),
        ))
    });
    validate_window(cfg, leaf, &log);
    agreement_oracle(cfg, &sc, &report, &mut outcome);
    let fingerprint = fingerprint(&sc, &report);
    LeafRun {
        outcome,
        fingerprint,
    }
}

/// Asserts that what the runner actually did inside the window is what
/// the enumerator predicted: one decision per slot, the scripted process
/// chosen, and the recorded runnable mask equal to "everyone except the
/// processes crashed by injections at or before this slot".
fn validate_window(cfg: &CheckConfig, leaf: &Leaf, log: &DecisionLog) {
    let n = cfg.scenario.n;
    let w0 = cfg.window_start;
    let end = w0 + cfg.depth as u64;
    let decisions = log.snapshot();
    let window: Vec<_> = decisions
        .iter()
        .filter(|d| d.time >= w0 && d.time < end)
        .collect();
    assert_eq!(
        window.len(),
        cfg.depth,
        "{}: expected one decision per window slot, got {} (leaf: {})",
        cfg.name,
        window.len(),
        leaf.describe(cfg)
    );
    let full: u64 = u64::MAX >> (64 - n);
    let mut crashed_mask: u64 = 0;
    for (k, d) in window.iter().enumerate() {
        for &(slot, cat) in &leaf.injections {
            if slot == k {
                if let Some(t) = cfg.catalogue[cat].crashes {
                    crashed_mask |= 1 << t;
                }
            }
        }
        assert_eq!(
            d.chosen,
            leaf.steps[k],
            "{}: slot {k} stepped p{} instead of the scripted p{} (leaf: {})",
            cfg.name,
            d.chosen.0,
            leaf.steps[k].0,
            leaf.describe(cfg)
        );
        assert_eq!(
            d.runnable,
            full & !crashed_mask,
            "{}: slot {k} runnable-mask prediction diverged (leaf: {})",
            cfg.name,
            leaf.describe(cfg)
        );
    }
}

/// Leader agreement after stabilization (Ω∆ kinds): once the window has
/// played out and the tail has re-stabilized, no two non-crashed
/// measured-timely processes may name different concrete leaders.
fn agreement_oracle(cfg: &CheckConfig, sc: &Scenario, report: &RunReport, out: &mut Outcome) {
    agreement_oracle_at(cfg.window_start + cfg.depth as u64, sc, report, out);
}

fn agreement_oracle_at(window_end: u64, sc: &Scenario, report: &RunReport, out: &mut Outcome) {
    if !matches!(
        sc.kind,
        SystemKind::OmegaAtomic | SystemKind::OmegaAbortable
    ) {
        return;
    }
    let crashed: Vec<ProcId> = report.trace.crashes.iter().map(|&(_, p)| p).collect();
    let measured = measured_timely_set(&report.trace.steps, sc.n, &crashed);
    let data = OmegaRunData::from_trace(&report.trace, sc.n, &measured);
    // Halfway between the window and the horizon: far enough out that a
    // legitimate leadership handover triggered by a window injection has
    // reached everyone.
    let from = window_end + (sc.steps - window_end) / 2;
    for msg in agreement_violations(&data, from) {
        out.violations.push(Violation::new("leader-agreement", msg));
    }
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }
}

/// FNV-1a fingerprint of a terminal run: the full step sequence, every
/// observation, the crash record, the oracle-relevant plan digest (which
/// processes the plan churns — the quiescence exemptions), and for Fig-7
/// runs the sequential replay of the completed operations (the abstract
/// object state). Two leaves with equal fingerprints present identical
/// evidence to every oracle, so their verdicts must agree; the check
/// loop asserts exactly that.
pub fn fingerprint(sc: &Scenario, report: &RunReport) -> u64 {
    let trace = &report.trace;
    let mut h = Fnv::new();
    h.u64(trace.steps.len() as u64);
    for p in &trace.steps {
        h.byte(p.0 as u8);
    }
    h.u64(trace.obs.len() as u64);
    for o in &trace.obs {
        h.u64(o.time);
        h.byte(o.proc.0 as u8);
        h.str(o.key);
        h.u64(o.idx as u64);
        h.i64(o.value);
    }
    h.u64(trace.crashes.len() as u64);
    for &(t, p) in &trace.crashes {
        h.u64(t);
        h.byte(p.0 as u8);
    }
    for c in churned(&sc.plan, sc.n) {
        h.byte(c as u8);
    }
    if sc.kind == SystemKind::Tbwf {
        let completed: usize = (0..sc.n)
            .map(|p| {
                trace
                    .obs_series(ProcId(p), tbwf::prelude::OBS_COMPLETED, 0)
                    .last()
                    .map_or(0, |&(_, v)| v.max(0) as usize)
            })
            .sum();
        let (state, _) = replay(&Counter, &vec![CounterOp::Inc; completed]);
        h.i64(state);
    }
    h.0
}

/// Explores the whole bounded tree of `cfg` and reports.
///
/// The canonical leaf list is split into fixed [`CHUNK_LEAVES`]-sized
/// chunks, one executor job per chunk; per-leaf verdicts are merged in
/// canonical order, so the returned report — stats, first violating
/// leaf, shrunk counterexample — is byte-identical for every worker
/// count.
///
/// # Errors
///
/// Returns the configuration's validation error, if any.
pub fn check(cfg: &CheckConfig, executor: &Executor) -> Result<CheckReport, String> {
    cfg.validate()?;
    let en = enumerate(cfg);
    let total = en.leaves.len();
    let chunks = total.div_ceil(CHUNK_LEAVES);
    let results: Vec<Vec<(u64, Vec<Violation>)>> = executor.run(chunks, |ci| {
        let lo = ci * CHUNK_LEAVES;
        let hi = (lo + CHUNK_LEAVES).min(total);
        en.leaves[lo..hi]
            .iter()
            .map(|leaf| {
                let lr = run_leaf(cfg, leaf);
                (lr.fingerprint, lr.outcome.violations)
            })
            .collect()
    });

    let mut seen: HashMap<u64, bool> = HashMap::new();
    let mut deduped = 0usize;
    let mut violating = 0usize;
    let mut first_violating: Option<usize> = None;
    for (idx, (fp, violations)) in results.iter().flatten().enumerate() {
        let violated = !violations.is_empty();
        if violated {
            violating += 1;
            if first_violating.is_none() {
                first_violating = Some(idx);
            }
        }
        match seen.entry(*fp) {
            Entry::Occupied(e) => {
                deduped += 1;
                assert_eq!(
                    *e.get(),
                    violated,
                    "{}: two leaves with equal fingerprints disagree on the verdict",
                    cfg.name
                );
            }
            Entry::Vacant(v) => {
                v.insert(violated);
            }
        }
    }

    let counterexample = first_violating.map(|i| shrink_leaf(cfg, &en.leaves[i]));
    Ok(CheckReport {
        config: cfg.clone(),
        stats: CheckStats {
            leaves: total,
            pruned_branches: en.pruned_branches,
            distinct_states: seen.len(),
            deduped,
            violating,
        },
        counterexample,
    })
}

/// ddmin-shrinks the first violating leaf's injection placement (the
/// step script is kept — it is already preemption-bounded) and packages
/// the result as a self-contained repro artifact.
fn shrink_leaf(cfg: &CheckConfig, leaf: &Leaf) -> Counterexample {
    let mut violates = |inj: &[(usize, usize)]| {
        let cand = Leaf {
            steps: leaf.steps.clone(),
            injections: inj.to_vec(),
        };
        !run_leaf(cfg, &cand).outcome.violations.is_empty()
    };
    let min_injections = ddmin(&leaf.injections, &mut violates);
    let min = Leaf {
        steps: leaf.steps.clone(),
        injections: min_injections,
    };
    let lr = run_leaf(cfg, &min);
    Counterexample {
        scenario: materialize(cfg, &min),
        window_start: cfg.window_start,
        script: min.steps.iter().map(|p| p.0).collect(),
        injections_placed: min.injections.len(),
        outcome: lr.outcome,
    }
}

/// Replays a counterexample artifact: re-runs the serialized scenario
/// under its serialized window script and returns the outcome.
pub fn replay_counterexample(sc: &Scenario, window_start: u64, script: &[usize]) -> Outcome {
    let steps: Vec<ProcId> = script.iter().map(|&p| ProcId(p)).collect();
    let log = DecisionLog::new();
    let (mut outcome, report) = run_scenario_under(sc, &mut |ctl| {
        Box::new(Tapped::new(
            ScriptedWindow::new(window_start, steps.clone(), NemesisSchedule::new(ctl)),
            log.clone(),
        ))
    });
    agreement_oracle_at(
        window_start + script.len() as u64,
        sc,
        &report,
        &mut outcome,
    );
    outcome
}
