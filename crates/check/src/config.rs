//! Checker configuration: the base scenario, the decision window, the
//! exploration bounds, and the injection catalogue.

use tbwf_bench::gauntlet::{switch_name, Scenario, DIAL_NAME};
use tbwf_sim::{FaultAction, FaultTarget, Json};

/// One nemesis action the checker may place before any step slot of the
/// decision window (each catalogue entry is placed at most once per
/// explored run; an injection before slot `k` fires at `window_start + k`,
/// before that slot's step is granted).
#[derive(Clone, Debug)]
pub struct InjectionSpec {
    /// Human-readable label used in reports and usage output.
    pub label: String,
    /// The fault-plan action the placement materializes.
    pub action: FaultAction,
    /// `Some(p)`: only process `p` ever observes the action's effect, so
    /// the injection commutes with a window step of any *other* process —
    /// the fact the sleep-set pruning rule exploits. `None`: conservatively
    /// assume every process may observe it (never commutes).
    pub transparent_to_others: Option<usize>,
    /// `Some(p)`: the action crashes process `p`. Drives the enumerator's
    /// runnable-mask prediction (a crashed process takes no further window
    /// step).
    pub crashes: Option<usize>,
}

impl InjectionSpec {
    /// Sets process `p`'s external candidacy switch (Ω∆ kinds only).
    /// Only `p`'s own driver task reads the desired-candidacy flag, so
    /// the flip is transparent to steps of every other process.
    pub fn candidacy(p: usize, on: bool) -> InjectionSpec {
        InjectionSpec {
            label: format!("{} := {on}", switch_name(p)),
            action: FaultAction::SetSwitch {
                switch: switch_name(p),
                on,
            },
            transparent_to_others: Some(p),
            crashes: None,
        }
    }

    /// Crashes process `p` (never commutes: every peer can observe the
    /// silence through its activity monitor).
    pub fn crash(p: usize) -> InjectionSpec {
        InjectionSpec {
            label: format!("crash p{p}"),
            action: FaultAction::Crash(FaultTarget::Proc(p)),
            transparent_to_others: None,
            crashes: Some(p),
        }
    }

    /// Turns the register factory's abort/effect policy dial (never
    /// commutes: every process's register operations see the policy).
    pub fn dial(label: &str, value: i64) -> InjectionSpec {
        InjectionSpec {
            label: label.to_string(),
            action: FaultAction::SetDial {
                dial: DIAL_NAME.to_string(),
                value,
            },
            transparent_to_others: None,
            crashes: None,
        }
    }

    /// Demotes process `p` in the background [`NemesisSchedule`]'s timely
    /// set. The demotion takes effect once the schedule resumes after the
    /// decision window; it is treated as non-commuting because the slowed
    /// stepping pattern is visible to every monitor.
    ///
    /// [`NemesisSchedule`]: tbwf_sim::NemesisSchedule
    pub fn demote(p: usize) -> InjectionSpec {
        InjectionSpec {
            label: format!("demote p{p}"),
            action: FaultAction::Demote(FaultTarget::Proc(p)),
            transparent_to_others: None,
            crashes: None,
        }
    }
}

/// A bounded model-checking problem: a base [`Scenario`] (system kind,
/// seed, run length, background fault plan), a decision window, and the
/// exploration bounds.
///
/// The checker enumerates every admissible assignment of (a) which
/// process steps at each of the `depth` window slots and (b) where among
/// the slots the catalogue injections land, then runs each assignment to
/// the scenario's full horizon and evaluates the gauntlet oracles on the
/// terminal run.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Stable configuration name used in reports and artifacts.
    pub name: String,
    /// The base campaign; its plan must be crash-free (crashes belong in
    /// the catalogue, where the enumerator can account for them).
    pub scenario: Scenario,
    /// First time slot of the decision window.
    pub window_start: u64,
    /// Number of consecutive step slots the checker controls.
    pub depth: usize,
    /// CHESS-style preemption bound: a slot that switches to a different
    /// process than the previous slot costs one preemption (free when the
    /// previous process crashed, and for the first slot).
    pub preemptions: usize,
    /// Maximum number of catalogue injections placed per explored run.
    pub max_injections: usize,
    /// The injections available for placement.
    pub catalogue: Vec<InjectionSpec>,
}

impl CheckConfig {
    /// Checks the configuration is explorable and its analytic
    /// runnable-mask prediction is sound.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.scenario.n;
        if n == 0 || n > 64 {
            return Err(format!("n = {n} outside the checkable range 1..=64"));
        }
        if self.depth == 0 {
            return Err("depth must be at least 1".into());
        }
        let end = self.window_start + self.depth as u64;
        let last_quarter = self.scenario.steps - self.scenario.steps / 4;
        if end > last_quarter {
            return Err(format!(
                "decision window ends at {end}, inside the final quarter of the run \
                 (≥ {last_quarter}); soloing there would distort the measured timely set \
                 the oracles depend on"
            ));
        }
        for ev in &self.scenario.plan.events {
            if matches!(ev.action, FaultAction::Crash(_)) {
                return Err(
                    "base plan must be crash-free: put crashes in the catalogue, where the \
                     enumerator can predict the runnable set"
                        .into(),
                );
            }
        }
        for (i, spec) in self.catalogue.iter().enumerate() {
            if let Some(p) = spec.crashes {
                if p >= n {
                    return Err(format!("catalogue[{i}] crashes p{p}, but n = {n}"));
                }
            }
            if let Some(p) = spec.transparent_to_others {
                if p >= n {
                    return Err(format!("catalogue[{i}] is owned by p{p}, but n = {n}"));
                }
            }
        }
        Ok(())
    }

    /// Serializes the configuration (the `config` object of a report).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("scenario", self.scenario.to_json()),
            ("window_start", Json::Int(self.window_start as i128)),
            ("depth", Json::Int(self.depth as i128)),
            ("preemptions", Json::Int(self.preemptions as i128)),
            ("max_injections", Json::Int(self.max_injections as i128)),
            (
                "catalogue",
                Json::Arr(self.catalogue.iter().map(|s| Json::str(&s.label)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbwf_bench::gauntlet::SystemKind;
    use tbwf_sim::{FaultPlan, Trigger};

    fn base(n: usize) -> CheckConfig {
        CheckConfig {
            name: "test".into(),
            scenario: Scenario {
                seed: 1,
                kind: SystemKind::OmegaAtomic,
                n,
                steps: 1_000,
                settle: 500,
                self_punish: true,
                plan: FaultPlan::new(),
            },
            window_start: 600,
            depth: 4,
            preemptions: 2,
            max_injections: 1,
            catalogue: vec![InjectionSpec::candidacy(0, false)],
        }
    }

    #[test]
    fn accepts_a_sound_config() {
        base(2).validate().expect("valid");
    }

    #[test]
    fn rejects_window_in_final_quarter() {
        let mut cfg = base(2);
        cfg.window_start = 900;
        assert!(cfg.validate().unwrap_err().contains("final quarter"));
    }

    #[test]
    fn rejects_crashes_in_base_plan() {
        let mut cfg = base(2);
        cfg.scenario.plan =
            FaultPlan::new().with(Trigger::At(100), FaultAction::Crash(FaultTarget::Proc(0)));
        assert!(cfg.validate().unwrap_err().contains("crash-free"));
    }

    #[test]
    fn rejects_out_of_range_catalogue_targets() {
        let mut cfg = base(2);
        cfg.catalogue = vec![InjectionSpec::crash(5)];
        assert!(cfg.validate().is_err());
        cfg.catalogue = vec![InjectionSpec::candidacy(3, true)];
        assert!(cfg.validate().is_err());
    }
}
