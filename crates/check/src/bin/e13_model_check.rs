//! **E13 — bounded model checking** (exhaustive small-scope exploration
//! of schedules and fault placements; Definitions 5 and 9, Figure 7).
//!
//! Runs the checked-configuration suite — the activity-monitor mesh
//! (n ∈ {2, 3}), both Ω∆ implementations, and the Figure 7 transform
//! over a two-process counter — exploring every admissible assignment
//! of window steps and catalogue injections within the configured
//! bounds, and evaluating the gauntlet's oracles on every terminal run.
//! The unmodified system must check clean everywhere.
//!
//! The run ends with the *ablation*: self-punishment (Figure 3 lines
//! 7–8) disabled, the checker must *find* the quiescence violation —
//! a single well-placed candidacy flip — and shrink it to one placed
//! injection, written to `results/e13_counterexample.json` in the
//! gauntlet repro format extended with the decision-window script.
//!
//! Exploration is sharded across fixed chunks of the canonical leaf
//! list (`--jobs`), so every report is byte-identical for every worker
//! count; `tests/determinism.rs` pins this down.

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use tbwf_bench::gauntlet::{scenario_from_artifact, write_artifact};
use tbwf_bench::print_table;
use tbwf_check::{
    ablation_config, check, replay_counterexample, suite, window_from_artifact, CheckReport,
    SuiteScale,
};
use tbwf_sim::{resolve_jobs, Executor, Json};

const RESULTS_DIR: &str = "results";

const USAGE: &str = "\
usage: e13_model_check [--quick] [--jobs N] [--skip-ablation] [--repro FILE]

  --quick          smoke bounds (depth 3, one preemption) instead of the
                   full experiment bounds
  --jobs N         worker threads (default: TBWF_JOBS env, else all cores;
                   must be at least 1)
  --skip-ablation  skip the self-punishment ablation demonstration
  --repro FILE     replay a counterexample artifact instead of checking";

struct Cli {
    scale: SuiteScale,
    jobs: Option<usize>,
    run_ablation: bool,
    repro: Option<String>,
}

fn positive_arg(args: &[String], i: usize, flag: &str) -> Result<usize, String> {
    let raw = args
        .get(i)
        .ok_or_else(|| format!("{flag} needs a number"))?;
    let v: usize = raw
        .parse()
        .map_err(|_| format!("{flag}: {raw:?} is not a number"))?;
    if v == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(v)
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        scale: SuiteScale::Full,
        jobs: None,
        run_ablation: true,
        repro: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cli.scale = SuiteScale::Quick,
            "--jobs" => {
                cli.jobs = Some(positive_arg(args, i + 1, "--jobs")?);
                i += 1;
            }
            "--skip-ablation" => cli.run_ablation = false,
            "--repro" => {
                cli.repro = Some(
                    args.get(i + 1)
                        .ok_or_else(|| "--repro needs a file".to_string())?
                        .clone(),
                );
                i += 1;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    Ok(cli)
}

fn repro(path: &str) -> ExitCode {
    let (sc, window) = match load_artifact(path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cannot load artifact: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (start, script) = window;
    println!(
        "replaying {}: kind = {}, n = {}, window [{start}, {}), {} fault events",
        path,
        sc.kind.name(),
        sc.n,
        start + script.len() as u64,
        sc.plan.events.len()
    );
    let out = replay_counterexample(&sc, start, &script);
    for inj in &out.injections {
        println!("  injected: {inj}");
    }
    if out.violations.is_empty() {
        println!("no violations — the artifact does not reproduce here");
        ExitCode::FAILURE
    } else {
        for v in &out.violations {
            println!("  violation [{}]: {}", v.invariant, v.detail);
        }
        ExitCode::SUCCESS
    }
}

fn load_artifact(
    path: &str,
) -> Result<(tbwf_bench::gauntlet::Scenario, (u64, Vec<usize>)), String> {
    let sc = scenario_from_artifact(Path::new(path))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let json = Json::parse(&text)?;
    let window = window_from_artifact(&json)?;
    Ok((sc, window))
}

fn report_row(report: &CheckReport) -> Vec<String> {
    vec![
        report.config.name.clone(),
        format!("{}", report.config.scenario.n),
        format!("{}", report.config.depth),
        format!("{}", report.stats.leaves),
        format!("{}", report.stats.pruned_branches),
        format!("{}", report.stats.distinct_states),
        format!("{}", report.stats.deduped),
        format!("{}", report.stats.violating),
    ]
}

fn run_suite(scale: SuiteScale, executor: &Executor) -> Result<usize, String> {
    let configs = suite(scale);
    println!(
        "E13: bounded model checking, {} configurations, {} worker(s)\n",
        configs.len(),
        executor.jobs()
    );
    let mut rows = Vec::new();
    let mut failures = 0usize;
    for cfg in &configs {
        let t0 = Instant::now();
        let report = check(cfg, executor)?;
        eprintln!(
            "  {}: {} states in {:.1?}",
            cfg.name,
            report.stats.leaves,
            t0.elapsed()
        );
        rows.push(report_row(&report));
        if let Some(cex) = &report.counterexample {
            failures += 1;
            eprintln!(
                "VIOLATION in {}: {:?}",
                cfg.name,
                cex.outcome
                    .violations
                    .iter()
                    .map(|v| v.invariant.as_str())
                    .collect::<Vec<_>>()
            );
            let stem = format!("e13_violation_{}", cfg.name);
            match write_artifact(Path::new(RESULTS_DIR), &stem, &cex.to_json()) {
                Ok(p) => eprintln!("  shrunk counterexample: {}", p.display()),
                Err(e) => eprintln!("  cannot write artifact: {e}"),
            }
        }
    }
    print_table(
        &[
            "config",
            "n",
            "depth",
            "states",
            "pruned",
            "distinct",
            "deduped",
            "violating",
        ],
        &rows,
    );
    Ok(failures)
}

fn ablation(scale: SuiteScale, executor: &Executor) -> Result<(), String> {
    println!("\nablation: self-punishment disabled, checker must find the quiescence theft");
    let cfg = ablation_config(scale);
    let report = check(&cfg, executor)?;
    println!(
        "  {} states explored, {} violating",
        report.stats.leaves, report.stats.violating
    );
    let cex = report
        .counterexample
        .ok_or("checker found no counterexample — the exploration is blind")?;
    if report.stats.violating == report.stats.leaves {
        return Err("every leaf violated — the checker is not actually searching".into());
    }
    for v in &cex.outcome.violations {
        println!("  violation [{}]: {}", v.invariant, v.detail);
    }
    if cex.injections_placed != 1 {
        return Err(format!(
            "counterexample shrank to {} placed injections, expected exactly 1",
            cex.injections_placed
        ));
    }
    if cex.outcome.violations.is_empty() {
        return Err("shrunk counterexample no longer reproduces".into());
    }
    let path = write_artifact(Path::new(RESULTS_DIR), "e13_counterexample", &cex.to_json())
        .map_err(|e| format!("cannot write artifact: {e}"))?;
    println!("  shrunk counterexample artifact: {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("e13_model_check: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &cli.repro {
        return repro(path);
    }

    let executor = Executor::new(resolve_jobs(cli.jobs));
    let mut ok = true;
    match run_suite(cli.scale, &executor) {
        Ok(0) => println!("\nall configurations check clean"),
        Ok(failures) => {
            eprintln!("\n{failures} configuration(s) violated an invariant");
            ok = false;
        }
        Err(e) => {
            eprintln!("e13_model_check: {e}");
            return ExitCode::FAILURE;
        }
    }
    if cli.run_ablation {
        match ablation(cli.scale, &executor) {
            Ok(()) => println!("ablation counterexample found and shrunk as expected"),
            Err(e) => {
                eprintln!("ablation FAILED: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
