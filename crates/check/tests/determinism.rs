//! Worker-count determinism and end-to-end checker behavior.
//!
//! The acceptance bar of the subsystem: (1) the checker's report is
//! byte-identical across `--jobs 1/2/8` — sharding the frontier over the
//! executor never changes which states are visited or which
//! counterexample is reported; (2) the unmodified Ω∆-atomic system
//! checks clean within its bounds; (3) with self-punishment ablated the
//! checker finds the quiescence theft and ddmin shrinks it to a single
//! placed injection.

use tbwf_check::{ablation_config, check, replay_counterexample, suite, SuiteScale};
use tbwf_sim::Executor;

/// The monitor n = 3 quick configuration: 90 leaves, i.e. two executor
/// chunks, so parallel runs genuinely interleave chunk completion.
fn multi_chunk_config() -> tbwf_check::CheckConfig {
    let cfg = suite(SuiteScale::Quick).remove(1);
    assert_eq!(cfg.name, "monitor_n3");
    cfg
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let cfg = multi_chunk_config();
    let baseline = check(&cfg, &Executor::new(1))
        .expect("check")
        .to_json()
        .to_string_pretty();
    for jobs in [2usize, 8] {
        let parallel = check(&cfg, &Executor::new(jobs))
            .expect("check")
            .to_json()
            .to_string_pretty();
        assert_eq!(
            baseline, parallel,
            "report differs between 1 and {jobs} workers"
        );
    }
}

#[test]
fn healthy_omega_atomic_checks_clean() {
    let cfg = suite(SuiteScale::Quick).remove(2);
    assert_eq!(cfg.name, "omega_atomic_n2");
    let report = check(&cfg, &Executor::new(2)).expect("check");
    assert!(report.stats.leaves > 0);
    assert_eq!(
        report.stats.violating,
        0,
        "unmodified system violated: {:?}",
        report.counterexample.map(|c| c.outcome.violations)
    );
    // The sleep-set rule and the fingerprint dedup both actually engage.
    assert!(report.stats.pruned_branches > 0);
    assert!(report.stats.deduped > 0);
    assert!(report.stats.distinct_states < report.stats.leaves);
}

#[test]
fn ablated_system_yields_a_one_injection_counterexample() {
    let cfg = ablation_config(SuiteScale::Quick);
    let report = check(&cfg, &Executor::new(2)).expect("check");
    // The checker genuinely searches: some leaves pass, some violate.
    assert!(report.stats.violating > 0, "ablation found no violation");
    assert!(
        report.stats.violating < report.stats.leaves,
        "every leaf violated — the window adds nothing"
    );
    let cex = report.counterexample.expect("counterexample");
    assert_eq!(
        cex.injections_placed, 1,
        "ddmin left more than one injection"
    );
    assert!(cex
        .outcome
        .violations
        .iter()
        .any(|v| v.invariant == "quiescence"));
    // The artifact is self-contained: replaying the serialized scenario
    // under the serialized window reproduces the violation.
    let replayed = replay_counterexample(&cex.scenario, cex.window_start, &cex.script);
    assert!(
        !replayed.violations.is_empty(),
        "serialized counterexample does not reproduce"
    );
}
