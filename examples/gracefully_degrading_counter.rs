//! The headline claim of the paper (Section 1.1): graceful degradation.
//!
//! Six processes hammer one TBWF counter. We sweep the number of *timely*
//! processes k from 1 to 6 (the rest step with exponentially growing
//! gaps, so they are correct but not timely) and report the progress of
//! each group:
//!
//! * every **timely** process completes operations — wait-freedom for the
//!   timely, no matter how few they are;
//! * non-timely processes may starve, but they **cannot hinder** the
//!   timely ones.
//!
//! Run with: `cargo run --release --example gracefully_degrading_counter`

use tbwf::prelude::*;

fn main() {
    let n = 6;
    let steps = 400_000;
    println!("TBWF counter, n = {n}, {steps} steps; sweeping timely set size k:");
    println!(
        "{:>3} | {:>28} | {:>28}",
        "k", "ops by timely (min..max)", "ops by non-timely"
    );

    for k in 1..=n {
        let timely: Vec<ProcId> = (0..k).map(ProcId).collect();
        let schedule = PartiallySynchronous::new(timely.clone(), 4, true);
        let run = TbwfSystemBuilder::new(Counter)
            .processes(n)
            .omega(OmegaKind::Atomic)
            .seed(1000 + k as u64)
            .workload_all(Workload::Unlimited(CounterOp::Inc))
            .run(RunConfig::new(steps, schedule));
        run.report.assert_no_panics();

        let timely_ops: Vec<u64> = (0..k).map(|p| run.completed[p]).collect();
        let slow_ops: Vec<u64> = (k..n).map(|p| run.completed[p]).collect();
        println!(
            "{:>3} | {:>28} | {:>28}",
            k,
            format!(
                "{}..{} (total {})",
                timely_ops.iter().min().unwrap(),
                timely_ops.iter().max().unwrap(),
                timely_ops.iter().sum::<u64>()
            ),
            format!("{slow_ops:?}")
        );

        assert!(
            timely_ops.iter().all(|&c| c > 0),
            "k={k}: some timely process starved: {timely_ops:?}"
        );
    }
    println!("every timely process made progress at every k ✓ (graceful degradation)");
}
