//! Flickering processes cannot hinder timely ones (Section 4).
//!
//! One process "flickers": its execution speed oscillates — bursts of
//! activity separated by ever-growing silences — so it is correct but not
//! timely, and it keeps joining the competition for the shared object.
//! The paper's promise: the timely processes still complete all their
//! operations; the flickerer may starve but cannot block them.
//!
//! Run with: `cargo run --release --example flickering_processes`

use tbwf::prelude::*;

fn main() {
    let n = 4;
    let steps = 400_000;
    let flickerer = ProcId(n - 1);

    let run = TbwfSystemBuilder::new(Queue)
        .processes(n)
        .omega(OmegaKind::Atomic)
        .seed(9)
        .workload_all(Workload::Unlimited(QueueOp::Enq(1)))
        .run(RunConfig::new(steps, Flicker::new(flickerer, 64, 2_000)));
    run.report.assert_no_panics();

    println!(
        "TBWF queue, {n} processes, p{} flickers (growing silences):",
        flickerer.0
    );
    for p in 0..n {
        let tag = if ProcId(p) == flickerer {
            " (flickering)"
        } else {
            " (timely)"
        };
        println!("  p{p}{tag}: {} enqueues completed", run.completed[p]);
    }

    // Measure timeliness from the trace and confirm the design.
    let measured = tbwf_sim::timeliness::measured_timely_set(&run.report.trace.steps, n, &[]);
    println!("  measured timely set: {measured:?}");

    for p in 0..n - 1 {
        assert!(
            run.completed[p] > 0,
            "timely p{p} was starved by the flickerer: {:?}",
            run.completed
        );
    }
    println!("  timely processes progressed despite the flickering competitor ✓");
}
