//! The TBWF stack on real OS threads (extension beyond the paper's
//! simulated model).
//!
//! The same algorithm code that the deterministic simulator checks —
//! activity monitors, Ω∆, the query-abortable object, the Figure 7
//! transform — runs here on one OS thread per task, with genuine
//! parallelism. Register aborts come from real races; timeliness comes
//! from the OS scheduler (on an unloaded machine everyone is timely, so
//! the object behaves wait-free).
//!
//! Run with: `cargo run --release --example native_threads`

use std::time::{Duration, Instant};
use tbwf::native::NativeTbwf;
use tbwf::prelude::*;

fn main() {
    let n = 3;
    let duration = Duration::from_millis(1500);
    println!("TBWF counter on real threads: {n} client processes, {duration:?} of load\n");

    let system = NativeTbwf::start(Counter, n, OmegaKind::Atomic);
    let deadline = Instant::now() + duration;
    let mut workers = Vec::new();
    for p in 0..n {
        let mut client = system.client(p);
        workers.push(std::thread::spawn(move || {
            let mut responses = Vec::new();
            while Instant::now() < deadline {
                match client.invoke(CounterOp::Inc) {
                    Ok(v) => responses.push(v),
                    Err(_) => break,
                }
            }
            responses
        }));
    }
    let per_proc: Vec<Vec<i64>> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    system.shutdown();

    let mut all: Vec<i64> = per_proc.iter().flatten().copied().collect();
    let total = all.len();
    for (p, r) in per_proc.iter().enumerate() {
        println!(
            "  p{p}: {} increments ({:.0}/s)",
            r.len(),
            r.len() as f64 / 1.5
        );
    }
    all.sort_unstable();
    all.dedup();
    assert_eq!(
        all.len(),
        total,
        "duplicate responses: linearizability violated"
    );
    assert_eq!(
        *all.last().unwrap_or(&0) as usize,
        total,
        "responses must be 1..=total"
    );
    println!("\n  {total} operations, responses are exactly 1..={total} (linearizable) ✓");
    assert!(
        per_proc.iter().all(|r| !r.is_empty()),
        "every (timely) OS thread must make progress"
    );
    println!("  every thread made progress — wait-freedom under real scheduling ✓");
}
