//! Quickstart: a timeliness-based wait-free shared counter.
//!
//! Three processes share one counter built from **abortable registers
//! only** (weaker than safe registers!) via the paper's construction:
//! Ω∆ elects a timely leader, the leader operates the wait-free
//! query-abortable object, and the canonical use of Ω∆ rotates leadership
//! fairly among the timely processes.
//!
//! Run with: `cargo run --example quickstart`

use tbwf::prelude::*;

fn main() {
    let n = 3;
    let steps = 300_000;

    // Everyone performs increments for the whole run; the round-robin
    // schedule makes every process timely, so (TBWF = wait-freedom here)
    // everyone must make progress.
    let run = TbwfSystemBuilder::new(Counter)
        .processes(n)
        .omega(OmegaKind::Atomic)
        .seed(42)
        .workload_all(Workload::Unlimited(CounterOp::Inc))
        .run(RunConfig::new(steps, RoundRobin::new()));
    run.report.assert_no_panics();

    println!("TBWF counter, {n} processes, {steps} steps, all timely (round-robin):");
    for (p, count) in run.completed.iter().enumerate() {
        println!("  p{p}: {count} increments completed");
    }

    // Linearizability spot-check: every Inc response is the unique value
    // after that increment, so all responses must be distinct.
    let mut responses: Vec<i64> = run.results.iter().flatten().map(|r| r.resp).collect();
    let total = responses.len();
    responses.sort_unstable();
    responses.dedup();
    assert_eq!(
        responses.len(),
        total,
        "duplicate responses: not linearizable!"
    );
    println!("  {total} operations total, all responses distinct (linearizable) ✓");

    assert!(
        run.completed.iter().all(|&c| c > 0),
        "every timely process must complete operations"
    );
    println!("  every timely process made progress (wait-freedom regime) ✓");
}
