//! Dynamic leader election with Ω∆ (Section 4).
//!
//! Four processes with different candidacy behaviors:
//!   * p0 joins the competition only from step 40 000 (late P-candidate);
//!   * p1 competes from the start (P-candidate);
//!   * p2 repeatedly joins and leaves (R-candidate);
//!   * p3 never competes (N-candidate).
//!
//! Ω∆ must eventually elect a timely permanent-or-repeated candidate at
//! every permanent candidate; the N-candidate must end with `leader = ?`.
//!
//! Run with: `cargo run --example dynamic_leader_election`

use tbwf::prelude::*;
use tbwf_omega::OBS_LEADER;

fn main() {
    let cfg = OmegaSystemConfig {
        n: 4,
        kind: OmegaKind::Atomic,
        scripts: vec![
            CandidateScript::From(40_000),
            CandidateScript::Always,
            CandidateScript::Blink {
                on: 8_000,
                off: 8_000,
            },
            CandidateScript::Never,
        ],
        ..Default::default()
    };
    let steps = 200_000;
    let out = run_omega_system(&cfg, RunConfig::new(steps, RoundRobin::new()));
    out.report.assert_no_panics();

    println!("Ω∆ with dynamic candidates ({} steps, round-robin):", steps);
    for p in 0..4 {
        let series = out.report.trace.obs_series(ProcId(p), OBS_LEADER, 0);
        let transitions: Vec<String> = series
            .iter()
            .map(|(t, v)| {
                let who = if *v < 0 {
                    "?".to_string()
                } else {
                    format!("p{v}")
                };
                format!("t={t}:{who}")
            })
            .collect();
        let shown = if transitions.len() > 6 {
            format!(
                "{} … {}",
                transitions[..3].join("  "),
                transitions[transitions.len() - 3..].join("  ")
            )
        } else {
            transitions.join("  ")
        };
        println!("  p{p} leader timeline: {shown}");
    }

    // Check the Ω∆ specification (Definition 5) on the trace.
    let timely: Vec<ProcId> = (0..4).map(ProcId).collect();
    let data = OmegaRunData::from_trace(&out.report.trace, 4, &timely);
    let verdict = check_spec(&data, SpecParams::default(), false);
    println!("  classes: {:?}", verdict.classes);
    println!(
        "  elected leader: {:?}  spec ok: {}",
        verdict.elected, verdict.ok
    );
    assert!(
        verdict.ok,
        "Ω∆ specification violated: {:?}",
        verdict.failures
    );
    assert_eq!(
        out.handles[3].leader.get(),
        None,
        "N-candidate must end with ?"
    );
}
