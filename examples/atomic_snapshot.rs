//! An atomic snapshot object with the TBWF guarantee.
//!
//! Atomic snapshots (per-process updates + instantaneous scans of all
//! segments) are a classic shared-memory abstraction that is notoriously
//! fiddly to implement from registers directly. Through the paper's
//! universal construction the atomicity is free — every scan linearizes
//! in the decided log — and the progress guarantee is TBWF: every timely
//! process completes its updates and scans.
//!
//! Run with: `cargo run --release --example atomic_snapshot`

use tbwf::prelude::*;

fn main() {
    let n = 3;
    let mut b = TbwfSystemBuilder::new(Snapshot::new(n))
        .processes(n)
        .seed(77);
    for p in 0..n {
        b = b.workload(
            p,
            Workload::Script(vec![
                SnapshotOp::Update {
                    segment: p,
                    value: (p + 1) as i64 * 10,
                },
                SnapshotOp::Scan,
                SnapshotOp::Update {
                    segment: p,
                    value: (p + 1) as i64 * 100,
                },
                SnapshotOp::Scan,
            ]),
        );
    }
    let run = b.run(RunConfig::new(500_000, RoundRobin::new()));
    run.report.assert_no_panics();

    println!("TBWF atomic snapshot, {n} processes (each updates its own segment):\n");
    for (p, results) in run.results.iter().enumerate() {
        for r in results {
            if let SnapshotResp::View(v) = &r.resp {
                println!("  p{p} scanned {v:?} at t={}", r.time);
            }
        }
    }
    assert_eq!(run.completed, vec![4, 4, 4]);

    // Consistency: in every scanned view, each segment holds one of the
    // three values its owner ever wrote (0, 10·(p+1), 100·(p+1)), and a
    // process's own second scan must see its own second update.
    for (p, results) in run.results.iter().enumerate() {
        let views: Vec<&Vec<i64>> = results
            .iter()
            .filter_map(|r| match &r.resp {
                SnapshotResp::View(v) => Some(v),
                _ => None,
            })
            .collect();
        for view in &views {
            for (seg, &val) in view.iter().enumerate() {
                let owner = (seg + 1) as i64;
                assert!(
                    val == 0 || val == owner * 10 || val == owner * 100,
                    "segment {seg} holds a value never written: {val}"
                );
            }
        }
        let last = views.last().expect("two scans per process");
        assert_eq!(
            last[p],
            (p + 1) as i64 * 100,
            "p{p}'s final scan must see its own final update"
        );
    }
    // And the whole history is linearizable (complete check).
    assert_run_linearizable(&Snapshot::new(n), &run);
    println!("\n  all views consistent; full history linearizable ✓");
}
