//! Consensus from abortable registers — the Section 1.2 corollary.
//!
//! "One can implement Ω — a failure detector which is sufficient to
//! solve consensus — in a system with abortable registers and only one
//! timely process."
//!
//! We go one step further and *solve consensus* outright: a decide-once
//! object wrapped by the TBWF construction over the abortable-register
//! Ω∆. Each process proposes its own value; agreement and validity
//! follow from linearizability, and termination for every timely process
//! follows from TBWF. We demonstrate it in the hardest regime the
//! corollary allows: exactly one timely process.
//!
//! Run with: `cargo run --release --example consensus_from_abortable_registers`

use tbwf::prelude::*;

fn main() {
    let n = 4;
    let steps = 400_000;

    println!("Consensus over abortable registers (TBWF + decide-once object):\n");

    // Regime 1: everyone timely — everyone decides.
    let mut b = TbwfSystemBuilder::new(Consensus)
        .processes(n)
        .omega(OmegaKind::Abortable);
    for p in 0..n {
        b = b.workload(
            p,
            Workload::Script(vec![ConsensusOp::Propose(100 + p as i64)]),
        );
    }
    let run = b.run(RunConfig::new(steps, RoundRobin::new()));
    run.report.assert_no_panics();
    let decisions: Vec<ConsensusResp> = run.results.iter().flatten().map(|r| r.resp).collect();
    println!("all timely:       decisions = {decisions:?}");
    assert_eq!(decisions.len(), n, "every timely proposer must decide");
    assert!(
        decisions.iter().all(|d| *d == decisions[0]),
        "agreement violated: {decisions:?}"
    );
    let ConsensusResp::Decided(v) = decisions[0] else {
        panic!("undecided")
    };
    assert!((100..100 + n as i64).contains(&v), "validity violated: {v}");

    // Regime 2: only p0 is timely — the corollary's minimal assumption.
    // p0 must decide; agreement still binds anyone who manages to finish.
    let mut b = TbwfSystemBuilder::new(Consensus)
        .processes(n)
        .omega(OmegaKind::Abortable);
    for p in 0..n {
        b = b.workload(
            p,
            Workload::Script(vec![ConsensusOp::Propose(200 + p as i64)]),
        );
    }
    let run = b.run(RunConfig::new(
        steps,
        PartiallySynchronous::new(vec![ProcId(0)], 4, true),
    ));
    run.report.assert_no_panics();
    println!("one timely (p0):  completed = {:?}", run.completed);
    assert!(
        run.completed[0] >= 1,
        "the single timely process must decide"
    );
    let all: Vec<ConsensusResp> = run.results.iter().flatten().map(|r| r.resp).collect();
    assert!(
        all.iter().all(|d| *d == all[0]),
        "agreement violated: {all:?}"
    );
    println!("one timely (p0):  decision  = {:?}", all[0]);
    println!("\nvalidity + agreement + termination-for-the-timely hold ✓");
}
