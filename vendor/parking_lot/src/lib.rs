//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The workspace builds without network access, so the real crates-io
//! `parking_lot` is replaced by this shim: the same names and signatures
//! for the slice of the API the workspace uses (`Mutex` with
//! non-poisoning `lock`/`try_lock`, and a `Condvar` whose `wait` takes
//! `&mut MutexGuard`). Poisoned std locks are transparently recovered —
//! parking_lot has no poisoning, and the simulator relies on being able
//! to keep using a lock after a task panicked.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (non-poisoning `lock`, like parking_lot).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]; unlocks on drop.
///
/// The guard holds the inner std guard in an `Option` so that
/// [`Condvar::wait`] can move it out and back in place (std's `wait`
/// consumes and returns the guard; parking_lot's takes `&mut`).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable whose `wait` takes `&mut MutexGuard`.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded mutex and blocks until notified;
    /// the mutex is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_contended_is_none() {
        let m = Mutex::new(());
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
