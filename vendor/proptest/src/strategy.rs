//! Value-generation strategies (shim of `proptest::strategy`).
//!
//! A [`Strategy`] here is just a seeded generator: `generate` draws one
//! value. There is no shrinking and no recursive strategy machinery —
//! the failing input is reported verbatim by the `proptest!` macro.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// The deterministic generator threaded through every strategy
/// (xoshiro-free: SplitMix64 is plenty for test-input generation).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        if bound == 1 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

// A strategy behind a reference is still a strategy (lets `prop_oneof!`
// and helper fns compose borrowed strategies).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` expansion).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Uniformly random booleans (`prop::bool::ANY`).
#[derive(Clone, Copy, Debug)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// `Vec` strategy with a size drawn from `size` (`prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The result of [`vec()`](vec()).
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` strategy (`prop::collection::btree_set`). Duplicate draws
/// are discarded, so the produced set may be smaller than the drawn size
/// if the element space is nearly exhausted; a bounded number of redraws
/// keeps generation total.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// The result of [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let want = self.size.clone().generate(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < want && attempts < want.saturating_mul(20) + 20 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&y));
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_just() {
        let mut rng = TestRng::new(2);
        let s = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
        assert_eq!(Just(7).generate(&mut rng), 7);
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(3);
        let s = vec(0i64..4, 1..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_has_requested_cardinality_when_possible() {
        let mut rng = TestRng::new(4);
        let s = btree_set(0u64..1000, 3..4);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng).len(), 3);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::new(5);
        let u = Union::new(vec![
            Box::new(Just(1)) as Box<dyn Strategy<Value = i32>>,
            Box::new(Just(2)),
        ]);
        let draws: std::collections::BTreeSet<i32> =
            (0..100).map(|_| u.generate(&mut rng)).collect();
        assert_eq!(draws.len(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = TestRng::new(9);
            (0..10).map(|_| (0u64..100).generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::new(9);
            (0..10).map(|_| (0u64..100).generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
