//! Offline drop-in subset of the `proptest` API.
//!
//! The workspace builds without network access, so the real crates-io
//! `proptest` is replaced by this shim. It keeps the call-site syntax the
//! workspace's property tests use — the `proptest!` macro with an
//! optional `#![proptest_config(...)]` line, range/tuple/`Just`
//! strategies, `prop_map`, `prop_oneof!`, `prop::collection::{vec,
//! btree_set}`, `prop::bool::ANY`, and the `prop_assert*`/`prop_assume!`
//! macros — but generation is plainly seeded (deterministic per test
//! name) and failing cases are **not shrunk**: the failing input is
//! printed as-is. `.proptest-regressions` files are ignored.

#![warn(missing_docs)]

pub mod strategy;

use std::fmt;

/// Per-test configuration (shim: only `cases` is meaningful).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The upstream default is 256; the shim halves it because every
        // case here drives a whole simulator run in some suites.
        ProptestConfig { cases: 128 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the case is retried, not failed.
    Reject(String),
    /// A `prop_assert*` failed; the whole property fails.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type each generated case evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic case-seed derivation: FNV-1a over the test name.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs one property: generates up to `cases` accepted inputs and
/// evaluates `case` on each. Panics (failing the `#[test]`) on the first
/// `Fail`, printing the offending input.
#[doc(hidden)]
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut strategy::TestRng) -> TestCaseResult,
{
    let mut rng = strategy::TestRng::new(seed_for(name));
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(10).max(100);
    while accepted < config.cases {
        attempts += 1;
        if attempts > max_attempts {
            panic!(
                "property {name}: gave up after {attempts} attempts \
                 ({accepted}/{} cases accepted) — prop_assume! rejects too much",
                config.cases
            );
        }
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed after {accepted} passing cases: {msg}")
            }
        }
    }
}

/// The `prop::` namespace (`prop::collection`, `prop::bool`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{btree_set, vec};
    }
    /// Boolean strategies.
    pub mod bool {
        pub use crate::strategy::BoolAny;
        /// Uniformly random booleans.
        pub const ANY: BoolAny = BoolAny;
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (retried with fresh input) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Picks uniformly among the listed strategies (all must share a value
/// type). The upstream weighted form (`w => strategy`) is not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (@impl ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &config, |rng| {
                    // Shown on failure: no shrinking, print the raw inputs.
                    let mut inputs: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(
                        let generated =
                            $crate::strategy::Strategy::generate(&($strat), rng);
                        inputs.push(format!(
                            "{} = {:?}", stringify!($pat), &generated
                        ));
                        let $pat = generated;
                    )+
                    let run = || -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        return ::std::result::Result::Ok(());
                    };
                    run().map_err(|e| match e {
                        $crate::TestCaseError::Fail(msg) => $crate::TestCaseError::Fail(
                            format!("{msg}\n  inputs: {}", inputs.join(", ")),
                        ),
                        reject => reject,
                    })
                });
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}
