//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The workspace builds without network access, so the real crates-io
//! `rand` is replaced by this shim. It provides the slice of the API the
//! workspace uses — [`Rng`] with `random`/`random_range`/`random_bool`,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] — with the same
//! call-site syntax. The generator is xoshiro256++ seeded through
//! SplitMix64; sequences are deterministic and stable across platforms
//! (which is all the simulator needs), but they are **not** the upstream
//! `StdRng` (ChaCha12) sequences.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random value sampled from the "standard" distribution of its type.
///
/// Shim counterpart of `rand::distr::StandardUniform` sampling; only the
/// types the workspace draws via [`Rng::random`] are implemented.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range type that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

// Unbiased bounded integer sampling via rejection on the top multiple of
// `span` (Lemire-style masking would also do; simplicity wins here).
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing random-value methods (shim of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit source every other method is derived from.
    fn next_u64(&mut self) -> u64;

    /// Samples a value from the standard distribution of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} not a probability");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

/// RNGs constructible from a seed (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The shim's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Deterministic and platform-stable; not the upstream ChaCha12
    /// sequence (see the crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.random_range(0..5);
            assert!(x < 5);
            let y: i64 = r.random_range(-3..=3);
            assert!((-3..=3).contains(&y));
            let f: f64 = r.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| r.random_bool(1.0)));
        assert!((0..100).all(|_| !r.random_bool(0.0)));
    }

    #[test]
    fn single_value_ranges() {
        let mut r = StdRng::seed_from_u64(3);
        let x: u64 = r.random_range(5..6);
        assert_eq!(x, 5);
        let y: u64 = r.random_range(5..=5);
        assert_eq!(y, 5);
    }
}
