//! Offline drop-in subset of the `criterion` API.
//!
//! The workspace builds without network access, so the real crates-io
//! `criterion` is replaced by this shim. Bench sources keep their exact
//! call-site syntax (`criterion_group!`/`criterion_main!`, benchmark
//! groups, `BenchmarkId`, `Bencher::iter`); measurement is a plain
//! wall-clock mean over a time budget — no warm-up modeling, outlier
//! analysis, or HTML reports. Passing `--quick` (or setting the
//! `CRITERION_QUICK` env var) runs every benchmark for exactly one
//! timed iteration, which is what CI smoke runs use.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs closures under timing; handed to every benchmark function.
pub struct Bencher {
    quick: bool,
    budget: Duration,
    /// (iterations, total elapsed) of the last `iter` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, running it repeatedly until the measurement budget is
    /// spent (or exactly once in `--quick` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up run (also a correctness smoke of `f`).
        black_box(f());
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if self.quick || elapsed >= self.budget {
                self.result = Some((iters, elapsed));
                return;
            }
        }
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, quick: bool, budget: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        quick,
        budget,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((iters, total)) => {
            let mean = total / (iters.max(1) as u32);
            println!(
                "{name:<40} time: {:>12}/iter  ({iters} iter in {})",
                fmt_time(mean),
                fmt_time(total)
            );
        }
        None => println!("{name:<40} (no measurement: bencher never called iter)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim does not resample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Accepted for compatibility; the shim prints per-iteration time
    /// only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnOnce(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.criterion.quick,
            self.budget,
            f,
        );
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.criterion.quick,
            self.budget,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op beyond symmetry with upstream).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    quick: bool,
    default_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick =
            args.iter().any(|a| a == "--quick") || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion {
            quick,
            default_budget: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Upstream parses CLI filters here; the shim already read the args
    /// it honors (`--quick`) in `Default`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== group: {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            budget: self.default_budget,
            criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.quick, self.default_budget, f);
        self
    }
}

/// Throughput annotation (accepted, ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_exactly_one_timed_iteration() {
        let mut b = Bencher {
            quick: true,
            budget: Duration::from_secs(10),
            result: None,
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        // 1 warm-up + 1 timed.
        assert_eq!(calls, 2);
        assert_eq!(b.result.unwrap().0, 1);
    }

    #[test]
    fn budget_mode_runs_until_budget() {
        let mut b = Bencher {
            quick: false,
            budget: Duration::from_millis(5),
            result: None,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        let (iters, total) = b.result.unwrap();
        assert!(iters >= 1);
        assert!(total >= Duration::from_millis(5));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
